"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot run PEP-517
editable installs; ``python setup.py develop`` (or adding ``src`` to a
.pth file) works instead.
"""
from setuptools import setup

setup()
