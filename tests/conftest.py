"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import Device, DeviceSpec
from repro.graph import CSRGraph, from_edge_list
from repro.graph import generators as gen

MIB = 1 << 20


@pytest.fixture
def device() -> Device:
    """A roomy device for functional tests."""
    return Device(DeviceSpec(memory_bytes=256 * MIB))


@pytest.fixture
def tiny_device() -> Device:
    """A severely memory-constrained device for OOM tests."""
    return Device(DeviceSpec(memory_bytes=64 * 1024))


@pytest.fixture
def paper_graph() -> CSRGraph:
    """The Figure 1 example graph: K4 on {B,C,D,E} plus A-B, A-C.

    Vertex mapping: A=0, B=1, C=2, D=3, E=4. The unique maximum clique
    is {B, C, D, E}.
    """
    return from_edge_list(
        [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (0, 1), (0, 2)]
    )


@pytest.fixture
def triangle() -> CSRGraph:
    return from_edge_list([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> CSRGraph:
    return from_edge_list([(0, 1), (1, 2), (2, 3)])


def random_graph(trial: int, lo: int = 5, hi: int = 40) -> CSRGraph:
    """Deterministic random test graph #trial."""
    rng = np.random.default_rng(trial * 7919 + 13)
    n = int(rng.integers(lo, hi))
    p = float(rng.uniform(0.05, 0.6))
    return gen.erdos_renyi(n, p, seed=trial)


def to_networkx(graph: CSRGraph):
    """Convert to networkx for oracle comparisons."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.to_edge_list()
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    return g


def nx_maximum_cliques(graph: CSRGraph):
    """(omega, set of frozenset maximum cliques) via networkx."""
    import networkx as nx

    g = to_networkx(graph)
    best = 1
    cliques = set()
    for c in nx.find_cliques(g):
        if len(c) > best:
            best = len(c)
            cliques = {frozenset(c)}
        elif len(c) == best:
            cliques.add(frozenset(c))
    if best == 1:
        cliques = {frozenset([v]) for v in range(graph.num_vertices)}
    return best, cliques


def assert_is_clique(graph: CSRGraph, vertices) -> None:
    verts = [int(v) for v in vertices]
    assert len(set(verts)) == len(verts), f"duplicate vertices in {verts}"
    for i, a in enumerate(verts):
        for b in verts[i + 1 :]:
            assert graph.has_edge(a, b), f"{a}-{b} missing: {verts} is not a clique"
