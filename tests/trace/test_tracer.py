"""Tracer tests: no-op default, recording, exports, solver integration."""

import json

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.solver import MaxCliqueSolver
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec
from repro.trace import (
    NULL_TRACER,
    JsonTracer,
    NullTracer,
    Tracer,
    TRACE_SCHEMA,
)

MIB = 1 << 20

STAGES = ["csr_upload", "preprocess", "heuristic", "setup", "bfs"]


@pytest.fixture
def graph():
    return gen.planted_clique(300, 8, avg_degree=4.0, seed=7)


def fresh_device():
    return Device(DeviceSpec(memory_bytes=256 * MIB))


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert isinstance(NULL_TRACER, Tracer)

    def test_span_and_counter_are_noops(self):
        with NULL_TRACER.span("x", model_clock=lambda: 1.0):
            NULL_TRACER.counter("c", 3)
        NULL_TRACER.on_kernel("k", 1, 1.0, 1.0, 0.1, 0.1)
        # no state anywhere to assert on -- surviving is the test


class TestJsonTracer:
    def test_span_nesting_and_depth(self):
        t = JsonTracer()
        clock_value = [0.0]

        def clock():
            return clock_value[0]

        with t.span("outer", model_clock=clock):
            clock_value[0] = 1.0
            with t.span("inner", model_clock=clock):
                clock_value[0] = 3.0
            clock_value[0] = 4.0
        inner, outer = t.spans  # completion order: inner closes first
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert inner.model_time_s == pytest.approx(2.0)
        assert outer.model_time_s == pytest.approx(4.0)

    def test_kernel_attribution(self):
        t = JsonTracer()
        t.on_kernel("orphan", 1, 1.0, 1.0, 0.5, 0.5)
        with t.span("stage_a"):
            t.on_kernel("k1", 32, 10.0, 32.0, 0.25, 0.75)
        assert t.kernels[0].span == ""
        assert t.kernels[1].span == "stage_a"
        assert t.kernels[1].start_model_s == pytest.approx(0.5)
        assert t.kernel_totals() == {"orphan": 0.5, "k1": 0.25}

    def test_counters_accumulate(self):
        t = JsonTracer()
        t.counter("hits")
        t.counter("hits", 4)
        assert t.counters == {"hits": 5}

    def test_json_schema_round_trip(self):
        t = JsonTracer()
        with t.span("s", category="stage", model_clock=lambda: 0.0, graph="g"):
            t.on_kernel("k", 8, 4.0, 8.0, 0.1, 0.1)
        payload = json.loads(t.to_json())
        assert payload["schema"] == TRACE_SCHEMA
        assert set(payload) == {"schema", "spans", "kernels", "counters"}
        (span,) = payload["spans"]
        assert span["name"] == "s"
        assert span["attrs"] == {"graph": "g"}
        (kernel,) = payload["kernels"]
        assert kernel["span"] == "s"
        assert kernel["threads"] == 8

    def test_chrome_trace_structure(self):
        t = JsonTracer()
        with t.span("s", model_clock=lambda: 0.0):
            t.on_kernel("k", 8, 4.0, 8.0, 0.1, 0.1)
        chrome = t.to_chrome_trace()
        events = chrome["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(metadata) == 3  # process name + two thread names
        tids = {e["name"]: e["tid"] for e in complete}
        assert tids == {"s": 0, "k": 1}
        kev = next(e for e in complete if e["name"] == "k")
        assert kev["dur"] == pytest.approx(0.1 * 1e6)  # model s -> us


class TestSolverIntegration:
    def test_stage_spans_and_kernels(self, graph):
        tracer = JsonTracer()
        result = MaxCliqueSolver(
            graph, SolverConfig(), fresh_device(), tracer=tracer
        ).solve()
        stage_names = [s.name for s in tracer.stage_spans()]
        assert stage_names == STAGES  # one span per stage, in order
        assert tracer.kernels, "expected per-kernel events"
        spans = set(stage_names)
        assert all(k.span in spans for k in tracer.kernels)
        # tracer's kernel accounting equals the solve's model time
        assert sum(tracer.kernel_totals().values()) == pytest.approx(
            result.model_time_s, rel=1e-9
        )

    def test_counters_populated(self, graph):
        tracer = JsonTracer()
        MaxCliqueSolver(
            graph, SolverConfig(), fresh_device(), tracer=tracer
        ).solve()
        assert "heuristic.lower_bound" in tracer.counters
        assert "setup.kept_2cliques" in tracer.counters
        assert "setup.pruned_2cliques" in tracer.counters

    @pytest.mark.parametrize(
        "config",
        [
            SolverConfig(),
            SolverConfig(window_size=64),
            SolverConfig(heuristic="none"),
        ],
        ids=["full", "windowed", "no-heuristic"],
    )
    def test_tracing_does_not_change_results(self, graph, config):
        """Tracer on/off: identical result, EXACT same model time."""
        plain = MaxCliqueSolver(graph, config, fresh_device()).solve()
        traced = MaxCliqueSolver(
            graph, config, fresh_device(), tracer=JsonTracer()
        ).solve()
        assert traced.clique_number == plain.clique_number
        assert traced.num_maximum_cliques == plain.num_maximum_cliques
        assert traced.model_time_s == plain.model_time_s  # bit-exact
        assert traced.peak_memory_bytes == plain.peak_memory_bytes
        assert traced.candidates_stored == plain.candidates_stored
        assert traced.candidates_pruned == plain.candidates_pruned
        assert np.array_equal(traced.cliques, plain.cliques)
        assert traced.stage_times == plain.stage_times

    def test_hook_restored_after_solve(self, graph):
        device = fresh_device()
        MaxCliqueSolver(
            graph, SolverConfig(), device, tracer=JsonTracer()
        ).solve()
        assert device._trace_hook is None

    def test_shared_tracer_across_solvers(self, graph):
        """One tracer can span the BF solver and both baselines."""
        from repro.baselines.gpu_dfs import gpu_dfs_max_clique
        from repro.baselines.pmc import pmc_max_clique

        tracer = JsonTracer()
        bf = MaxCliqueSolver(
            graph, SolverConfig(), fresh_device(), tracer=tracer
        ).solve()
        pmc = pmc_max_clique(graph, tracer=tracer)
        dfs = gpu_dfs_max_clique(graph, fresh_device(), tracer=tracer)
        assert bf.clique_number == pmc.clique_number == dfs.clique_number
        names = set(tracer.span_names())
        assert {"pmc.preprocess", "pmc.heuristic", "pmc.search"} <= names
        assert {"gpu_dfs.preprocess", "gpu_dfs.search"} <= names
        assert set(STAGES) <= names
        assert any(k.name == "gpu_dfs" for k in tracer.kernels)
        assert pmc.stage_model_times.keys() == {
            "preprocess", "heuristic", "search",
        }
        assert dfs.stage_model_times.keys() == {"preprocess", "search"}
        assert sum(dfs.stage_model_times.values()) == pytest.approx(
            dfs.model_time_s, rel=1e-9
        )
