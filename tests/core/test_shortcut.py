"""The Section IV-C single-sublist shortcut and the Algorithm 2
line-36 early exit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import find_maximum_cliques
from repro.baselines import maximum_cliques_via_bk
from repro.core.verify import verify_result
from repro.graph import generators as gen


class TestSingleSublistShortcut:
    def test_fires_on_planted_cliques(self):
        # dominant planted clique: the heuristic finds omega, pruning
        # collapses the 2-clique list to that clique's own sublist
        fired = 0
        for seed in range(12):
            g = gen.planted_clique(300, 10, avg_degree=2.0, seed=seed)
            r = find_maximum_cliques(g)
            ref, refc = maximum_cliques_via_bk(g)
            assert r.clique_number == ref
            assert r.num_maximum_cliques == len(refc)
            verify_result(g, r)
            if r.found_by == "heuristic":
                fired += 1
        assert fired >= 10  # the paper: 97% of datasets end this way

    def test_shortcut_skips_expansion_kernels(self):
        from repro.gpusim import Device, DeviceSpec
        from repro import MaxCliqueSolver

        g = gen.planted_clique(300, 10, avg_degree=2.0, seed=0)
        dev = Device(DeviceSpec(memory_bytes=1 << 26))
        r = MaxCliqueSolver(g, device=dev).solve()
        if r.found_by == "heuristic":
            names = set(dev.kernel_breakdown())
            assert "count_cliques" not in names
            assert "shortcut_verify" in names

    def test_never_fires_with_comaximum_cliques(self):
        # two disjoint planted cliques of equal size: the shortcut must
        # not fire (two sublists survive) and both cliques are found
        rng = np.random.default_rng(5)
        from repro.graph.build import graph_union, from_edge_array

        a = gen.planted_clique(200, 8, avg_degree=1.5, seed=1)
        b = gen.planted_clique(200, 8, avg_degree=1.5, seed=2)
        # shift b's ids so the cliques are disjoint
        src, dst = b.to_edge_list()
        b2 = from_edge_array(src + 200, dst + 200, num_vertices=400)
        g = graph_union(a, b2)
        r = find_maximum_cliques(g)
        ref, refc = maximum_cliques_via_bk(g)
        assert r.clique_number == ref
        assert r.num_maximum_cliques == len(refc) >= 2

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_enumeration_safe_under_shortcut(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 120))
        q = int(rng.integers(5, 11))
        g = gen.planted_clique(n, min(q, n), avg_degree=2.5, seed=seed)
        r = find_maximum_cliques(g)
        ref, refc = maximum_cliques_via_bk(g)
        assert r.clique_number == ref
        assert r.num_maximum_cliques == len(refc)


class TestEarlyExitLine36:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_early_exit_keeps_omega_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 40))
        g = gen.erdos_renyi(n, float(rng.uniform(0.15, 0.6)), seed=seed)
        if g.num_edges == 0:
            return
        ref, _ = maximum_cliques_via_bk(g)
        r = find_maximum_cliques(
            g, enumerate_all=False, early_exit_heuristic=True
        )
        assert r.clique_number == ref
