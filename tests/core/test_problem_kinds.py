"""Problem kinds: the multi-problem level-loop platform.

Every kind must match its independent CPU oracle through every solver
path (full, windowed, fanout), be byte-deterministic across repeated
runs, and refuse the configurations that are unsound for it
(ω̄ optimisations, checkpoint/resume).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Device, DeviceSpec, find_maximum_cliques
from repro.baselines import count_k_cliques_reference, maximal_clique_set
from repro.core import MaxCliqueSolver, SolverConfig
from repro.core.config import (
    FINGERPRINT_VERSION,
    PROBLEM_KINDS,
    config_fingerprint,
)
from repro.core.result import KCliqueCountResult, MaximalEnumResult
from repro.engine import (
    KCliqueCountKind,
    MAX_CLIQUE,
    MaximalEnumKind,
    resolve_kind,
)
from repro.engine.sweep import window_sweep
from repro.errors import CheckpointError, SolverConfigError
from repro.graph import from_edge_list
from repro.graph import generators as gen

MIB = 1 << 20

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_n=22):
    n = draw(st.integers(2, max_n))
    density = draw(st.floats(0.05, 0.7))
    seed = draw(st.integers(0, 2**31 - 1))
    return gen.erdos_renyi(n, density, seed=seed)


def _solve(graph, **config_kwargs):
    device = Device(DeviceSpec(memory_bytes=192 * MIB))
    return MaxCliqueSolver(graph, SolverConfig(**config_kwargs), device).solve()


class TestConfigValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SolverConfigError, match="unknown problem kind"):
            SolverConfig(problem="chromatic-number")

    def test_kclique_requires_positive_int_k(self):
        with pytest.raises(SolverConfigError, match="positive integer k"):
            SolverConfig(problem="k-clique-count")
        with pytest.raises(SolverConfigError, match="positive integer k"):
            SolverConfig(problem="k-clique-count", k=0)
        with pytest.raises(SolverConfigError, match="positive integer k"):
            SolverConfig(problem="k-clique-count", k=True)

    def test_k_forbidden_for_other_kinds(self):
        with pytest.raises(SolverConfigError, match="only meaningful"):
            SolverConfig(k=3)
        with pytest.raises(SolverConfigError, match="only meaningful"):
            SolverConfig(problem="maximal-enum", k=3)

    def test_omega_bound_optimisations_are_max_clique_only(self):
        with pytest.raises(SolverConfigError, match="max-clique only"):
            SolverConfig(
                problem="maximal-enum",
                early_exit_heuristic=True,
                enumerate_all=False,
            )
        with pytest.raises(SolverConfigError, match="max-clique only"):
            SolverConfig(problem="k-clique-count", k=3, coloring_preprune=True)

    def test_resolve_kind_covers_every_name(self):
        assert resolve_kind(SolverConfig()) is MAX_CLIQUE
        kc = resolve_kind(SolverConfig(problem="k-clique-count", k=4))
        assert isinstance(kc, KCliqueCountKind) and kc.stop_level == 4
        assert isinstance(
            resolve_kind(SolverConfig(problem="maximal-enum")), MaximalEnumKind
        )
        assert set(PROBLEM_KINDS) == {
            "max-clique", "k-clique-count", "maximal-enum"
        }


class TestFingerprint:
    def test_version_prefix(self):
        fp = config_fingerprint(SolverConfig())
        assert fp.startswith(FINGERPRINT_VERSION + ";")

    def test_kinds_fingerprint_differently(self):
        fps = {
            config_fingerprint(SolverConfig()),
            config_fingerprint(SolverConfig(problem="k-clique-count", k=3)),
            config_fingerprint(SolverConfig(problem="k-clique-count", k=4)),
            config_fingerprint(SolverConfig(problem="maximal-enum")),
        }
        assert len(fps) == 4


class TestKCliqueCount:
    @given(random_graphs(), st.integers(3, 6))
    @settings(**SETTINGS)
    def test_full_search_matches_reference(self, g, k):
        result = _solve(g, problem="k-clique-count", k=k)
        assert isinstance(result, KCliqueCountResult)
        assert result.count == count_k_cliques_reference(g, k)

    @given(random_graphs(max_n=18), st.sampled_from([3, 4]), st.sampled_from([5, 16]))
    @settings(**SETTINGS)
    def test_windowed_matches_full(self, g, k, window):
        full = _solve(g, problem="k-clique-count", k=k)
        win = _solve(g, problem="k-clique-count", k=k, window_size=window)
        assert win.count == full.count == count_k_cliques_reference(g, k)

    def test_trivial_ks_short_circuit(self):
        g = gen.erdos_renyi(30, 0.2, seed=1)
        r1 = _solve(g, problem="k-clique-count", k=1)
        assert r1.count == g.num_vertices and r1.found_by == "trivial"
        r2 = _solve(g, problem="k-clique-count", k=2)
        assert r2.count == g.num_edges and r2.found_by == "trivial"

    def test_empty_and_edgeless_graphs(self):
        empty = from_edge_list([], num_vertices=0)
        assert _solve(empty, problem="k-clique-count", k=3).count == 0
        edgeless = from_edge_list([], num_vertices=5)
        assert _solve(edgeless, problem="k-clique-count", k=3).count == 0

    def test_k_above_omega_counts_zero(self):
        g = gen.planted_clique(80, 5, avg_degree=4.0, seed=3)
        assert _solve(g, problem="k-clique-count", k=7).count == 0

    def test_deterministic_across_runs(self):
        g = gen.caveman_social(4, 25, p_in=0.4, seed=9)
        runs = [
            _solve(g, problem="k-clique-count", k=4, window_size=64)
            for _ in range(2)
        ]
        assert runs[0].count == runs[1].count
        assert runs[0].model_time_s == runs[1].model_time_s
        assert [s.__dict__ for s in runs[0].levels] == [
            s.__dict__ for s in runs[1].levels
        ]


class TestMaximalEnum:
    @given(random_graphs())
    @settings(**SETTINGS)
    def test_full_search_matches_bron_kerbosch(self, g):
        result = _solve(g, problem="maximal-enum")
        assert isinstance(result, MaximalEnumResult)
        oracle = maximal_clique_set(g)
        assert result.num_maximal_cliques == len(oracle)
        assert list(result.cliques) == oracle
        assert result.max_clique_size == (len(oracle[-1]) if oracle else 0)

    @given(random_graphs(max_n=18), st.sampled_from([4, 11]))
    @settings(**SETTINGS)
    def test_windowed_matches_full(self, g, window):
        full = _solve(g, problem="maximal-enum")
        win = _solve(g, problem="maximal-enum", window_size=window)
        assert win.num_maximal_cliques == full.num_maximal_cliques
        assert list(win.cliques) == list(full.cliques)

    def test_isolated_vertices_are_singleton_cliques(self):
        # a triangle plus two isolated vertices
        g = from_edge_list([(0, 1), (1, 2), (0, 2)], num_vertices=5)
        result = _solve(g, problem="maximal-enum")
        assert result.num_maximal_cliques == 3
        assert list(result.cliques) == [(3,), (4,), (0, 1, 2)]

    def test_omega_agrees_with_max_clique_solve(self):
        g = gen.caveman_social(5, 30, p_in=0.35, seed=2)
        enum = _solve(g, problem="maximal-enum")
        assert enum.max_clique_size == find_maximum_cliques(g).clique_number

    def test_report_cap_truncates_but_count_stays_exact(self):
        g = gen.erdos_renyi(30, 0.4, seed=4)
        full = _solve(g, problem="maximal-enum")
        capped = _solve(g, problem="maximal-enum", max_cliques_report=3)
        assert capped.num_maximal_cliques == full.num_maximal_cliques
        assert len(capped.cliques) == 3
        assert not capped.enumerated_all

    def test_deterministic_across_runs(self):
        g = gen.erdos_renyi(35, 0.3, seed=12)
        runs = [_solve(g, problem="maximal-enum", window_size=32) for _ in range(2)]
        assert list(runs[0].cliques) == list(runs[1].cliques)
        assert runs[0].model_time_s == runs[1].model_time_s


class TestCheckpointGuards:
    def test_window_sweep_refuses_checkpoint_for_non_default_kind(self):
        g = gen.erdos_renyi(20, 0.3, seed=6)
        from repro.core.setup import build_two_clique_list

        device = Device(DeviceSpec(memory_bytes=64 * MIB))
        src, dst, _ = build_two_clique_list(g, 2, device)
        with pytest.raises(ValueError, match="checkpoint/resume"):
            window_sweep(
                g,
                src,
                dst,
                0,
                np.zeros(0, dtype=np.int32),
                device,
                8,
                kind=MaximalEnumKind(),
                checkpoint_sink=lambda ckpt: None,
            )

    def test_solver_refuses_checkpoint_sink_for_non_default_kind(self):
        g = gen.erdos_renyi(20, 0.3, seed=6)
        device = Device(DeviceSpec(memory_bytes=64 * MIB))
        solver = MaxCliqueSolver(
            g,
            SolverConfig(problem="maximal-enum", window_size=8),
            device,
            checkpoint_sink=lambda ckpt: None,
        )
        with pytest.raises(CheckpointError, match="max-clique"):
            solver.solve()

    def test_find_maximum_cliques_is_max_clique_only(self):
        g = gen.erdos_renyi(10, 0.3, seed=0)
        with pytest.raises(SolverConfigError, match="max-clique only"):
            find_maximum_cliques(g, problem="maximal-enum")


class TestDefaultKindUnchanged:
    def test_max_clique_state_free(self):
        """The default kind must not grow result surface or state."""
        g = gen.erdos_renyi(25, 0.3, seed=8)
        result = _solve(g)
        assert result.problem == "max-clique"
        assert not hasattr(result, "count")
