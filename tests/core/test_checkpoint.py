"""Checkpoint/resume of the windowed search."""

import json

import numpy as np
import pytest

from repro.core import MaxCliqueSolver, SolverConfig, config_fingerprint
from repro.core.checkpoint import (
    CHECKPOINT_SCHEMA,
    SearchCheckpoint,
    load_checkpoint,
)
from repro.errors import CheckpointError, DeviceLostError
from repro.gpusim import Device, FaultEvent, FaultPlan
from repro.gpusim.spec import DeviceSpec
from repro.graph import generators as gen

MIB = 1 << 20


@pytest.fixture(scope="module")
def community():
    return gen.caveman_social(6, 40, p_in=0.35, seed=3)


@pytest.fixture(scope="module")
def spec():
    return DeviceSpec(memory_bytes=8 * MIB)


@pytest.fixture(scope="module")
def windowed_config():
    return SolverConfig(window_size=256)


@pytest.fixture(scope="module")
def baseline(community, spec, windowed_config):
    device = Device(spec)
    result = MaxCliqueSolver(community, windowed_config, device).solve()
    return result, device.stats().kernel_launches


# ----------------------------------------------------------------------
# schema round trip + validation
# ----------------------------------------------------------------------


class TestSchema:
    def test_round_trip(self, tmp_path):
        ckpt = SearchCheckpoint(
            graph_fingerprint="g" * 64,
            config_fingerprint="cfg",
            omega=5,
            best_clique=[1, 2, 3, 4, 5],
            pending=[(10, 20), (20, 40)],
            windows_done=3,
            total_windows=5,
        )
        path = tmp_path / "ckpt.json"
        ckpt.save(path)
        loaded = load_checkpoint(path)
        assert loaded == ckpt

    def test_schema_stamped(self):
        assert SearchCheckpoint().to_dict()["schema"] == CHECKPOINT_SCHEMA

    def test_rejects_wrong_schema(self):
        with pytest.raises(CheckpointError):
            SearchCheckpoint.from_dict({"schema": "repro-checkpoint/99"})

    def test_rejects_unknown_keys(self):
        with pytest.raises(CheckpointError):
            SearchCheckpoint.from_dict(
                {"schema": CHECKPOINT_SCHEMA, "surprise": 1}
            )

    def test_rejects_bad_pending(self):
        for pending in ([[1]], [[2, 1]], [[-1, 3]], ["ab"], [[1.5, 2]]):
            with pytest.raises(CheckpointError):
                SearchCheckpoint.from_dict(
                    {"schema": CHECKPOINT_SCHEMA, "pending": pending}
                )

    def test_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_validate_for(self):
        ckpt = SearchCheckpoint(graph_fingerprint="aaa", config_fingerprint="bbb")
        ckpt.validate_for("aaa", "bbb")  # must not raise
        with pytest.raises(CheckpointError):
            ckpt.validate_for("zzz", "bbb")
        with pytest.raises(CheckpointError):
            ckpt.validate_for("aaa", "zzz")

    def test_unstamped_checkpoint_validates_anywhere(self):
        # the core layer leaves fingerprints empty; empty means unchecked
        SearchCheckpoint().validate_for("anything", "anything")

    def test_exhausted(self):
        assert SearchCheckpoint().exhausted
        assert not SearchCheckpoint(pending=[(0, 5)]).exhausted


# ----------------------------------------------------------------------
# sink capture during a windowed solve
# ----------------------------------------------------------------------


class TestSinkCapture:
    def test_sink_called_per_window(self, community, spec, windowed_config, baseline):
        result, _ = baseline
        sinks = []
        MaxCliqueSolver(
            community, windowed_config, Device(spec), checkpoint_sink=sinks.append
        ).solve()
        assert len(sinks) == len(result.windows)
        # monotone progress, fingerprints stamped, final one exhausted
        done = [c.windows_done for c in sinks]
        assert done == sorted(done) and done[-1] == len(result.windows)
        assert all(c.graph_fingerprint == community.fingerprint() for c in sinks)
        assert all(
            c.config_fingerprint == config_fingerprint(windowed_config)
            for c in sinks
        )
        assert sinks[-1].exhausted
        assert sinks[-1].omega == result.clique_number

    def test_no_sink_no_overhead(self, community, spec, windowed_config, baseline):
        _, launches = baseline
        device = Device(spec)
        MaxCliqueSolver(community, windowed_config, device).solve()
        assert device.stats().kernel_launches == launches

    def test_sink_does_not_change_model_time(
        self, community, spec, windowed_config, baseline
    ):
        result, _ = baseline
        device = Device(spec)
        sunk = MaxCliqueSolver(
            community, windowed_config, device, checkpoint_sink=lambda c: None
        ).solve()
        assert sunk.model_time_s == result.model_time_s

    def test_fanout_rejects_checkpointing(self, community, spec):
        config = SolverConfig(window_size=256, window_fanout=2)
        with pytest.raises(CheckpointError):
            MaxCliqueSolver(
                community, config, Device(spec), checkpoint_sink=lambda c: None
            ).solve()


# ----------------------------------------------------------------------
# interrupt + resume equivalence
# ----------------------------------------------------------------------


class TestResume:
    def _interrupt(self, community, spec, config, at_launch):
        plan = FaultPlan([FaultEvent(0, "launch", at_launch, "device-lost")])
        device = Device(spec)
        device.set_fault_injector(plan.injector_for(0))
        with pytest.raises(DeviceLostError) as err:
            MaxCliqueSolver(community, config, device).solve()
        return err.value.checkpoint

    def test_lost_device_carries_checkpoint(
        self, community, spec, windowed_config, baseline
    ):
        _, launches = baseline
        ckpt = self._interrupt(community, spec, windowed_config, launches // 2)
        assert ckpt is not None
        assert 0 < ckpt.windows_done < ckpt.total_windows
        assert not ckpt.exhausted
        assert ckpt.graph_fingerprint == community.fingerprint()
        assert ckpt.config_fingerprint == config_fingerprint(windowed_config)

    def test_resume_matches_uninterrupted(
        self, community, spec, windowed_config, baseline
    ):
        result, launches = baseline
        ckpt = self._interrupt(community, spec, windowed_config, launches // 2)
        resumed = MaxCliqueSolver(
            community, windowed_config, Device(spec), checkpoint=ckpt
        ).solve()
        assert resumed.clique_number == result.clique_number
        assert np.array_equal(resumed.cliques, result.cliques)
        # only the remaining windows ran
        assert len(resumed.windows) == len(ckpt.pending)

    def test_resume_through_json(self, community, spec, windowed_config, baseline):
        result, launches = baseline
        ckpt = self._interrupt(community, spec, windowed_config, launches // 2)
        rt = SearchCheckpoint.from_dict(json.loads(json.dumps(ckpt.to_dict())))
        resumed = MaxCliqueSolver(
            community, windowed_config, Device(spec), checkpoint=rt
        ).solve()
        assert resumed.clique_number == result.clique_number
        assert np.array_equal(resumed.cliques, result.cliques)

    def test_resume_rejects_other_graph(
        self, community, spec, windowed_config, baseline
    ):
        _, launches = baseline
        ckpt = self._interrupt(community, spec, windowed_config, launches // 2)
        other = gen.caveman_social(5, 30, p_in=0.4, seed=9)
        with pytest.raises(CheckpointError):
            MaxCliqueSolver(
                other, windowed_config, Device(spec), checkpoint=ckpt
            ).solve()

    def test_resume_rejects_other_config(
        self, community, spec, windowed_config, baseline
    ):
        _, launches = baseline
        ckpt = self._interrupt(community, spec, windowed_config, launches // 2)
        with pytest.raises(CheckpointError):
            MaxCliqueSolver(
                community,
                SolverConfig(window_size=128),
                Device(spec),
                checkpoint=ckpt,
            ).solve()

    def test_host_only_knobs_do_not_invalidate(
        self, community, spec, windowed_config, baseline
    ):
        result, launches = baseline
        ckpt = self._interrupt(community, spec, windowed_config, launches // 2)
        retuned = SolverConfig(window_size=256, chunk_pairs=1 << 10)
        resumed = MaxCliqueSolver(
            community, retuned, Device(spec), checkpoint=ckpt
        ).solve()
        assert resumed.clique_number == result.clique_number

    def test_exhausted_checkpoint_returns_its_best(
        self, community, spec, windowed_config
    ):
        sinks = []
        result = MaxCliqueSolver(
            community, windowed_config, Device(spec), checkpoint_sink=sinks.append
        ).solve()
        final = sinks[-1]
        assert final.exhausted
        replay = MaxCliqueSolver(
            community, windowed_config, Device(spec), checkpoint=final
        ).solve()
        assert replay.clique_number == result.clique_number
        assert len(replay.windows) == 0  # no window re-ran

    def test_early_interrupt_has_no_completed_windows(
        self, community, spec, windowed_config
    ):
        # lost on the very first charged launch: checkpoint exists but
        # records zero completed windows (resume restarts from scratch)
        ckpt = self._interrupt(community, spec, windowed_config, 0)
        assert ckpt is None or ckpt.windows_done == 0
