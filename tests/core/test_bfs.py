"""Breadth-first search core tests (paper Algorithm 2)."""

import time

import numpy as np
import pytest

from repro.core.bfs import bfs_search, _chunk_slices, _expand_pairs
from repro.core.setup import build_two_clique_list
from repro.errors import DeviceOOMError, SolveTimeoutError
from repro.graph import from_edge_list
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec

from ..conftest import nx_maximum_cliques


@pytest.fixture
def dev():
    return Device(DeviceSpec(memory_bytes=1 << 26))


def run_bfs(graph, omega_bar, dev, **kw):
    src, dst, _ = build_two_clique_list(graph, omega_bar, dev)
    return bfs_search(graph, src, dst, omega_bar, dev, **kw)


class TestSearch:
    def test_triangle(self, triangle, dev):
        out = run_bfs(triangle, 2, dev)
        assert out.omega == 3
        assert out.clique_list.head.size == 1

    def test_paper_graph_enumerates_unique_max(self, paper_graph, dev):
        out = run_bfs(paper_graph, 2, dev)
        assert out.omega == 4
        cliques = out.clique_list.read_cliques()
        assert cliques.shape == (1, 4)
        assert sorted(cliques[0].tolist()) == [1, 2, 3, 4]

    def test_two_disjoint_triangles(self, dev):
        g = from_edge_list([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        out = run_bfs(g, 2, dev)
        assert out.omega == 3
        assert out.clique_list.head.size == 2

    def test_path_graph_max_is_edge(self, path4, dev):
        out = run_bfs(path4, 2, dev)
        assert out.omega == 2
        assert out.clique_list.head.size == 3  # all three edges

    def test_empty_root(self, dev):
        out = bfs_search(
            from_edge_list([(0, 1)]),
            np.zeros(0, dtype=np.int32),
            np.zeros(0, dtype=np.int32),
            2,
            dev,
        )
        assert out.omega == 0

    def test_level_stats_recorded(self, dev):
        g = gen.complete_graph(5)
        out = run_bfs(g, 2, dev)
        assert [s.level for s in out.levels] == [2, 3, 4, 5]
        assert out.levels[0].candidates == 10  # C(5,2) edges

    def test_pruning_reduces_candidates(self, dev):
        g = gen.erdos_renyi(40, 0.3, seed=11)
        omega, _ = nx_maximum_cliques(g)
        loose = run_bfs(g, 2, dev)
        tight = run_bfs(g, omega, dev)
        assert tight.omega == loose.omega == omega
        assert tight.candidates_stored <= loose.candidates_stored

    def test_small_chunks_same_result(self, dev):
        g = gen.erdos_renyi(30, 0.4, seed=12)
        a = run_bfs(g, 2, dev)
        b = run_bfs(g, 2, dev, chunk_pairs=7)
        assert a.omega == b.omega
        ca = np.sort(np.sort(a.clique_list.read_cliques(), axis=1), axis=0)
        cb = np.sort(np.sort(b.clique_list.read_cliques(), axis=1), axis=0)
        assert (ca == cb).all()

    def test_oom_propagates(self):
        small = Device(DeviceSpec(memory_bytes=48 * 1024))
        g = gen.caveman_social(4, 30, p_in=0.6, seed=3)
        with pytest.raises(DeviceOOMError):
            run_bfs(g, 2, small)

    def test_deadline_raises(self, dev):
        g = gen.caveman_social(4, 40, p_in=0.5, seed=4)
        src, dst, _ = build_two_clique_list(g, 2, dev)
        with pytest.raises(SolveTimeoutError):
            bfs_search(g, src, dst, 2, dev, deadline=time.perf_counter() - 1)

    def test_model_time_advances(self, dev):
        g = gen.erdos_renyi(30, 0.3, seed=13)
        before = dev.model_time_s
        run_bfs(g, 2, dev)
        assert dev.model_time_s > before


class TestChunkHelpers:
    def test_chunk_slices_cover_all_threads(self):
        tail = np.array([3, 0, 5, 2, 2, 0, 1])
        slices = list(_chunk_slices(tail, 4))
        covered = []
        for a, b in slices:
            assert sum(tail[a:b]) <= 4 or b - a == 1
            covered.extend(range(a, b))
        assert covered == sorted(set(covered))
        assert covered[0] == 0 and covered[-1] >= 6 or tail[covered[-1] + 1 :].sum() == 0

    def test_chunk_slices_empty(self):
        assert list(_chunk_slices(np.zeros(3, dtype=np.int64), 10)) == []

    def test_oversized_single_thread(self):
        tail = np.array([100])
        assert list(_chunk_slices(tail, 4)) == [(0, 1)]

    def test_expand_pairs(self):
        idx1, idx2 = _expand_pairs(np.array([2, 0, 1]), start=5)
        assert idx1.tolist() == [5, 5, 7]
        assert idx2.tolist() == [6, 7, 8]

    def test_expand_pairs_empty(self):
        idx1, idx2 = _expand_pairs(np.zeros(0, dtype=np.int64), 0)
        assert idx1.size == 0
