"""Structural invariances of the clique number under graph operations.

ω is a graph invariant; the solver must respect the algebra:
relabelling cannot change it, taking unions cannot decrease it,
induced subgraphs cannot increase it, and adding a dominating apex
vertex increases it by exactly one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import find_maximum_cliques
from repro.graph import from_edge_array, from_edge_list, induced_subgraph, relabel_random
from repro.graph import generators as gen
from repro.graph.build import graph_union

SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def graphs(draw, max_n=22):
    n = draw(st.integers(3, max_n))
    p = draw(st.floats(0.1, 0.6))
    seed = draw(st.integers(0, 2**31 - 1))
    return gen.erdos_renyi(n, p, seed=seed)


class TestRelabelInvariance:
    @given(graphs(), st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_omega_invariant_under_relabel(self, g, seed):
        a = find_maximum_cliques(g)
        b = find_maximum_cliques(relabel_random(g, seed=seed))
        assert a.clique_number == b.clique_number
        assert a.num_maximum_cliques == b.num_maximum_cliques


class TestUnionMonotonicity:
    @given(graphs(max_n=16), graphs(max_n=16))
    @settings(**SETTINGS)
    def test_union_never_decreases_omega(self, g1, g2):
        u = graph_union(g1, g2)
        wu = find_maximum_cliques(u).clique_number
        w1 = find_maximum_cliques(g1).clique_number
        w2 = find_maximum_cliques(g2).clique_number
        assert wu >= max(w1, w2)


class TestSubgraphMonotonicity:
    @given(graphs(), st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_induced_subgraph_never_increases_omega(self, g, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, g.num_vertices + 1))
        verts = rng.choice(g.num_vertices, size=k, replace=False)
        sub, _ = induced_subgraph(g, verts)
        w_sub = find_maximum_cliques(sub).clique_number
        w = find_maximum_cliques(g).clique_number
        assert w_sub <= w


class TestApexVertex:
    @given(graphs(max_n=16))
    @settings(**SETTINGS)
    def test_dominating_apex_adds_exactly_one(self, g):
        n = g.num_vertices
        src, dst = g.to_edge_list()
        apex_src = np.full(n, n, dtype=np.int64)
        apex_dst = np.arange(n, dtype=np.int64)
        g2 = from_edge_array(
            np.concatenate([src.astype(np.int64), apex_src]),
            np.concatenate([dst.astype(np.int64), apex_dst]),
            num_vertices=n + 1,
        )
        w = find_maximum_cliques(g).clique_number
        r2 = find_maximum_cliques(g2)
        assert r2.clique_number == w + 1
        # every maximum clique of g2 contains the apex
        assert all(n in row.tolist() for row in r2.cliques)
