"""Property-based tests of the solver's core invariants (hypothesis).

These drive random graphs through the full pipeline and check the
paper-level invariants: exactness of ω, completeness of enumeration,
heuristic soundness, windowed/full agreement, and monotone pruning.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Device, DeviceSpec, find_maximum_cliques
from repro.baselines import brute_force_maximum_cliques, maximum_cliques_via_bk
from repro.graph import core_numbers, from_edge_list
from repro.graph import generators as gen

from ..conftest import assert_is_clique

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_n=24):
    n = draw(st.integers(2, max_n))
    density = draw(st.floats(0.05, 0.75))
    seed = draw(st.integers(0, 2**31 - 1))
    return gen.erdos_renyi(n, density, seed=seed)


@st.composite
def edge_lists(draw, max_n=14):
    n = draw(st.integers(1, max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=40,
        )
    )
    return from_edge_list(edges, num_vertices=n)


class TestExactness:
    @given(random_graphs())
    @settings(**SETTINGS)
    def test_enumeration_matches_bron_kerbosch(self, g):
        omega, want = maximum_cliques_via_bk(g)
        r = find_maximum_cliques(g)
        assert r.clique_number == omega
        if g.num_edges:
            assert r.num_maximum_cliques == len(want)
            got = {tuple(sorted(row.tolist())) for row in r.cliques}
            assert got == {tuple(c) for c in want}

    @given(edge_lists())
    @settings(**SETTINGS)
    def test_arbitrary_edge_lists_match_brute_force(self, g):
        omega, want = brute_force_maximum_cliques(g)
        r = find_maximum_cliques(g)
        assert r.clique_number == omega
        assert r.num_maximum_cliques == len(want)

    @given(random_graphs(max_n=20), st.sampled_from([3, 7, 16]))
    @settings(**SETTINGS)
    def test_windowed_agrees_with_full(self, g, window):
        full = find_maximum_cliques(g)
        win = find_maximum_cliques(g, window_size=window)
        assert win.clique_number == full.clique_number
        if win.clique_number >= 2:
            assert_is_clique(g, win.cliques[0])


class TestHeuristicSoundness:
    @given(
        random_graphs(),
        st.sampled_from(
            ["single-degree", "single-core", "multi-degree", "multi-core"]
        ),
    )
    @settings(**SETTINGS)
    def test_bound_is_sound_and_clique_real(self, g, heuristic):
        r = find_maximum_cliques(g, heuristic=heuristic)
        lb = r.heuristic.lower_bound
        assert lb <= r.clique_number
        if r.heuristic.clique.size:
            assert_is_clique(g, r.heuristic.clique)

    @given(random_graphs())
    @settings(**SETTINGS)
    def test_core_bound_sandwich(self, g):
        # omega <= degeneracy + 1 always; heuristic <= omega
        r = find_maximum_cliques(g)
        if g.num_edges:
            degen = int(core_numbers(g).max())
            assert r.heuristic.lower_bound <= r.clique_number <= degen + 1


class TestPruningInvariants:
    @given(random_graphs())
    @settings(**SETTINGS)
    def test_better_bound_never_changes_answer(self, g):
        if g.num_edges == 0:
            return
        weak = find_maximum_cliques(g, heuristic="none")
        strong = find_maximum_cliques(g, heuristic="multi-degree")
        assert weak.clique_number == strong.clique_number
        assert weak.num_maximum_cliques == strong.num_maximum_cliques
        assert strong.candidates_stored <= weak.candidates_stored

    @given(random_graphs())
    @settings(**SETTINGS)
    def test_orderings_are_result_invariant(self, g):
        if g.num_edges == 0:
            return
        base = find_maximum_cliques(g)
        for kw in (
            dict(sublist_order="index"),
            dict(orientation_key="index"),
            dict(coloring_preprune=True),
        ):
            r = find_maximum_cliques(g, **kw)
            assert r.clique_number == base.clique_number
            assert r.num_maximum_cliques == base.num_maximum_cliques


class TestMemoryInvariants:
    @given(random_graphs(max_n=20))
    @settings(**SETTINGS)
    def test_oom_monotone_in_budget(self, g):
        """If a budget suffices, every larger budget must too."""
        from repro.errors import DeviceOOMError

        outcomes = []
        for shift in (15, 17, 19, 23, 26):
            dev = Device(DeviceSpec(memory_bytes=1 << shift))
            try:
                find_maximum_cliques(g, device=dev)
                outcomes.append(True)
            except DeviceOOMError:
                outcomes.append(False)
        # monotone: no True before a False
        assert outcomes == sorted(outcomes)

    @given(random_graphs(max_n=20))
    @settings(**SETTINGS)
    def test_device_memory_restored(self, g):
        dev = Device(DeviceSpec(memory_bytes=1 << 26))
        before = dev.pool.in_use_bytes
        find_maximum_cliques(g, device=dev)
        assert dev.pool.in_use_bytes == before
