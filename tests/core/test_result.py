"""Result dataclass behaviour tests."""

import numpy as np
import pytest

from repro.core.result import (
    HeuristicReport,
    LevelStats,
    MaxCliqueResult,
    SetupStats,
    WindowStats,
)


def make_result(**kw):
    defaults = dict(
        clique_number=3,
        num_maximum_cliques=2,
        cliques=np.array([[0, 1, 2], [1, 2, 3]], dtype=np.int32),
        found_by="search",
        enumerated_all=True,
        heuristic=HeuristicReport("multi-degree", 3, np.array([0, 1, 2])),
    )
    defaults.update(kw)
    return MaxCliqueResult(**defaults)


class TestMaxCliqueResult:
    def test_pruned_fraction(self):
        r = make_result(candidates_pruned=30, candidates_stored=70)
        assert r.pruned_fraction == pytest.approx(0.3)

    def test_pruned_fraction_empty(self):
        assert make_result().pruned_fraction == 0.0

    def test_throughput(self):
        r = make_result(model_time_s=0.5)
        assert r.throughput_eps(100) == pytest.approx(200.0)

    def test_throughput_zero_time(self):
        assert make_result(model_time_s=0.0).throughput_eps(10) == float("inf")

    def test_summary_contents(self):
        r = make_result(
            model_time_s=1e-3,
            peak_memory_bytes=2 << 20,
            candidates_pruned=1,
            candidates_stored=1,
        )
        s = r.summary()
        assert "omega=3" in s
        assert "x2" in s
        assert "search" in s
        assert "50.0%" in s


class TestSetupStats:
    def test_pruned_fraction(self):
        s = SetupStats(total_edges=10, pruned_2cliques=4, kept_2cliques=6)
        assert s.pruned_fraction == pytest.approx(0.4)

    def test_empty(self):
        assert SetupStats().pruned_fraction == 0.0


class TestSmallRecords:
    def test_level_stats_fields(self):
        ls = LevelStats(level=3, candidates=10, generated=8, pruned=2)
        assert ls.level == 3

    def test_window_stats_fields(self):
        ws = WindowStats(
            index=0, start=0, end=10, peak_bytes=100,
            best_clique_size=4, levels=3,
        )
        assert ws.end == 10

    def test_heuristic_report_defaults(self):
        hr = HeuristicReport("none", 1, np.zeros(0, dtype=np.int32))
        assert hr.model_time_s == 0.0
        assert hr.wall_time_s == 0.0
