"""Stateful property testing: ω under graph edits.

A hypothesis rule-based machine grows a graph edge by edge and checks
two monotonicity invariants after every batch of edits:

* adding edges never decreases the clique number;
* the solver stays consistent with the incremental Bron-Kerbosch
  oracle at every step.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro import find_maximum_cliques
from repro.baselines import maximum_cliques_via_bk
from repro.graph import from_edge_list

N = 12  # vertex universe


class GrowingGraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.edges = set()
        self.last_omega = 0
        self.checks = 0

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def add_edge(self, u, v):
        if u != v:
            self.edges.add((min(u, v), max(u, v)))

    @rule(
        members=st.lists(
            st.integers(0, N - 1), min_size=3, max_size=5, unique=True
        )
    )
    def add_clique(self, members):
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                self.edges.add((min(a, b), max(a, b)))

    @invariant()
    def omega_is_exact_and_monotone(self):
        g = from_edge_list(sorted(self.edges), num_vertices=N)
        result = find_maximum_cliques(g)
        ref_omega, ref_cliques = maximum_cliques_via_bk(g)
        assert result.clique_number == ref_omega
        assert result.num_maximum_cliques == len(ref_cliques)
        # edges only ever get added: omega never decreases
        assert result.clique_number >= self.last_omega
        self.last_omega = result.clique_number


GrowingGraphMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestGrowingGraph = GrowingGraphMachine.TestCase
