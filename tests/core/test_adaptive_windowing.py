"""Recursive (adaptive) windowing extension tests (paper Section V-C3)."""

import numpy as np
import pytest

from repro import Device, DeviceSpec, find_maximum_cliques
from repro.baselines import maximum_cliques_via_bk
from repro.core.setup import build_two_clique_list
from repro.core.windowed import windowed_search
from repro.errors import DeviceOOMError, SolverConfigError
from repro.graph import generators as gen

from ..conftest import assert_is_clique


def _tight_budget(graph) -> int:
    """A budget too small for one big window, workable when split."""
    dev = Device(DeviceSpec(memory_bytes=1 << 26))
    src, dst, _ = build_two_clique_list(graph, 2, dev)
    from repro.core.bfs import bfs_search

    out = bfs_search(graph, src, dst, 2, dev)
    need = out.clique_list.total_bytes
    out.clique_list.free_all()
    return need // 16 + graph.num_edges * 16 + 100_000


class TestAdaptiveWindowing:
    def test_splits_rescue_oom(self):
        g = gen.caveman_social(5, 45, p_in=0.55, seed=6)
        ref, _ = maximum_cliques_via_bk(g)
        budget = _tight_budget(g)
        empty = np.zeros(0, dtype=np.int32)

        dev = Device(DeviceSpec(memory_bytes=budget))
        src, dst, _ = build_two_clique_list(g, 2, dev)
        with pytest.raises(DeviceOOMError):
            windowed_search(g, src, dst, 2, empty, dev, window_size=1 << 20)

        dev = Device(DeviceSpec(memory_bytes=budget))
        src, dst, _ = build_two_clique_list(g, 2, dev)
        out = windowed_search(
            g, src, dst, 2, empty, dev, window_size=1 << 20, adaptive=True
        )
        assert out.omega == ref
        assert out.adaptive_splits > 0
        assert_is_clique(g, out.best_clique)

    def test_single_sublist_still_ooms(self):
        # one dense community: the root sublists themselves explode
        g = gen.caveman_social(1, 60, p_in=0.8, p_out_degree=0, seed=7)
        dev = Device(DeviceSpec(memory_bytes=1 << 17))
        with pytest.raises(DeviceOOMError):
            find_maximum_cliques(
                g, device=dev, heuristic="none", window_size=4,
                adaptive_windowing=True,
            )

    def test_solver_level_flag(self):
        g = gen.erdos_renyi(40, 0.35, seed=8)
        ref, _ = maximum_cliques_via_bk(g)
        r = find_maximum_cliques(
            g, window_size=16, adaptive_windowing=True
        )
        assert r.clique_number == ref

    def test_flag_requires_windowed(self):
        with pytest.raises(SolverConfigError):
            find_maximum_cliques(
                gen.complete_graph(3), adaptive_windowing=True
            )

    def test_no_split_when_memory_suffices(self):
        g = gen.erdos_renyi(30, 0.3, seed=9)
        dev = Device(DeviceSpec(memory_bytes=1 << 26))
        src, dst, _ = build_two_clique_list(g, 2, dev)
        out = windowed_search(
            g, src, dst, 2, np.zeros(0, dtype=np.int32), dev,
            window_size=1 << 20, adaptive=True,
        )
        assert out.adaptive_splits == 0
