"""2-clique list formation tests (paper Section IV-C)."""

import numpy as np
import pytest

from repro.core.config import RankKey, SublistOrder
from repro.core.setup import build_two_clique_list, vertex_upper_bounds
from repro.graph import core_numbers, from_edge_list
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec


@pytest.fixture
def dev():
    return Device(DeviceSpec(memory_bytes=1 << 26))


class TestVertexUpperBounds:
    def test_degree_bound(self, triangle):
        bounds = vertex_upper_bounds(triangle, triangle.degrees)
        assert bounds.tolist() == [3, 3, 3]

    def test_core_bound_tighter_on_star(self):
        g = gen.star_graph(5)
        deg_bounds = vertex_upper_bounds(g, g.degrees)
        core_bounds = vertex_upper_bounds(g, core_numbers(g))
        assert deg_bounds[0] == 6  # hub degree + 1
        assert core_bounds[0] == 2  # hub core + 1: the truth
        assert (core_bounds <= deg_bounds).all()

    def test_coloring_preprune_tightens(self):
        # bipartite-ish graph: colouring bound beats degree bound
        g = gen.cycle_graph(8)
        plain = vertex_upper_bounds(g, g.degrees)
        colored = vertex_upper_bounds(g, g.degrees, coloring_preprune=True)
        assert (colored <= plain).all()
        assert colored.max() <= 3


class TestBuildTwoCliqueList:
    def test_no_pruning_keeps_all_edges(self, paper_graph, dev):
        src, dst, stats = build_two_clique_list(paper_graph, 2, dev)
        assert src.size == paper_graph.num_edges
        assert stats.kept_2cliques == paper_graph.num_edges
        assert stats.pruned_2cliques == 0

    def test_each_edge_once(self, dev):
        g = gen.erdos_renyi(40, 0.3, seed=7)
        src, dst, _ = build_two_clique_list(g, 2, dev)
        got = {frozenset((int(a), int(b))) for a, b in zip(src, dst)}
        want = {frozenset((int(a), int(b))) for a, b in zip(*g.to_edge_list())}
        assert got == want

    def test_vertex_preprune(self, paper_graph, dev):
        # omega_bar=4 removes A (degree 2 -> bound 3)
        src, dst, stats = build_two_clique_list(paper_graph, 4, dev)
        assert stats.prepruned_vertices == 1
        assert 0 not in set(src.tolist()) | set(dst.tolist())

    def test_sublist_length_prune(self, dev):
        # path graph: with omega_bar=3 every sublist (length <= 2 but
        # needing length >= 2)... use a star: leaves have sublists of
        # length 1, omega_bar=3 prunes everything
        g = gen.star_graph(4)
        src, dst, stats = build_two_clique_list(g, 3, dev)
        assert src.size == 0
        assert stats.pruned_2cliques == g.num_edges

    def test_core_ranks_prune_more_than_degree(self, dev):
        # star + triangle: hub has high degree, low core
        g = from_edge_list([(0, 1), (0, 2), (0, 3), (0, 4), (5, 6), (6, 7), (5, 7), (0, 5)])
        core = core_numbers(g)
        _, _, deg_stats = build_two_clique_list(g, 3, dev)
        _, _, core_stats = build_two_clique_list(g, 3, dev, ranks=core)
        assert core_stats.pruned_2cliques >= deg_stats.pruned_2cliques

    def test_sublist_degree_sort(self, dev):
        g = gen.chung_lu_power_law(100, 6.0, seed=3)
        src, dst, _ = build_two_clique_list(
            g, 2, dev, sublist_order=SublistOrder.DEGREE
        )
        deg = g.degrees
        # within each source group, destination degrees are non-decreasing
        for s in np.unique(src):
            d = dst[src == s].astype(np.int64)
            assert (np.diff(deg[d]) >= 0).all()

    def test_sublist_index_order(self, dev):
        g = gen.erdos_renyi(30, 0.3, seed=4)
        src, dst, _ = build_two_clique_list(
            g, 2, dev, sublist_order=SublistOrder.INDEX
        )
        for s in np.unique(src):
            d = dst[src == s]
            assert (np.diff(d.astype(np.int64)) > 0).all()

    def test_index_orientation(self, dev):
        g = gen.erdos_renyi(30, 0.3, seed=5)
        src, dst, _ = build_two_clique_list(
            g, 2, dev, orientation_key=RankKey.INDEX,
            sublist_order=SublistOrder.INDEX,
        )
        assert (src.astype(np.int64) < dst.astype(np.int64)).all()

    def test_degree_orientation_shortens_sublists(self, dev):
        # With degree orientation on a star, the hub is never a source
        g = gen.star_graph(6)
        src, dst, _ = build_two_clique_list(g, 2, dev)
        assert (dst == 0).all()

    def test_sources_grouped(self, dev):
        g = gen.erdos_renyi(40, 0.2, seed=6)
        src, _, _ = build_two_clique_list(g, 2, dev)
        # grouped = each source value appears in one contiguous run
        changes = np.flatnonzero(np.diff(src.astype(np.int64)) != 0)
        assert len(np.unique(src)) == changes.size + 1 if src.size else True

    def test_stats_fractions(self, dev):
        g = gen.star_graph(4)
        _, _, stats = build_two_clique_list(g, 3, dev)
        assert stats.pruned_fraction == 1.0
