"""Divergence and cost-model behaviour of the solver kernels.

Checks that the paper's architectural claims are visible in the
simulated device's accounting: the expansion kernels diverge (ragged
sublist tails), high-degree graphs diverge more, and the latency
bound penalises tiny windows.
"""

import pytest

from repro import Device, DeviceSpec, MaxCliqueSolver, SolverConfig
from repro.graph import generators as gen

MIB = 1 << 20


def solve_with_profile(graph, **config_kwargs):
    dev = Device(DeviceSpec(memory_bytes=512 * MIB))
    MaxCliqueSolver(graph, SolverConfig(**config_kwargs), dev).solve()
    return dev.kernel_breakdown()


class TestDivergence:
    def test_expansion_kernels_diverge(self):
        g = gen.caveman_social(5, 40, p_in=0.4, seed=1)
        prof = solve_with_profile(g)
        # ragged tails: later sublist positions have shorter loops
        assert prof["count_cliques"].divergence_waste > 0.2
        assert prof["output_new_cliques"].divergence_waste > 0.2

    def test_uniform_primitives_barely_diverge(self):
        g = gen.caveman_social(5, 40, p_in=0.4, seed=1)
        prof = solve_with_profile(g)
        assert prof["exclusive_scan"].divergence_waste < 0.1

    def test_divergence_is_ragged_tail_driven(self):
        # within a sublist, tails shrink from L-1 to 0, so lockstep
        # waste stays substantial on ANY graph shape -- the structural
        # reason the paper calls these accesses hard to balance
        for g in (
            gen.road_grid(60, 60, seed=2),
            gen.caveman_social(4, 60, p_in=0.45, seed=2),
        ):
            waste = solve_with_profile(g)["count_cliques"].divergence_waste
            assert 0.2 < waste < 0.95


class TestWindowLatencyCost:
    def test_smaller_windows_cost_more_model_time(self):
        g = gen.caveman_social(6, 50, p_in=0.4, seed=3)
        times = {}
        for window in (64, 1 << 20):
            dev = Device(DeviceSpec(memory_bytes=512 * MIB))
            r = MaxCliqueSolver(
                g, SolverConfig(window_size=window), dev
            ).solve()
            times[window] = r.model_time_s
        # paper Section V-C2: the smaller the window, the longer the runtime
        assert times[64] > times[1 << 20]

    def test_launch_counts_grow_with_window_count(self):
        g = gen.caveman_social(6, 50, p_in=0.4, seed=3)
        launches = {}
        for window in (64, 1 << 20):
            dev = Device(DeviceSpec(memory_bytes=512 * MIB))
            MaxCliqueSolver(g, SolverConfig(window_size=window), dev).solve()
            launches[window] = dev.stats().kernel_launches
        assert launches[64] > launches[1 << 20]
