"""Window machinery internals: ordering, sizing, boundary snapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WindowOrder
from repro.core.setup import build_two_clique_list
from repro.core.windowed import _order_groups, split_windows
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec


class TestOrderGroups:
    @pytest.fixture
    def oriented(self):
        g = gen.chung_lu_power_law(120, 6.0, seed=1)
        dev = Device(DeviceSpec(memory_bytes=1 << 24))
        src, dst, _ = build_two_clique_list(g, 2, dev)
        return g, src, dst

    def test_natural_is_identity(self, oriented):
        g, src, dst = oriented
        s2, d2 = _order_groups(src, dst, g.degrees, WindowOrder.NATURAL)
        assert (s2 == src).all() and (d2 == dst).all()

    @pytest.mark.parametrize(
        "order,sign", [(WindowOrder.ASC_DEGREE, 1), (WindowOrder.DESC_DEGREE, -1)]
    )
    def test_groups_sorted_by_source_degree(self, oriented, order, sign):
        g, src, dst = oriented
        s2, d2 = _order_groups(src, dst, g.degrees, order)
        # same multiset of 2-cliques
        assert sorted(zip(s2.tolist(), d2.tolist())) == sorted(
            zip(src.tolist(), dst.tolist())
        )
        # group-leading source degrees are monotone in the right direction
        lead = s2[np.concatenate(([True], s2[1:] != s2[:-1]))]
        degs = g.degrees[lead.astype(np.int64)]
        assert (sign * np.diff(degs) >= 0).all()

    def test_groups_stay_contiguous(self, oriented):
        g, src, dst = oriented
        s2, _ = _order_groups(src, dst, g.degrees, WindowOrder.ASC_DEGREE)
        # each source id appears in exactly one run
        changes = int((np.diff(s2.astype(np.int64)) != 0).sum())
        assert changes + 1 == np.unique(s2).size


class TestSplitWindowsProperties:
    @given(
        st.lists(st.integers(1, 6), min_size=1, max_size=30),
        st.integers(1, 50),
    )
    @settings(max_examples=80, deadline=None)
    def test_tiling_and_boundaries(self, run_lengths, window):
        # build a sublist array of consecutive runs
        sub = np.concatenate(
            [np.full(l, i, dtype=np.int32) for i, l in enumerate(run_lengths)]
        )
        windows = split_windows(sub, window)
        # tiles the whole array
        assert windows[0][0] == 0
        assert windows[-1][1] == sub.size
        for (a1, b1), (a2, b2) in zip(windows, windows[1:]):
            assert b1 == a2
        # cuts only at run boundaries, and every window is non-empty
        for a, b in windows:
            assert b > a
            if b < sub.size:
                assert sub[b - 1] != sub[b]
