"""Windowed search tests (paper Section IV-E)."""

import numpy as np
import pytest

from repro.core.config import WindowOrder
from repro.core.setup import build_two_clique_list
from repro.core.windowed import auto_window_size, split_windows, windowed_search
from repro.graph import from_edge_list
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec

from ..conftest import assert_is_clique, nx_maximum_cliques


@pytest.fixture
def dev():
    return Device(DeviceSpec(memory_bytes=1 << 26))


class TestSplitWindows:
    def test_boundaries_respected(self):
        sub = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2])
        for w in (1, 2, 3, 4, 8, 100):
            windows = split_windows(sub, w)
            # windows tile the array
            assert windows[0][0] == 0
            assert windows[-1][1] == sub.size
            for (a1, b1), (a2, b2) in zip(windows, windows[1:]):
                assert b1 == a2
            # every cut is at a sublist boundary
            for _, b in windows[:-1]:
                assert sub[b - 1] != sub[b]

    def test_empty(self):
        assert split_windows(np.zeros(0, dtype=np.int32), 4) == []

    def test_single_window_when_large(self):
        sub = np.array([0, 0, 1])
        assert split_windows(sub, 100) == [(0, 3)]

    def test_progress_with_tiny_window(self):
        sub = np.array([0] * 50)  # one long sublist, window smaller
        assert split_windows(sub, 4) == [(0, 50)]

    def test_snaps_to_nearest_boundary(self):
        sub = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        # nominal end 5 is nearer to boundary 4 than 8
        assert split_windows(sub, 5) == [(0, 4), (4, 8)]


class TestAutoWindowSize:
    def test_unlimited_budget_means_one_window(self):
        dev = Device(DeviceSpec())
        dev.pool._budget = None  # oracle device
        g = gen.erdos_renyi(20, 0.3, seed=1)
        assert auto_window_size(g, dev, 55) == 55

    def test_bounded_and_clamped(self):
        dev = Device(DeviceSpec(memory_bytes=1 << 20))
        g = gen.caveman_social(5, 50, p_in=0.5, seed=2)
        w = auto_window_size(g, dev, g.num_edges)
        assert 256 <= w <= 1 << 20


class TestWindowedSearch:
    def run(self, g, dev, **kw):
        src, dst, _ = build_two_clique_list(g, 2, dev)
        return windowed_search(
            g, src, dst, 2, np.zeros(0, dtype=np.int32), dev, **kw
        )

    @pytest.mark.parametrize("window_size", [2, 8, 64, "auto"])
    def test_finds_maximum_clique(self, dev, window_size):
        for seed in range(8):
            g = gen.erdos_renyi(30, 0.35, seed=seed)
            if g.num_edges == 0:
                continue
            omega, _ = nx_maximum_cliques(g)
            out = self.run(g, dev, window_size=window_size)
            assert out.omega == omega
            assert_is_clique(g, out.best_clique)

    @pytest.mark.parametrize(
        "order", [WindowOrder.NATURAL, WindowOrder.ASC_DEGREE, WindowOrder.DESC_DEGREE]
    )
    def test_orderings_agree_on_omega(self, dev, order):
        g = gen.erdos_renyi(40, 0.3, seed=9)
        omega, _ = nx_maximum_cliques(g)
        out = self.run(g, dev, window_size=8, window_order=order)
        assert out.omega == omega

    def test_windows_free_memory(self, dev):
        g = gen.erdos_renyi(50, 0.3, seed=10)
        before = dev.pool.in_use_bytes
        self.run(g, dev, window_size=16)
        assert dev.pool.in_use_bytes == before

    def test_smaller_windows_lower_peak(self, dev):
        g = gen.caveman_social(4, 40, p_in=0.4, seed=11)
        src, dst, _ = build_two_clique_list(g, 2, dev)
        empty = np.zeros(0, dtype=np.int32)
        small = windowed_search(g, src, dst, 2, empty, dev, window_size=16)
        big = windowed_search(g, src, dst, 2, empty, dev, window_size=1 << 20)
        assert small.peak_window_bytes <= big.peak_window_bytes
        assert small.omega == big.omega
        assert len(small.windows) > len(big.windows)

    def test_heuristic_clique_is_floor(self, dev):
        g = from_edge_list([(0, 1), (1, 2), (0, 2)])
        src = np.zeros(0, dtype=np.int32)
        out = windowed_search(
            g, src, src, 3, np.array([0, 1, 2], dtype=np.int32), dev,
            window_size=4,
        )
        assert out.omega == 3
        assert sorted(out.best_clique.tolist()) == [0, 1, 2]

    def test_lower_bound_carries_across_windows(self, dev):
        # later windows inherit the best-so-far bound: total stored
        # candidates under a sweep must not exceed the no-bound sweep
        g = gen.erdos_renyi(50, 0.35, seed=12)
        src, dst, _ = build_two_clique_list(g, 2, dev)
        empty = np.zeros(0, dtype=np.int32)
        out = windowed_search(g, src, dst, 2, empty, dev, window_size=8)
        bars = [w.best_clique_size for w in out.windows]
        assert bars == sorted(bars)  # never decreases
