"""Result verification utility tests."""

import numpy as np
import pytest

from repro import find_maximum_cliques
from repro.core.result import MaxCliqueResult
from repro.core.verify import (
    VerificationError,
    is_clique,
    is_maximal_clique,
    verify_result,
)
from repro.graph import from_edge_list
from repro.graph import generators as gen


class TestIsClique:
    def test_positive(self, paper_graph):
        assert is_clique(paper_graph, [1, 2, 3, 4])
        assert is_clique(paper_graph, [0, 1])
        assert is_clique(paper_graph, [3])
        assert is_clique(paper_graph, [])

    def test_negative(self, paper_graph):
        assert not is_clique(paper_graph, [0, 3])  # missing edge
        assert not is_clique(paper_graph, [1, 1])  # duplicate
        assert not is_clique(paper_graph, [1, 99])  # out of range


class TestIsMaximal:
    def test_maximum_is_maximal(self, paper_graph):
        assert is_maximal_clique(paper_graph, [1, 2, 3, 4])

    def test_extendable_not_maximal(self, paper_graph):
        assert not is_maximal_clique(paper_graph, [1, 2, 3])  # + 4
        assert not is_maximal_clique(paper_graph, [0, 1])  # + 2

    def test_non_clique_not_maximal(self, paper_graph):
        assert not is_maximal_clique(paper_graph, [0, 3])


class TestVerifyResult:
    def test_accepts_correct_results(self):
        for seed in range(10):
            g = gen.erdos_renyi(25, 0.35, seed=seed)
            r = find_maximum_cliques(g)
            verify_result(g, r, cross_check=True)

    def test_accepts_windowed_results(self):
        g = gen.erdos_renyi(30, 0.35, seed=42)
        r = find_maximum_cliques(g, window_size=8)
        verify_result(g, r, cross_check=True)

    def test_rejects_wrong_omega(self, triangle):
        r = find_maximum_cliques(triangle)
        r.clique_number = 2
        with pytest.raises(VerificationError):
            verify_result(triangle, r)

    def test_rejects_fake_clique(self, paper_graph):
        r = find_maximum_cliques(paper_graph)
        r.cliques = np.array([[0, 1, 2, 3]], dtype=np.int32)  # not a clique
        with pytest.raises(VerificationError):
            verify_result(paper_graph, r)

    def test_rejects_non_maximal(self):
        g = gen.complete_graph(4)
        r = find_maximum_cliques(g)
        r.clique_number = 3
        r.cliques = np.array([[0, 1, 2]], dtype=np.int32)  # extendable
        with pytest.raises(VerificationError):
            verify_result(g, r)

    def test_rejects_duplicates(self, triangle):
        r = find_maximum_cliques(triangle)
        r.cliques = np.array([[0, 1, 2], [2, 1, 0]], dtype=np.int32)
        with pytest.raises(VerificationError):
            verify_result(triangle, r)

    def test_rejects_unsound_heuristic_bound(self, triangle):
        r = find_maximum_cliques(triangle)
        r.heuristic.lower_bound = 99
        with pytest.raises(VerificationError):
            verify_result(triangle, r)

    def test_rejects_wrong_enumeration_count(self):
        g = from_edge_list([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        r = find_maximum_cliques(g)
        r.num_maximum_cliques = 1
        r.cliques = r.cliques[:1]
        with pytest.raises(VerificationError):
            verify_result(g, r, cross_check=True)

    def test_cross_check_size_guard(self):
        g = gen.erdos_renyi(80, 0.1, seed=1)
        r = find_maximum_cliques(g)
        with pytest.raises(VerificationError):
            verify_result(g, r, cross_check=True, cross_check_limit=60)

    def test_empty_graph(self):
        g = from_edge_list([])
        r = find_maximum_cliques(g)
        verify_result(g, r)
