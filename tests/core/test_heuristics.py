"""Greedy heuristic tests (paper Section IV-A / Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Heuristic
from repro.core.heuristics import multi_run_greedy, run_heuristic, single_run_greedy
from repro.graph import core_numbers, from_edge_list
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec

from ..conftest import assert_is_clique, nx_maximum_cliques


@pytest.fixture
def dev():
    return Device(DeviceSpec(memory_bytes=1 << 26))


class TestSingleRun:
    def test_finds_clique_on_complete_graph(self, dev):
        g = gen.complete_graph(6)
        size, clique = single_run_greedy(g, g.degrees, dev)
        assert size == 6
        assert sorted(clique.tolist()) == list(range(6))

    def test_returns_valid_clique(self, dev):
        g = gen.erdos_renyi(40, 0.3, seed=3)
        size, clique = single_run_greedy(g, g.degrees, dev)
        assert size == clique.size
        assert_is_clique(g, clique)

    def test_single_vertex_graph(self, dev):
        g = from_edge_list([], num_vertices=1)
        size, clique = single_run_greedy(g, g.degrees, dev)
        assert size == 1

    def test_empty_graph(self, dev):
        g = from_edge_list([])
        size, clique = single_run_greedy(g, g.degrees, dev)
        assert size == 0

    def test_starts_from_highest_rank(self, dev):
        # star graph: highest degree is the hub; greedy yields an edge
        g = gen.star_graph(6)
        size, clique = single_run_greedy(g, g.degrees, dev)
        assert size == 2
        assert 0 in clique.tolist()

    def test_frees_device_memory(self, dev):
        g = gen.erdos_renyi(30, 0.3, seed=1)
        before = dev.pool.in_use_bytes
        single_run_greedy(g, g.degrees, dev)
        assert dev.pool.in_use_bytes == before


class TestMultiRun:
    def test_all_seeds_beats_single_run(self, dev):
        # multi-run is the best over h greedy starts, so it can only
        # match or beat the single run from the top-ranked vertex
        for seed in range(10):
            g = gen.erdos_renyi(35, 0.35, seed=seed)
            s1, _ = single_run_greedy(g, g.degrees, dev)
            sm, _ = multi_run_greedy(g, g.degrees, dev)
            assert sm >= s1

    def test_returns_valid_clique(self, dev):
        for seed in range(10):
            g = gen.erdos_renyi(30, 0.4, seed=100 + seed)
            size, clique = multi_run_greedy(g, g.degrees, dev)
            assert size == clique.size
            assert_is_clique(g, clique)

    def test_h_limits_seeds(self, dev):
        g = gen.planted_clique(100, 8, avg_degree=2.0, seed=5)
        # h=1 equals greedy from the single top-ranked seed
        s_h1, _ = multi_run_greedy(g, g.degrees, dev, h=1)
        s_top, _ = single_run_greedy(g, g.degrees, dev)
        assert s_h1 <= s_top  # single-run refills from the whole list
        s_all, _ = multi_run_greedy(g, g.degrees, dev)
        assert s_all >= s_h1

    def test_finds_planted_clique_with_all_seeds(self, dev):
        g = gen.planted_clique(200, 10, avg_degree=2.0, seed=6)
        size, clique = multi_run_greedy(g, g.degrees, dev)
        assert size == 10
        assert_is_clique(g, clique)

    def test_isolated_seeds_handled(self, dev):
        g = from_edge_list([(0, 1)], num_vertices=5)
        size, clique = multi_run_greedy(g, g.degrees, dev)
        assert size == 2

    def test_edgeless(self, dev):
        g = from_edge_list([], num_vertices=3)
        size, clique = multi_run_greedy(g, g.degrees, dev)
        assert size == 1

    def test_frees_device_memory(self, dev):
        g = gen.erdos_renyi(30, 0.3, seed=2)
        before = dev.pool.in_use_bytes
        multi_run_greedy(g, g.degrees, dev)
        assert dev.pool.in_use_bytes == before

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_lower_bound_never_exceeds_omega(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 25))
        g = gen.erdos_renyi(n, float(rng.uniform(0.1, 0.7)), seed=seed)
        if g.num_edges == 0:
            return
        dev = Device(DeviceSpec())
        omega, _ = nx_maximum_cliques(g)
        for ranks in (g.degrees, core_numbers(g)):
            size, clique = multi_run_greedy(g, ranks, dev)
            assert size <= omega
            assert_is_clique(g, clique)


class TestRunHeuristic:
    @pytest.mark.parametrize(
        "kind",
        [
            Heuristic.SINGLE_DEGREE,
            Heuristic.SINGLE_CORE,
            Heuristic.MULTI_DEGREE,
            Heuristic.MULTI_CORE,
        ],
    )
    def test_all_variants_report(self, kind, dev):
        g = gen.erdos_renyi(30, 0.4, seed=9)
        report = run_heuristic(g, kind, dev)
        assert report.kind == kind.value
        assert report.lower_bound == report.clique.size
        assert_is_clique(g, report.clique)
        assert report.model_time_s > 0

    def test_none_variant(self, dev):
        g = gen.erdos_renyi(10, 0.3, seed=1)
        report = run_heuristic(g, Heuristic.NONE, dev)
        assert report.lower_bound == 1
        assert report.clique.size == 0

    def test_empty_graph(self, dev):
        g = from_edge_list([])
        report = run_heuristic(g, Heuristic.MULTI_DEGREE, dev)
        assert report.lower_bound == 0

    def test_precomputed_ranks_accepted(self, dev):
        g = gen.erdos_renyi(20, 0.4, seed=2)
        core = core_numbers(g)
        r1 = run_heuristic(g, Heuristic.MULTI_CORE, dev, ranks=core)
        r2 = run_heuristic(g, Heuristic.MULTI_CORE, dev)
        assert r1.lower_bound == r2.lower_bound
