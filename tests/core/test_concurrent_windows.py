"""Concurrent-windows extension tests (paper Section V-C3)."""

import numpy as np
import pytest

from repro import Device, DeviceSpec, find_maximum_cliques
from repro.baselines import maximum_cliques_via_bk
from repro.core.concurrent import concurrent_windowed_search
from repro.core.setup import build_two_clique_list
from repro.errors import SolveTimeoutError, SolverConfigError
from repro.graph import generators as gen

from ..conftest import assert_is_clique

MIB = 1 << 20


def fresh_device():
    return Device(DeviceSpec(memory_bytes=256 * MIB))


class TestCorrectness:
    @pytest.mark.parametrize("fanout", [1, 2, 4, 7])
    def test_matches_oracle(self, fanout):
        for seed in range(6):
            g = gen.erdos_renyi(35, 0.35, seed=seed)
            if g.num_edges == 0:
                continue
            ref, _ = maximum_cliques_via_bk(g)
            r = find_maximum_cliques(
                g, device=fresh_device(), window_size=8, window_fanout=fanout
            )
            assert r.clique_number == ref
            assert_is_clique(g, r.cliques[0])

    def test_fanout_one_equals_sequential_omega(self):
        g = gen.caveman_social(5, 40, p_in=0.4, seed=2)
        seq = find_maximum_cliques(g, device=fresh_device(), window_size=64)
        con = find_maximum_cliques(
            g, device=fresh_device(), window_size=64, window_fanout=1
        )
        assert seq.clique_number == con.clique_number

    def test_direct_api(self):
        g = gen.erdos_renyi(40, 0.3, seed=3)
        ref, _ = maximum_cliques_via_bk(g)
        dev = fresh_device()
        src, dst, _ = build_two_clique_list(g, 2, dev)
        out = concurrent_windowed_search(
            g, src, dst, 2, np.zeros(0, dtype=np.int32), dev,
            window_size=16, fanout=3,
        )
        assert out.omega == ref

    def test_bad_fanout_rejected(self):
        g = gen.complete_graph(4)
        dev = fresh_device()
        src, dst, _ = build_two_clique_list(g, 2, dev)
        with pytest.raises(ValueError):
            concurrent_windowed_search(
                g, src, dst, 2, np.zeros(0, dtype=np.int32), dev,
                window_size=4, fanout=0,
            )


class TestTradeOff:
    def test_fanout_trades_memory_for_time(self):
        g = gen.caveman_social(8, 60, p_in=0.4, seed=3)
        seq = find_maximum_cliques(g, device=fresh_device(), window_size=256)
        con = find_maximum_cliques(
            g, device=fresh_device(), window_size=256, window_fanout=8
        )
        assert con.clique_number == seq.clique_number
        assert con.model_time_s < seq.model_time_s
        assert con.search_memory_bytes > seq.search_memory_bytes

    def test_memory_freed_after_solve(self):
        dev = fresh_device()
        g = gen.erdos_renyi(40, 0.3, seed=4)
        before = dev.pool.in_use_bytes
        find_maximum_cliques(g, device=dev, window_size=8, window_fanout=4)
        assert dev.pool.in_use_bytes == before


class TestConfigInteraction:
    def test_fanout_requires_window(self):
        with pytest.raises(SolverConfigError):
            find_maximum_cliques(gen.complete_graph(3), window_fanout=2)

    def test_fanout_excludes_adaptive(self):
        with pytest.raises(SolverConfigError):
            find_maximum_cliques(
                gen.complete_graph(3), window_size=4,
                window_fanout=2, adaptive_windowing=True,
            )

    def test_timeout_honoured(self):
        g = gen.caveman_social(8, 60, p_in=0.45, seed=5)
        with pytest.raises(SolveTimeoutError):
            find_maximum_cliques(
                g, device=fresh_device(), window_size=16,
                window_fanout=2, time_limit_s=1e-4,
            )

    def test_auto_window_size_supported(self):
        g = gen.erdos_renyi(30, 0.3, seed=6)
        ref, _ = maximum_cliques_via_bk(g)
        r = find_maximum_cliques(
            g, device=fresh_device(), window_size="auto", window_fanout=2
        )
        assert r.clique_number == ref
