"""k-clique profile tests against independent oracles."""

from itertools import combinations

import numpy as np
import pytest

from repro.core.clique_counts import clique_profile, count_k_cliques
from repro.errors import DeviceOOMError
from repro.graph import from_edge_list, triangle_count
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec


def brute_profile(graph):
    """Exhaustive k-clique counts for tiny graphs."""
    n = graph.num_vertices
    adj = [set(graph.neighbors(v).tolist()) for v in range(n)]
    out = {}
    k = 1
    while True:
        count = sum(
            1
            for combo in combinations(range(n), k)
            if all(b in adj[a] for a, b in combinations(combo, 2))
        )
        if count == 0:
            break
        out[k] = count
        k += 1
    return out


class TestCliqueProfile:
    def test_complete_graph_binomials(self):
        profile = clique_profile(gen.complete_graph(5))
        assert profile == {1: 5, 2: 10, 3: 10, 4: 5, 5: 1}

    def test_triangle_level_matches_triangle_count(self):
        g = gen.erdos_renyi(40, 0.3, seed=1)
        profile = clique_profile(g)
        assert profile.get(3, 0) == triangle_count(g)

    def test_matches_brute_force(self):
        for seed in range(8):
            g = gen.erdos_renyi(14, 0.45, seed=seed)
            assert clique_profile(g) == brute_profile(g)

    def test_max_k_cutoff(self):
        g = gen.complete_graph(6)
        profile = clique_profile(g, max_k=3)
        assert set(profile) == {1, 2, 3}

    def test_empty_and_edgeless(self):
        assert clique_profile(from_edge_list([])) == {}
        assert clique_profile(from_edge_list([], num_vertices=3)) == {1: 3}

    def test_oom_on_tiny_device(self):
        g = gen.caveman_social(4, 40, p_in=0.6, seed=2)
        with pytest.raises(DeviceOOMError):
            clique_profile(g, device=Device(DeviceSpec(memory_bytes=1 << 16)))


class TestCountKCliques:
    def test_specific_k(self):
        g = gen.complete_graph(6)
        assert count_k_cliques(g, 3) == 20
        assert count_k_cliques(g, 6) == 1
        assert count_k_cliques(g, 7) == 0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            count_k_cliques(gen.complete_graph(3), 0)
