"""Clique-list data structure tests, including the paper's Figure 1 walk."""

import numpy as np
import pytest

from repro.errors import DeviceStateError
from repro.core.clique_list import CliqueList
from repro.gpusim import Device, DeviceSpec


@pytest.fixture
def dev():
    return Device(DeviceSpec())


class TestConstruction:
    def test_root_node_packs_two_levels(self, dev):
        cl = CliqueList(dev)
        node = cl.append_root(np.array([0, 0, 1]), np.array([1, 2, 2]))
        assert node.level == 2
        assert node.size == 3
        assert cl.depth == 2

    def test_double_root_rejected(self, dev):
        cl = CliqueList(dev)
        cl.append_root(np.array([0]), np.array([1]))
        with pytest.raises(DeviceStateError):
            cl.append_root(np.array([0]), np.array([1]))

    def test_level_before_root_rejected(self, dev):
        cl = CliqueList(dev)
        with pytest.raises(DeviceStateError):
            cl.append_level(np.array([1]), np.array([0]))

    def test_shape_mismatch_rejected(self, dev):
        cl = CliqueList(dev)
        with pytest.raises(ValueError):
            cl.append_root(np.array([0]), np.array([1, 2]))

    def test_levels_increment(self, dev):
        cl = CliqueList(dev)
        cl.append_root(np.array([0]), np.array([1]))
        node = cl.append_level(np.array([2]), np.array([0]))
        assert node.level == 3
        assert cl.head is node

    def test_memory_charged_and_freed(self, dev):
        cl = CliqueList(dev)
        cl.append_root(np.arange(10, dtype=np.int32), np.arange(10, dtype=np.int32))
        assert dev.pool.in_use_bytes == 80  # 2 x 10 x int32
        assert cl.total_bytes == 80
        assert cl.total_candidates == 10
        cl.free_all()
        assert dev.pool.in_use_bytes == 0
        assert len(cl) == 0

    def test_empty_head_raises(self, dev):
        cl = CliqueList(dev)
        with pytest.raises(DeviceStateError):
            _ = cl.head


class TestReadout:
    def test_paper_figure1_example(self, dev):
        """Reproduce Figure 1's walk exactly.

        The figure reads the maximum clique {E, D, C, B} out of the
        clique list via: vertexID_4[0]=E, sublistID_4[0]=3 ->
        vertexID_3[3]=D, sublistID_3[3]=4 -> vertexID_2[4]=C,
        sublistID_2[4]=B. Vertices A..E = 0..4.
        """
        A, B, C, D, E = range(5)
        cl = CliqueList(dev)
        # k=2 root node; index 4 must hold the (B, C) 2-clique
        cl.append_root(
            np.array([A, A, D, D, B, D]), np.array([B, C, B, C, C, E])
        )
        # k=3 node; index 3 must hold D with parent pointer 4
        cl.append_level(np.array([C, C, C, D]), np.array([0, 2, 3, 4]))
        # k=4 node: E extends {B, C, D} via k=3 entry 3
        cl.append_level(np.array([E]), np.array([3]))

        cliques = cl.read_cliques()
        assert cliques.shape == (1, 4)
        assert cliques[0].tolist() == [E, D, C, B]

    def test_readout_orders_deepest_first(self, dev):
        cl = CliqueList(dev)
        cl.append_root(np.array([0, 0]), np.array([1, 2]))
        cl.append_level(np.array([3, 4]), np.array([0, 1]))
        out = cl.read_cliques()
        assert out.shape == (2, 3)
        assert out[0].tolist() == [3, 1, 0]
        assert out[1].tolist() == [4, 2, 0]

    def test_readout_root_only(self, dev):
        cl = CliqueList(dev)
        cl.append_root(np.array([5, 6]), np.array([7, 8]))
        out = cl.read_cliques()
        assert out.shape == (2, 2)
        # root rows read newest-first: (vertexID=dst, sublistID=src)
        assert out[0].tolist() == [7, 5]
        assert out[1].tolist() == [8, 6]

    def test_readout_with_entries_subset(self, dev):
        cl = CliqueList(dev)
        cl.append_root(np.array([1, 2, 3]), np.array([4, 5, 6]))
        out = cl.read_cliques(entries=np.array([2, 0]))
        assert out[:, 0].tolist() == [6, 4]  # vertexID column holds dst

    def test_readout_with_limit(self, dev):
        cl = CliqueList(dev)
        cl.append_root(np.arange(5, dtype=np.int32), np.arange(5, dtype=np.int32))
        assert cl.read_cliques(limit=2).shape == (2, 2)

    def test_readout_intermediate_node(self, dev):
        cl = CliqueList(dev)
        cl.append_root(np.array([0]), np.array([1]))
        cl.append_level(np.array([2]), np.array([0]))
        out = cl.read_cliques(node_index=0)
        assert out.shape == (1, 2)

    def test_readout_empty_list_raises(self, dev):
        with pytest.raises(DeviceStateError):
            CliqueList(dev).read_cliques()


class TestSharedPrefixStorage:
    def test_siblings_share_parent_entry(self, dev):
        """Two k=3 cliques extending the same 2-clique store the parent
        once -- the compactness property of Section IV-B."""
        cl = CliqueList(dev)
        cl.append_root(np.array([0]), np.array([9]))  # 2-clique src=0, dst=9
        cl.append_level(np.array([4, 5, 6]), np.array([0, 0, 0]))
        out = cl.read_cliques()
        assert out.shape == (3, 3)
        for row, newest in zip(out, [4, 5, 6]):
            assert row.tolist() == [newest, 9, 0]
        # storage: 1 root entry + 3 child entries, not 3 full triples
        assert cl.total_candidates == 4
