"""Fanout=1 parity: the concurrent sweep degenerates to the sequential one.

Since the engine refactor both ``windowed_search`` and
``concurrent_windowed_search`` configure
:func:`repro.engine.sweep.window_sweep`; at ``fanout=1`` the
concurrent entry point must be *indistinguishable* from the
sequential one -- same ω, same witness clique, same per-window stats,
same level stats, and the same device charges -- because it routes
through the identical sequential sweep, isolated launch schedule and
all. Checked across the dataset suite plus targeted generator shapes.
"""

import numpy as np
import pytest

from repro import Device, DeviceSpec
from repro.core.concurrent import concurrent_windowed_search
from repro.core.config import Heuristic
from repro.core.heuristics import run_heuristic
from repro.core.setup import build_two_clique_list
from repro.core.windowed import windowed_search
from repro.datasets import iter_suite
from repro.graph import generators as gen

MIB = 1 << 20

# the smallest suite member of each category: parity across every shape
_PICKS = (
    "road-grid-60",
    "ca-team-1k",
    "bio-cl-1k",
    "tech-cl-2k",
    "web-rmat-10",
    "soc-comm-10x50",
)
SUITE_GRAPHS = [
    (spec.name, graph)
    for spec, graph in iter_suite(max_edges=10_000)
    if spec.name in _PICKS
]

GENERATOR_GRAPHS = [
    ("caveman", gen.caveman_social(5, 30, p_in=0.4, seed=2)),
    ("planted", gen.planted_clique(300, 8, avg_degree=4.0, seed=7)),
    ("er-dense", gen.erdos_renyi(60, 0.4, seed=5)),
]


def _run_pair(graph, window_size, **kwargs):
    """One sequential and one fanout=1 concurrent sweep, fresh devices."""
    outs, devices = [], []
    for entry in (windowed_search, concurrent_windowed_search):
        device = Device(DeviceSpec(memory_bytes=256 * MIB))
        heur = run_heuristic(graph, Heuristic.MULTI_DEGREE, device, h=8)
        omega_bar = max(heur.lower_bound, 2)
        src, dst, _ = build_two_clique_list(graph, omega_bar, device)
        if entry is concurrent_windowed_search:
            out = entry(
                graph, src, dst, omega_bar, heur.clique, device,
                window_size=window_size, fanout=1, **kwargs,
            )
        else:
            out = entry(
                graph, src, dst, omega_bar, heur.clique, device,
                window_size=window_size, **kwargs,
            )
        outs.append(out)
        devices.append(device)
    return outs, devices


def _window_sig(w):
    return (w.index, w.start, w.end, w.peak_bytes, w.best_clique_size, w.levels)


def _level_sig(s):
    return (s.level, s.candidates, s.generated, s.pruned)


def assert_parity(graph, window_size, **kwargs):
    (seq, con), (dev_seq, dev_con) = _run_pair(graph, window_size, **kwargs)
    assert con.omega == seq.omega
    assert np.array_equal(np.sort(con.best_clique), np.sort(seq.best_clique))
    assert [_window_sig(w) for w in con.windows] == [
        _window_sig(w) for w in seq.windows
    ]
    assert [_level_sig(s) for s in con.levels] == [
        _level_sig(s) for s in seq.levels
    ]
    assert con.candidates_stored == seq.candidates_stored
    assert con.candidates_pruned == seq.candidates_pruned
    assert con.peak_window_bytes == seq.peak_window_bytes
    # identical launch schedule: the devices were charged identically
    assert dev_con.model_time_s == dev_seq.model_time_s
    assert dev_con.stats().kernel_launches == dev_seq.stats().kernel_launches


class TestFanoutOneParity:
    @pytest.mark.parametrize(
        "name,graph", SUITE_GRAPHS, ids=[n for n, _ in SUITE_GRAPHS]
    )
    def test_suite_graphs(self, name, graph):
        assert_parity(graph, window_size=128)

    @pytest.mark.parametrize(
        "name,graph", GENERATOR_GRAPHS, ids=[n for n, _ in GENERATOR_GRAPHS]
    )
    def test_generator_graphs(self, name, graph):
        assert_parity(graph, window_size=64)

    def test_tiny_windows(self):
        assert_parity(gen.erdos_renyi(40, 0.3, seed=9), window_size=4)

    def test_auto_window_size(self):
        assert_parity(gen.caveman_social(4, 25, p_in=0.4, seed=1), "auto")

    def test_degree_window_order(self):
        from repro.core.config import WindowOrder

        assert_parity(
            gen.erdos_renyi(50, 0.35, seed=3),
            window_size=32,
            window_order=WindowOrder.DESC_DEGREE,
        )
