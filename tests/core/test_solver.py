"""Integration tests: the full solver pipeline against oracles."""

import numpy as np
import pytest

from repro import (
    Device,
    DeviceOOMError,
    DeviceSpec,
    Heuristic,
    MaxCliqueSolver,
    SolverConfig,
    find_maximum_cliques,
)
from repro.errors import SolveTimeoutError, SolverConfigError
from repro.graph import from_edge_list
from repro.graph import generators as gen

from ..conftest import assert_is_clique, nx_maximum_cliques

ALL_HEURISTICS = ["none", "single-degree", "single-core", "multi-degree", "multi-core"]


class TestEnumeration:
    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
    def test_matches_networkx_random_graphs(self, heuristic):
        for seed in range(12):
            g = gen.erdos_renyi(28, 0.1 + 0.04 * seed, seed=seed)
            omega, want = nx_maximum_cliques(g)
            r = find_maximum_cliques(g, heuristic=heuristic)
            assert r.clique_number == omega
            assert r.num_maximum_cliques == len(want)
            got = {frozenset(row.tolist()) for row in r.cliques}
            assert got == want

    def test_paper_graph(self, paper_graph):
        r = find_maximum_cliques(paper_graph)
        assert r.clique_number == 4
        assert r.num_maximum_cliques == 1
        assert r.cliques[0].tolist() == [1, 2, 3, 4]
        assert r.enumerated_all

    def test_multiple_maximum_cliques(self):
        g = from_edge_list(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
        )
        r = find_maximum_cliques(g)
        assert r.clique_number == 3
        assert r.num_maximum_cliques == 2

    def test_report_cap_keeps_exact_count(self):
        g = gen.complete_graph(3)
        # K3 has one max clique; use a path of many edges instead
        g = from_edge_list([(i, i + 1) for i in range(10)])
        r = find_maximum_cliques(g, max_cliques_report=3)
        assert r.clique_number == 2
        assert r.num_maximum_cliques == 10
        assert r.cliques.shape == (3, 2)


class TestTrivialCases:
    def test_empty_graph(self):
        r = find_maximum_cliques(from_edge_list([]))
        assert r.clique_number == 0
        assert r.num_maximum_cliques == 0
        assert r.found_by == "trivial"

    def test_edgeless_graph(self):
        r = find_maximum_cliques(from_edge_list([], num_vertices=5))
        assert r.clique_number == 1
        assert r.num_maximum_cliques == 5
        assert r.cliques.shape[1] == 1

    def test_single_edge(self):
        r = find_maximum_cliques(from_edge_list([(0, 1)]))
        assert r.clique_number == 2
        assert r.num_maximum_cliques == 1


class TestWindowedMode:
    def test_windowed_finds_one(self):
        g = gen.erdos_renyi(40, 0.35, seed=20)
        omega, _ = nx_maximum_cliques(g)
        r = find_maximum_cliques(g, window_size=16)
        assert r.clique_number == omega
        assert r.num_maximum_cliques == 1
        assert not r.enumerated_all
        assert_is_clique(g, r.cliques[0])
        assert len(r.windows) >= 1

    def test_windowed_equals_full(self):
        for seed in range(6):
            g = gen.erdos_renyi(35, 0.3, seed=seed + 40)
            full = find_maximum_cliques(g)
            win = find_maximum_cliques(g, window_size=8)
            assert win.clique_number == full.clique_number

    def test_auto_window(self):
        g = gen.erdos_renyi(30, 0.3, seed=21)
        omega, _ = nx_maximum_cliques(g)
        r = find_maximum_cliques(g, window_size="auto")
        assert r.clique_number == omega


class TestResultMetadata:
    def test_times_and_memory_recorded(self):
        g = gen.erdos_renyi(40, 0.3, seed=22)
        r = find_maximum_cliques(g)
        assert r.model_time_s > 0
        assert r.wall_time_s > 0
        assert r.peak_memory_bytes > 0
        assert r.search_memory_bytes > 0
        assert r.device_stats is not None
        assert r.heuristic.lower_bound <= r.clique_number

    def test_pruned_fraction_bounds(self):
        g = gen.erdos_renyi(40, 0.3, seed=23)
        r = find_maximum_cliques(g)
        assert 0.0 <= r.pruned_fraction <= 1.0

    def test_throughput_and_summary(self):
        g = gen.erdos_renyi(30, 0.3, seed=24)
        r = find_maximum_cliques(g)
        assert r.throughput_eps(g.num_edges) > 0
        assert "omega=" in r.summary()

    def test_heuristic_report_kind(self):
        g = gen.erdos_renyi(25, 0.3, seed=25)
        r = find_maximum_cliques(g, heuristic="multi-core")
        assert r.heuristic.kind == "multi-core"


class TestFailureModes:
    def test_oom_raised_for_tiny_budget(self):
        g = gen.caveman_social(5, 30, p_in=0.6, seed=26)
        dev = Device(DeviceSpec(memory_bytes=96 * 1024))
        with pytest.raises(DeviceOOMError):
            find_maximum_cliques(g, device=dev, heuristic="none")

    def test_oom_never_wrong_answer(self):
        # sweep budgets: every budget either OOMs or gives the oracle answer
        g = gen.caveman_social(3, 25, p_in=0.5, seed=27)
        omega, _ = nx_maximum_cliques(g)
        for shift in range(17, 24):
            dev = Device(DeviceSpec(memory_bytes=1 << shift))
            try:
                r = find_maximum_cliques(g, device=dev)
            except DeviceOOMError:
                continue
            assert r.clique_number == omega

    def test_time_limit(self):
        g = gen.caveman_social(6, 50, p_in=0.5, seed=28)
        with pytest.raises(SolveTimeoutError):
            find_maximum_cliques(g, heuristic="none", time_limit_s=0.001)

    def test_config_and_kwargs_mutually_exclusive(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(ValueError):
            find_maximum_cliques(g, SolverConfig(), heuristic="none")


class TestConfigValidation:
    def test_string_coercion(self):
        c = SolverConfig(heuristic="multi-core", window_order="asc-degree")
        assert c.heuristic is Heuristic.MULTI_CORE

    def test_bad_window_size(self):
        with pytest.raises(SolverConfigError):
            SolverConfig(window_size=-5)
        with pytest.raises(SolverConfigError):
            SolverConfig(window_size="huge")

    def test_windowed_disables_enumerate_all(self):
        c = SolverConfig(window_size=128)
        assert not c.enumerate_all

    def test_early_exit_requires_find_one(self):
        with pytest.raises(SolverConfigError):
            SolverConfig(early_exit_heuristic=True)
        c = SolverConfig(early_exit_heuristic=True, enumerate_all=False)
        assert c.early_exit_heuristic

    def test_bad_time_limit(self):
        with pytest.raises(SolverConfigError):
            SolverConfig(time_limit_s=0)

    def test_bad_heuristic_runs(self):
        with pytest.raises(SolverConfigError):
            SolverConfig(heuristic_runs=0)


class TestSharedDevice:
    def test_stats_accumulate_across_solves(self):
        dev = Device(DeviceSpec(memory_bytes=1 << 26))
        g = gen.erdos_renyi(25, 0.3, seed=29)
        MaxCliqueSolver(g, device=dev).solve()
        launches1 = dev.stats().kernel_launches
        MaxCliqueSolver(g, device=dev).solve()
        assert dev.stats().kernel_launches > launches1

    def test_no_leak_after_solve(self):
        dev = Device(DeviceSpec(memory_bytes=1 << 26))
        g = gen.erdos_renyi(25, 0.3, seed=30)
        before = dev.pool.in_use_bytes
        MaxCliqueSolver(g, device=dev).solve()
        assert dev.pool.in_use_bytes == before
