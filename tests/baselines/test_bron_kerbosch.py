"""Bron-Kerbosch maximal clique enumeration tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    count_maximal_cliques,
    maximal_cliques,
    maximum_cliques_via_bk,
)
from repro.graph import from_edge_list
from repro.graph import generators as gen

from ..conftest import to_networkx


class TestMaximalCliques:
    def test_triangle(self, triangle):
        assert maximal_cliques(triangle) == [[0, 1, 2]]

    def test_path(self, path4):
        assert sorted(maximal_cliques(path4)) == [[0, 1], [1, 2], [2, 3]]

    def test_empty_graph(self):
        assert maximal_cliques(from_edge_list([])) == []

    def test_edgeless_graph_singletons(self):
        got = sorted(maximal_cliques(from_edge_list([], num_vertices=3)))
        assert got == [[0], [1], [2]]

    def test_moon_moser_extremal(self):
        # K_{3,3,3} complement-style: 3 disjoint triangles joined fully
        # Moon-Moser graph on 9 vertices has 3^3 = 27 maximal cliques
        parts = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        edges = []
        for i, a in enumerate(parts):
            for b in parts[i + 1 :]:
                edges.extend((x, y) for x in a for y in b)
        g = from_edge_list(edges)
        assert count_maximal_cliques(g) == 27

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, seed):
        import networkx as nx

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        g = gen.erdos_renyi(n, float(rng.uniform(0.05, 0.6)), seed=seed)
        got = {tuple(c) for c in maximal_cliques(g)}
        want = {tuple(sorted(c)) for c in nx.find_cliques(to_networkx(g))}
        if g.num_edges == 0:
            want = {(v,) for v in range(n)}
        assert got == want


class TestMaximumViaBK:
    def test_paper_graph(self, paper_graph):
        omega, cliques = maximum_cliques_via_bk(paper_graph)
        assert omega == 4
        assert cliques == [(1, 2, 3, 4)]

    def test_ties_enumerated(self):
        g = from_edge_list([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        omega, cliques = maximum_cliques_via_bk(g)
        assert omega == 3
        assert len(cliques) == 2

    def test_empty(self):
        assert maximum_cliques_via_bk(from_edge_list([])) == (0, [])
