"""Brute-force oracle self-tests."""

import pytest

from repro.baselines import brute_force_maximum_cliques
from repro.graph import from_edge_list
from repro.graph import generators as gen

from ..conftest import nx_maximum_cliques


class TestBruteForce:
    def test_triangle(self, triangle):
        omega, cliques = brute_force_maximum_cliques(triangle)
        assert omega == 3
        assert cliques == [(0, 1, 2)]

    def test_size_guard(self):
        g = gen.erdos_renyi(30, 0.2, seed=1)
        with pytest.raises(ValueError):
            brute_force_maximum_cliques(g, max_vertices=22)

    def test_empty_and_edgeless(self):
        assert brute_force_maximum_cliques(from_edge_list([])) == (0, [])
        omega, cliques = brute_force_maximum_cliques(
            from_edge_list([], num_vertices=2)
        )
        assert omega == 1
        assert cliques == [(0,), (1,)]

    def test_matches_networkx(self):
        for seed in range(15):
            g = gen.erdos_renyi(12, 0.4, seed=seed)
            omega, cliques = brute_force_maximum_cliques(g)
            nx_omega, nx_cliques = nx_maximum_cliques(g)
            assert omega == nx_omega
            assert {frozenset(c) for c in cliques} == nx_cliques
