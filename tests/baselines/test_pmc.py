"""PMC baseline tests: exactness, cost accounting, ablations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import maximum_cliques_via_bk, pmc_heuristic, pmc_max_clique
from repro.graph import core_numbers, from_edge_list
from repro.graph import generators as gen
from repro.gpusim.spec import CPUSpec

from ..conftest import assert_is_clique


class TestExactness:
    def test_paper_graph(self, paper_graph):
        r = pmc_max_clique(paper_graph)
        assert r.clique_number == 4
        assert r.clique.tolist() == [1, 2, 3, 4]

    def test_complete_graph(self):
        r = pmc_max_clique(gen.complete_graph(8))
        assert r.clique_number == 8

    def test_empty_and_edgeless(self):
        assert pmc_max_clique(from_edge_list([])).clique_number == 0
        assert pmc_max_clique(from_edge_list([], num_vertices=3)).clique_number == 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_matches_bron_kerbosch(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 35))
        g = gen.erdos_renyi(n, float(rng.uniform(0.05, 0.7)), seed=seed)
        omega, _ = maximum_cliques_via_bk(g)
        r = pmc_max_clique(g)
        assert r.clique_number == omega
        if g.num_edges:
            assert_is_clique(g, r.clique)
            assert r.clique.size == omega

    @pytest.mark.parametrize("use_heuristic", [True, False])
    @pytest.mark.parametrize("use_coloring", [True, False])
    def test_ablations_stay_exact(self, use_heuristic, use_coloring):
        for seed in range(6):
            g = gen.erdos_renyi(25, 0.4, seed=seed)
            omega, _ = maximum_cliques_via_bk(g)
            r = pmc_max_clique(
                g, use_heuristic=use_heuristic, use_coloring=use_coloring
            )
            assert r.clique_number == omega

    def test_coloring_prunes_nodes(self):
        g = gen.caveman_social(3, 30, p_in=0.5, seed=1)
        with_c = pmc_max_clique(g, use_coloring=True)
        without = pmc_max_clique(g, use_coloring=False)
        assert with_c.clique_number == without.clique_number
        assert with_c.nodes_explored <= without.nodes_explored


class TestHeuristic:
    def test_heuristic_is_sound(self):
        for seed in range(10):
            g = gen.erdos_renyi(30, 0.4, seed=seed)
            if g.num_edges == 0:
                continue
            core = core_numbers(g)
            lb, clique = pmc_heuristic(g, core)
            omega, _ = maximum_cliques_via_bk(g)
            assert lb <= omega
            assert len(clique) == lb
            assert_is_clique(g, clique)

    def test_heuristic_finds_planted(self):
        g = gen.planted_clique(300, 12, avg_degree=3.0, seed=2)
        lb, _ = pmc_heuristic(g, core_numbers(g))
        assert lb == 12


class TestCostModel:
    def test_ops_counted(self):
        g = gen.erdos_renyi(40, 0.4, seed=3)
        r = pmc_max_clique(g)
        assert r.alu_ops > 0
        assert r.mem_ops > 0
        assert r.model_time_s > 0

    def test_more_threads_faster_model_time(self):
        g = gen.erdos_renyi(40, 0.4, seed=4)
        t1 = pmc_max_clique(g, threads=1).model_time_s
        t24 = pmc_max_clique(g, threads=24).model_time_s
        assert t24 < t1

    def test_custom_spec(self):
        g = gen.erdos_renyi(30, 0.4, seed=5)
        slow = CPUSpec(cores=1, clock_hz=1e6)
        fast = CPUSpec(cores=24, clock_hz=1e10)
        assert (
            pmc_max_clique(g, spec=slow).model_time_s
            > pmc_max_clique(g, spec=fast).model_time_s
        )

    def test_deterministic(self):
        g = gen.erdos_renyi(30, 0.4, seed=6)
        a = pmc_max_clique(g)
        b = pmc_max_clique(g)
        assert a.model_time_s == b.model_time_s
        assert a.nodes_explored == b.nodes_explored
