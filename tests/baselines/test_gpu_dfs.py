"""Warp-parallel GPU DFS baseline tests."""

import numpy as np
import pytest

from repro.baselines import gpu_dfs_max_clique, maximum_cliques_via_bk
from repro.graph import from_edge_list
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec

from ..conftest import assert_is_clique


class TestExactness:
    def test_random_graphs(self):
        for seed in range(15):
            g = gen.erdos_renyi(30, 0.35, seed=seed)
            omega, _ = maximum_cliques_via_bk(g)
            r = gpu_dfs_max_clique(g)
            assert r.clique_number == omega
            if g.num_edges and omega >= 2:
                assert_is_clique(g, r.clique)
                assert r.clique.size == omega

    def test_trivial_graphs(self):
        assert gpu_dfs_max_clique(from_edge_list([])).clique_number == 0
        assert (
            gpu_dfs_max_clique(from_edge_list([], num_vertices=4)).clique_number
            == 1
        )

    def test_lower_bound_seed(self):
        g = gen.planted_clique(200, 10, avg_degree=2.0, seed=1)
        r = gpu_dfs_max_clique(g, lower_bound=8)
        assert r.clique_number == 10


class TestCostModel:
    def test_one_kernel_for_the_sweep(self):
        g = gen.erdos_renyi(40, 0.4, seed=2)
        dev = Device(DeviceSpec())
        gpu_dfs_max_clique(g, dev)
        breakdown = dev.kernel_breakdown()
        assert breakdown.get("gpu_dfs") is not None
        assert breakdown["gpu_dfs"].launches == 1

    def test_subtree_costs_and_imbalance(self):
        g = gen.caveman_social(4, 30, p_in=0.45, seed=3)
        r = gpu_dfs_max_clique(g)
        assert r.warps_used == r.subtree_costs.size > 0
        assert (r.subtree_costs > 0).all()
        # skewed subtree sizes: the paper's load-imbalance complaint
        assert r.imbalance >= 1.0

    def test_stale_bounds_inflate_work(self):
        # without a good initial bound the concurrent warps explore far
        # more subtrees than a bound-sharing sequential DFS would
        g = gen.team_collaboration(500, 300, team_size_range=(2, 9), seed=4)
        weak = gpu_dfs_max_clique(g, lower_bound=1)
        strong = gpu_dfs_max_clique(g, lower_bound=weak.clique_number - 1)
        assert strong.clique_number == weak.clique_number
        assert strong.warps_used <= weak.warps_used
        assert strong.nodes_explored <= weak.nodes_explored

    def test_model_time_recorded(self):
        g = gen.erdos_renyi(30, 0.4, seed=5)
        r = gpu_dfs_max_clique(g)
        assert r.model_time_s > 0
        assert r.wall_time_s > 0
