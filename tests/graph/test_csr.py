"""Unit + property tests for the CSR graph structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, from_edge_list
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec


class TestBasics:
    def test_triangle_properties(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3
        assert triangle.num_directed_edges == 6
        assert triangle.degrees.tolist() == [2, 2, 2]
        assert triangle.max_degree == 2
        assert triangle.average_degree == pytest.approx(2.0)

    def test_neighbors_sorted(self, paper_graph):
        for v in range(paper_graph.num_vertices):
            nbrs = paper_graph.neighbors(v)
            assert (np.diff(nbrs) > 0).all()

    def test_empty_graph(self):
        g = CSRGraph(np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int32))
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree == 0
        assert g.average_degree == 0.0

    def test_isolated_vertices(self):
        g = from_edge_list([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degrees.tolist() == [1, 1, 0, 0, 0]

    def test_nbytes_counts_structure(self, triangle):
        expected = triangle.row_offsets.nbytes + triangle.col_indices.nbytes
        assert triangle.nbytes == expected

    def test_to_edge_list_roundtrip(self, paper_graph):
        src, dst = paper_graph.to_edge_list()
        assert (src < dst).all()
        g2 = from_edge_list(list(zip(src.tolist(), dst.tolist())))
        assert (g2.row_offsets == paper_graph.row_offsets).all()
        assert (g2.col_indices == paper_graph.col_indices).all()


class TestFingerprint:
    def test_stable_across_instances(self, triangle):
        same = from_edge_list([(0, 1), (1, 2), (0, 2)])
        assert triangle.fingerprint() == same.fingerprint()

    def test_memoised(self, triangle):
        assert triangle.fingerprint() is triangle.fingerprint()

    def test_is_hex_sha256(self, triangle):
        fp = triangle.fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # parses as hex

    def test_differs_on_edge_change(self, triangle, path4):
        assert triangle.fingerprint() != path4.fingerprint()

    def test_differs_on_isolated_vertex(self):
        g1 = from_edge_list([(0, 1)], num_vertices=2)
        g2 = from_edge_list([(0, 1)], num_vertices=3)
        assert g1.fingerprint() != g2.fingerprint()

    def test_differs_on_relabel(self):
        # isomorphic graphs with different labels are different inputs
        g1 = from_edge_list([(0, 1), (1, 2)])
        g2 = from_edge_list([(0, 2), (2, 1)])
        assert g1.fingerprint() != g2.fingerprint()

    def test_generator_determinism(self):
        a = gen.erdos_renyi(40, 0.2, seed=3)
        b = gen.erdos_renyi(40, 0.2, seed=3)
        c = gen.erdos_renyi(40, 0.2, seed=4)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_empty_graph_fingerprint(self):
        g = CSRGraph(np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int32))
        assert len(g.fingerprint()) == 64


class TestValidation:
    def test_bad_row_offsets_start(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0, 1], dtype=np.int32))

    def test_decreasing_row_offsets(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1, 2]), np.array([1, 0], dtype=np.int32))

    def test_column_out_of_range(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([5], dtype=np.int32))

    def test_unsorted_row_rejected(self):
        # row 0 = [2, 1] is out of order
        with pytest.raises(GraphFormatError):
            CSRGraph(
                np.array([0, 2, 2, 2]), np.array([2, 1], dtype=np.int32)
            )

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1, 1]), np.array([0], dtype=np.int32))

    def test_duplicate_in_row_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                np.array([0, 2, 2, 2]), np.array([1, 1], dtype=np.int32)
            )


class TestEdgeLookup:
    def test_has_edge_scalar(self, paper_graph):
        assert paper_graph.has_edge(1, 2)
        assert paper_graph.has_edge(2, 1)
        assert not paper_graph.has_edge(0, 4)
        assert not paper_graph.has_edge(0, 3)

    def test_batch_methods_agree(self):
        g = gen.erdos_renyi(60, 0.3, seed=5)
        rng = np.random.default_rng(0)
        u = rng.integers(0, 60, 5000)
        v = rng.integers(0, 60, 5000)
        keys = g.batch_has_edge(u, v, method="keys")
        binary = g.batch_has_edge(u, v, method="binary")
        assert (keys == binary).all()
        scalar = np.array([g.has_edge(int(a), int(b)) for a, b in zip(u[:200], v[:200])])
        assert (keys[:200] == scalar).all()

    def test_batch_empty(self, triangle):
        out = triangle.batch_has_edge(np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert out.size == 0

    def test_batch_shape_mismatch(self, triangle):
        with pytest.raises(ValueError):
            triangle.batch_has_edge(np.zeros(2, np.int64), np.zeros(3, np.int64))

    def test_unknown_method(self, triangle):
        with pytest.raises(ValueError):
            triangle.batch_has_edge(
                np.zeros(1, np.int64), np.ones(1, np.int64), method="magic"
            )

    def test_device_charged_per_query(self, triangle):
        dev = Device(DeviceSpec())
        before = dev.stats().useful_ops
        triangle.batch_has_edge(
            np.array([0, 1]), np.array([1, 2]), device=dev
        )
        s = dev.stats()
        assert s.kernel_launches == 1
        # cost = ceil(log2(deg+1)) + 1 = 3 per query for degree-2 rows
        assert s.useful_ops - before == pytest.approx(6.0)

    def test_lookup_cost_formula(self):
        g = gen.star_graph(7)  # hub degree 7, leaves degree 1
        cost = g.lookup_cost
        assert cost[0] == np.ceil(np.log2(8)) + 1  # hub
        assert cost[1] == np.ceil(np.log2(2)) + 1  # leaf

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_lookup_matches_adjacency_sets(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        g = gen.erdos_renyi(n, float(rng.uniform(0, 0.7)), seed=seed)
        adj = {v: set(g.neighbors(v).tolist()) for v in range(n)}
        u = rng.integers(0, n, 200)
        v = rng.integers(0, n, 200)
        got = g.batch_has_edge(u, v)
        want = np.array([b in adj[a] for a, b in zip(u.tolist(), v.tolist())])
        assert (got == want).all()
