"""Round-trip and failure-injection tests for graph file IO."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    load_graph,
    read_dimacs,
    read_edge_list,
    read_mtx,
    write_dimacs,
    write_edge_list,
    write_mtx,
)
from repro.graph import generators as gen


@pytest.fixture
def graph():
    return gen.erdos_renyi(25, 0.3, seed=11)


class TestEdgeList:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        g2 = read_edge_list(path)
        assert (g2.col_indices == graph.col_indices).all()

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n% another\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 3.5\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestMTX:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "g.mtx"
        write_mtx(graph, path)
        g2 = read_mtx(path)
        assert (g2.col_indices == graph.col_indices).all()

    def test_one_based_indexing(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 2\n"
        )
        g = read_mtx(path)
        assert g.has_edge(0, 1)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(GraphFormatError):
            read_mtx(path)

    def test_dense_format_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(GraphFormatError):
            read_mtx(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            read_mtx(path)

    def test_missing_size_line_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n")
        with pytest.raises(GraphFormatError):
            read_mtx(path)

    def test_values_ignored(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 2 0.5\n2 3 1.5\n"
        )
        g = read_mtx(path)
        assert g.num_edges == 2


class TestDIMACS:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "g.clq"
        write_dimacs(graph, path)
        g2 = read_dimacs(path)
        assert (g2.col_indices == graph.col_indices).all()

    def test_edge_before_problem_rejected(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("e 1 2\n")
        with pytest.raises(GraphFormatError):
            read_dimacs(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("p edge 2 1\nx 1 2\n")
        with pytest.raises(GraphFormatError):
            read_dimacs(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("c hello\np edge 3 1\ne 1 3\n")
        g = read_dimacs(path)
        assert g.has_edge(0, 2)

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("c only comments\n")
        with pytest.raises(GraphFormatError):
            read_dimacs(path)


class TestGzip:
    @pytest.mark.parametrize(
        "suffix,writer,reader",
        [
            (".edges.gz", write_edge_list, read_edge_list),
            (".mtx.gz", write_mtx, read_mtx),
            (".clq.gz", write_dimacs, read_dimacs),
        ],
    )
    def test_round_trip(self, graph, tmp_path, suffix, writer, reader):
        path = tmp_path / f"g{suffix}"
        writer(graph, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # really gzip on disk
        g2 = reader(path)
        assert g2.num_vertices == graph.num_vertices
        assert (g2.col_indices == graph.col_indices).all()

    def test_compression_shrinks_large_files(self, tmp_path):
        big = gen.erdos_renyi(300, 0.2, seed=7)
        plain = tmp_path / "g.edges"
        packed = tmp_path / "g.edges.gz"
        write_edge_list(big, plain)
        write_edge_list(big, packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_corrupt_gzip_rejected(self, tmp_path):
        path = tmp_path / "g.edges.gz"
        path.write_bytes(b"\x1f\x8b this is not a gzip stream")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_plain_text_with_gz_name_rejected(self, tmp_path):
        path = tmp_path / "g.edges.gz"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestParseEdgeListText:
    def test_parse(self):
        from repro.graph import parse_edge_list_text

        g = parse_edge_list_text("# header\n0 1\n\n1 2\n% note\n0 2\n")
        assert g.num_vertices == 3 and g.num_edges == 3

    def test_malformed_text_rejected(self):
        from repro.graph import parse_edge_list_text

        with pytest.raises(GraphFormatError) as excinfo:
            parse_edge_list_text("0 1\nbroken\n", source="<unit>")
        assert "<unit>" in str(excinfo.value)


class TestLoadGraph:
    @pytest.mark.parametrize(
        "suffix,writer",
        [(".edges", write_edge_list), (".mtx", write_mtx), (".clq", write_dimacs)],
    )
    def test_dispatch_by_extension(self, graph, tmp_path, suffix, writer):
        path = tmp_path / f"g{suffix}"
        writer(graph, path)
        g2 = load_graph(path)
        assert g2.num_edges == graph.num_edges

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_graph(tmp_path / "g.xyz")

    @pytest.mark.parametrize(
        "suffix,writer",
        [
            (".edges.gz", write_edge_list),
            (".mtx.gz", write_mtx),
            (".clq.gz", write_dimacs),
        ],
    )
    def test_double_extension_dispatch(self, graph, tmp_path, suffix, writer):
        path = tmp_path / f"g{suffix}"
        writer(graph, path)
        g2 = load_graph(path)
        assert g2.num_edges == graph.num_edges

    def test_bare_gz_rejected(self, tmp_path):
        with pytest.raises(GraphFormatError) as excinfo:
            load_graph(tmp_path / "g.gz")
        assert "double extension" in str(excinfo.value)

    def test_unknown_inner_extension_rejected(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_graph(tmp_path / "g.xyz.gz")
