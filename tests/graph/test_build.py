"""Unit + property tests for graph builders and preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import (
    from_adjacency,
    from_edge_array,
    from_edge_list,
    induced_subgraph,
    relabel_random,
)
from repro.graph.build import graph_union
from repro.graph import generators as gen


class TestFromEdgeList:
    def test_mirrors_edges(self):
        g = from_edge_list([(0, 1)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_edges == 1

    def test_drops_self_loops(self):
        g = from_edge_list([(0, 0), (0, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_merges_duplicates_and_reciprocals(self):
        g = from_edge_list([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_empty(self):
        g = from_edge_list([])
        assert g.num_vertices == 0

    def test_num_vertices_override(self):
        g = from_edge_list([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10

    def test_id_exceeding_num_vertices_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_list([(0, 5)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(np.array([-1]), np.array([0]))

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_list([(1, 2, 3)])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(np.zeros(2, np.int64), np.zeros(3, np.int64))

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_builds_exact_simple_graph(self, edges):
        g = from_edge_list(edges, num_vertices=16)
        want = {frozenset(e) for e in edges if e[0] != e[1]}
        got = {
            frozenset((int(a), int(b)))
            for a, b in zip(*g.to_edge_list())
        }
        assert got == want
        g.validate()


class TestFromAdjacency:
    def test_round_trip(self, paper_graph):
        adj = [paper_graph.neighbors(v).tolist() for v in range(5)]
        g = from_adjacency(adj)
        assert (g.col_indices == paper_graph.col_indices).all()


class TestRelabel:
    def test_preserves_structure(self):
        g = gen.erdos_renyi(30, 0.3, seed=1)
        h = relabel_random(g, seed=2)
        assert h.num_vertices == g.num_vertices
        assert h.num_edges == g.num_edges
        assert sorted(h.degrees.tolist()) == sorted(g.degrees.tolist())

    def test_deterministic(self):
        g = gen.erdos_renyi(30, 0.3, seed=1)
        a = relabel_random(g, seed=7)
        b = relabel_random(g, seed=7)
        assert (a.col_indices == b.col_indices).all()

    def test_actually_permutes(self):
        g = gen.star_graph(10)
        h = relabel_random(g, seed=3)
        # hub moves with overwhelming probability for this seed
        assert int(np.argmax(h.degrees)) != 0 or (h.degrees == g.degrees).all()


class TestInducedSubgraph:
    def test_triangle_subset(self, paper_graph):
        sub, ids = induced_subgraph(paper_graph, np.array([1, 2, 3]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # B,C,D form a triangle
        assert ids.tolist() == [1, 2, 3]

    def test_edgeless_subset(self, paper_graph):
        sub, _ = induced_subgraph(paper_graph, np.array([0, 3]))
        assert sub.num_edges == 0  # A and D are not adjacent

    def test_duplicate_ids_collapsed(self, triangle):
        sub, ids = induced_subgraph(triangle, np.array([0, 0, 1]))
        assert sub.num_vertices == 2
        assert ids.tolist() == [0, 1]


class TestGraphUnion:
    def test_union_of_disjoint_edges(self):
        a = from_edge_list([(0, 1)], num_vertices=4)
        b = from_edge_list([(2, 3)], num_vertices=4)
        u = graph_union(a, b)
        assert u.num_edges == 2

    def test_union_merges_shared_edges(self):
        a = from_edge_list([(0, 1), (1, 2)])
        b = from_edge_list([(0, 1)], num_vertices=3)
        u = graph_union(a, b)
        assert u.num_edges == 2

    def test_union_empty_rejected(self):
        with pytest.raises(ValueError):
            graph_union()

    def test_union_takes_max_vertices(self):
        a = from_edge_list([(0, 1)], num_vertices=2)
        b = from_edge_list([(0, 1)], num_vertices=9)
        assert graph_union(a, b).num_vertices == 9
