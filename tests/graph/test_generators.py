"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import generators as gen


class TestDeterministicGraphs:
    def test_complete_graph(self):
        g = gen.complete_graph(6)
        assert g.num_edges == 15
        assert (g.degrees == 5).all()

    def test_cycle_graph(self):
        g = gen.cycle_graph(5)
        assert g.num_edges == 5
        assert (g.degrees == 2).all()

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_star_graph(self):
        g = gen.star_graph(6)
        assert g.num_vertices == 7
        assert g.degrees[0] == 6
        assert (g.degrees[1:] == 1).all()


class TestRandomModels:
    def test_er_determinism(self):
        a = gen.erdos_renyi(40, 0.2, seed=9)
        b = gen.erdos_renyi(40, 0.2, seed=9)
        assert (a.col_indices == b.col_indices).all()

    def test_er_density(self):
        g = gen.erdos_renyi(200, 0.1, seed=1)
        expected = 0.1 * 200 * 199 / 2
        assert abs(g.num_edges - expected) < 0.25 * expected

    def test_er_bad_p(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(10, 1.5)

    def test_er_m_edge_count(self):
        g = gen.erdos_renyi_m(500, 2000, seed=2)
        assert 0.95 * 2000 <= g.num_edges <= 2000

    def test_chung_lu_heavy_tail(self):
        g = gen.chung_lu_power_law(2000, 8.0, exponent=2.3, seed=3)
        d = np.sort(g.degrees)[::-1]
        assert d[0] > 5 * np.median(d[d > 0])  # hubs exist
        assert abs(g.average_degree - 8.0) < 4.0

    def test_chung_lu_bad_exponent(self):
        with pytest.raises(ValueError):
            gen.chung_lu_power_law(100, 4.0, exponent=1.0)

    def test_rmat_size(self):
        g = gen.rmat(10, 8, seed=4)
        assert g.num_vertices == 1024
        assert g.num_edges > 2000  # duplicates merged but most survive

    def test_rmat_bad_probs(self):
        with pytest.raises(ValueError):
            gen.rmat(8, 8, probs=(0.5, 0.5, 0.5, 0.5))

    def test_rmat_skewed_degrees(self):
        g = gen.rmat(12, 8, seed=5)
        d = np.sort(g.degrees)[::-1]
        assert d[0] > 10 * max(np.median(d), 1)


class TestPlantedClique:
    def test_plant_is_present_and_maximum(self):
        g = gen.planted_clique(400, 10, avg_degree=3.0, seed=6)
        # the clique's vertices all have degree >= 9
        from repro.baselines import pmc_max_clique

        assert pmc_max_clique(g).clique_number == 10

    def test_plant_too_big(self):
        with pytest.raises(ValueError):
            gen.planted_clique(5, 6, avg_degree=1.0)


class TestCavemanSocial:
    def test_shape(self):
        g = gen.caveman_social(5, 30, p_in=0.4, seed=7)
        assert g.num_vertices == 150
        # dense communities push the average degree near p_in * size
        assert g.average_degree > 0.25 * 30

    def test_determinism(self):
        a = gen.caveman_social(4, 20, seed=8)
        b = gen.caveman_social(4, 20, seed=8)
        assert (a.col_indices == b.col_indices).all()


class TestRoadGrid:
    def test_low_degree(self):
        g = gen.road_grid(30, 30, seed=9)
        assert g.average_degree < 5.0

    def test_grid_backbone_connected_rows(self):
        g = gen.road_grid(4, 4, diagonal_p=0, rewire_p=0, seed=0)
        assert g.num_edges == 2 * 4 * 3  # pure lattice

    def test_diagonals_create_triangles(self):
        g = gen.road_grid(40, 40, diagonal_p=1.0, rewire_p=0, seed=0)
        from repro.baselines import pmc_max_clique

        assert pmc_max_clique(g).clique_number >= 3


class TestTeamCollaboration:
    def test_largest_team_is_max_clique(self):
        g = gen.team_collaboration(800, 300, team_size_range=(2, 12), seed=10)
        from repro.baselines import pmc_max_clique

        omega = pmc_max_clique(g).clique_number
        assert 2 <= omega <= 12

    def test_bad_team_range(self):
        with pytest.raises(ValueError):
            gen.team_collaboration(100, 10, team_size_range=(1, 5))
        with pytest.raises(ValueError):
            gen.team_collaboration(100, 10, team_size_range=(6, 5))

    def test_generator_instance_accepted(self):
        rng = np.random.default_rng(0)
        g = gen.team_collaboration(100, 20, seed=rng)
        assert g.num_vertices == 100
