"""Degree-orientation invariants (paper Section IV-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_list, orient_edges, orientation_rank
from repro.graph import generators as gen


class TestOrientationRank:
    def test_strict_total_order(self):
        g = gen.erdos_renyi(30, 0.3, seed=1)
        rank = orientation_rank(g)
        assert sorted(rank.tolist()) == list(range(30))

    def test_degree_respected(self):
        g = gen.star_graph(5)  # hub 0 has max degree
        rank = orientation_rank(g)
        assert rank[0] == g.num_vertices - 1

    def test_ties_broken_by_index(self, triangle):
        rank = orientation_rank(triangle)
        assert rank.tolist() == [0, 1, 2]

    def test_custom_key(self, triangle):
        rank = orientation_rank(triangle, key=np.array([5, 1, 3]))
        assert rank.tolist() == [2, 0, 1]

    def test_bad_key_shape(self, triangle):
        with pytest.raises(ValueError):
            orientation_rank(triangle, key=np.zeros(2))


class TestOrientEdges:
    def test_each_edge_exactly_once(self):
        g = gen.erdos_renyi(40, 0.25, seed=2)
        src, dst = orient_edges(g)
        assert src.size == g.num_edges
        got = {frozenset((int(a), int(b))) for a, b in zip(src, dst)}
        want = {frozenset((int(a), int(b))) for a, b in zip(*g.to_edge_list())}
        assert got == want

    def test_source_has_lower_rank(self):
        g = gen.chung_lu_power_law(300, 5.0, seed=3)
        rank = orientation_rank(g)
        src, dst = orient_edges(g)
        assert (rank[src.astype(np.int64)] < rank[dst.astype(np.int64)]).all()

    def test_grouped_by_source(self):
        g = gen.erdos_renyi(30, 0.3, seed=4)
        src, _ = orient_edges(g)
        # sources are non-decreasing (grouped runs)
        assert (np.diff(src.astype(np.int64)) >= 0).all()

    def test_low_degree_sources_shorten_sublists(self):
        # star: every edge must be oriented leaf -> hub
        g = gen.star_graph(8)
        src, dst = orient_edges(g)
        assert (dst == 0).all()
        assert (src != 0).all()

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_orientation_is_acyclic_cover(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        g = gen.erdos_renyi(n, float(rng.uniform(0, 0.6)), seed=seed)
        rank = orientation_rank(g)
        src, dst = orient_edges(g)
        assert src.size == g.num_edges
        # acyclic: ranks strictly increase along every kept edge
        assert (rank[src.astype(np.int64)] < rank[dst.astype(np.int64)]).all()
