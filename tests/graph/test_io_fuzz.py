"""Property-based fuzzing of the graph file parsers.

Two invariants: (1) round-tripping any graph through any format is
lossless; (2) arbitrary text never crashes a parser with anything but
:class:`~repro.errors.GraphFormatError` (or produces a valid graph).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import (
    from_edge_list,
    read_dimacs,
    read_edge_list,
    read_mtx,
    write_dimacs,
    write_edge_list,
    write_mtx,
)

SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def graphs(draw):
    n = draw(st.integers(1, 20))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=50,
        )
    )
    return from_edge_list(edges, num_vertices=n)


class TestRoundTrips:
    @given(g=graphs())
    @settings(**SETTINGS)
    def test_edge_list_round_trip(self, tmp_path_factory, g):
        path = tmp_path_factory.mktemp("io") / "g.edges"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g2.num_vertices <= g.num_vertices  # trailing isolates may drop
        assert (
            set(map(tuple, zip(*g.to_edge_list())))
            == set(map(tuple, zip(*g2.to_edge_list())))
        )

    @given(g=graphs())
    @settings(**SETTINGS)
    def test_mtx_round_trip(self, tmp_path_factory, g):
        path = tmp_path_factory.mktemp("io") / "g.mtx"
        write_mtx(g, path)
        g2 = read_mtx(path)
        assert g2.num_vertices == g.num_vertices
        assert (g2.row_offsets == g.row_offsets).all()
        assert (g2.col_indices == g.col_indices).all()

    @given(g=graphs())
    @settings(**SETTINGS)
    def test_dimacs_round_trip(self, tmp_path_factory, g):
        path = tmp_path_factory.mktemp("io") / "g.clq"
        write_dimacs(g, path)
        g2 = read_dimacs(path)
        assert g2.num_vertices == g.num_vertices
        assert (g2.col_indices == g.col_indices).all()


# printable junk with the separators the parsers care about
junk_text = st.text(
    alphabet=st.sampled_from("0123456789 \n\t%#pecde.-abc"), max_size=300
)


class TestParserRobustness:
    @given(text=junk_text)
    @settings(**SETTINGS)
    def test_edge_list_never_crashes(self, tmp_path_factory, text):
        path = tmp_path_factory.mktemp("fuzz") / "junk.txt"
        path.write_text(text)
        try:
            g = read_edge_list(path)
        except GraphFormatError:
            return
        g.validate()

    @given(text=junk_text)
    @settings(**SETTINGS)
    def test_mtx_never_crashes(self, tmp_path_factory, text):
        path = tmp_path_factory.mktemp("fuzz") / "junk.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n" + text)
        try:
            g = read_mtx(path)
        except GraphFormatError:
            return
        g.validate()

    @given(text=junk_text)
    @settings(**SETTINGS)
    def test_dimacs_never_crashes(self, tmp_path_factory, text):
        path = tmp_path_factory.mktemp("fuzz") / "junk.clq"
        path.write_text(text)
        try:
            g = read_dimacs(path)
        except GraphFormatError:
            return
        g.validate()
