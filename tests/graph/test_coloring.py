"""Greedy colouring and degeneracy-order tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    coloring_upper_bound,
    core_numbers,
    degeneracy_order,
    from_edge_list,
    greedy_coloring,
)
from repro.graph import generators as gen


def assert_proper(graph, colors):
    src, dst = graph.to_edge_list()
    assert (colors[src] != colors[dst]).all(), "colouring is not proper"


class TestGreedyColoring:
    def test_triangle_needs_three(self, triangle):
        colors, k = greedy_coloring(triangle)
        assert k == 3
        assert_proper(triangle, colors)

    def test_bipartite_two_colors(self):
        g = gen.cycle_graph(6)
        colors, k = greedy_coloring(g, degeneracy_order(g))
        assert k == 2
        assert_proper(g, colors)

    def test_complete(self):
        g = gen.complete_graph(7)
        colors, k = greedy_coloring(g)
        assert k == 7

    def test_edgeless(self):
        g = from_edge_list([], num_vertices=4)
        colors, k = greedy_coloring(g)
        assert k == 1
        assert (colors == 0).all()

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_proper_and_bounded_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        g = gen.erdos_renyi(n, float(rng.uniform(0, 0.6)), seed=seed)
        order = degeneracy_order(g)
        colors, k = greedy_coloring(g, order)
        assert_proper(g, colors)
        # degeneracy-ordered greedy uses at most degeneracy+1 colours
        assert k <= int(core_numbers(g).max()) + 1 if g.num_edges else k == 1


class TestDegeneracyOrder:
    def test_is_permutation(self):
        g = gen.erdos_renyi(50, 0.2, seed=3)
        order = degeneracy_order(g)
        assert sorted(order.tolist()) == list(range(50))

    def test_empty(self):
        g = from_edge_list([])
        assert degeneracy_order(g).size == 0

    def test_peel_order_property(self, paper_graph):
        # the order is reversed smallest-last peeling: every vertex has
        # at most `degeneracy` neighbours EARLIER in the order (that is
        # what bounds greedy colouring at degeneracy + 1 colours)
        order = degeneracy_order(paper_graph)
        pos = np.empty(order.size, dtype=np.int64)
        pos[order] = np.arange(order.size)
        degen = int(core_numbers(paper_graph).max())
        for v in range(paper_graph.num_vertices):
            earlier = sum(
                1 for u in paper_graph.neighbors(v).tolist() if pos[u] < pos[v]
            )
            assert earlier <= degen

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_earlier_neighbour_bound_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 35))
        g = gen.erdos_renyi(n, float(rng.uniform(0, 0.5)), seed=seed)
        order = degeneracy_order(g)
        pos = np.empty(n, dtype=np.int64)
        pos[order] = np.arange(n)
        degen = int(core_numbers(g).max()) if g.num_edges else 0
        for v in range(n):
            earlier = sum(1 for u in g.neighbors(v).tolist() if pos[u] < pos[v])
            assert earlier <= degen


class TestColoringUpperBound:
    def test_bounds_omega(self):
        from repro.baselines import maximum_cliques_via_bk

        for seed in range(8):
            g = gen.erdos_renyi(20, 0.4, seed=seed)
            omega, _ = maximum_cliques_via_bk(g)
            assert coloring_upper_bound(g) >= omega

    def test_empty(self):
        assert coloring_upper_bound(from_edge_list([])) == 0
