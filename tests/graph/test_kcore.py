"""k-core decomposition vs the networkx oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import core_numbers, degeneracy, from_edge_list, kcore_subgraph_vertices
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec

from ..conftest import to_networkx


class TestCoreNumbers:
    def test_triangle(self, triangle):
        assert core_numbers(triangle).tolist() == [2, 2, 2]

    def test_path(self, path4):
        assert core_numbers(path4).tolist() == [1, 1, 1, 1]

    def test_star(self):
        g = gen.star_graph(5)
        assert core_numbers(g).tolist() == [1, 1, 1, 1, 1, 1]

    def test_complete(self):
        g = gen.complete_graph(6)
        assert (core_numbers(g) == 5).all()

    def test_isolated_vertices_are_zero_core(self):
        g = from_edge_list([(0, 1)], num_vertices=4)
        assert core_numbers(g).tolist() == [1, 1, 0, 0]

    def test_paper_graph(self, paper_graph):
        # K4 members have core 3; A (degree 2 into the K4) has core 2
        assert core_numbers(paper_graph).tolist() == [2, 3, 3, 3, 3]

    def test_matches_networkx_on_suite_sample(self):
        import networkx as nx

        g = gen.chung_lu_power_law(800, 6.0, seed=13)
        got = core_numbers(g)
        want = nx.core_number(to_networkx(g))
        assert all(got[v] == want[v] for v in range(g.num_vertices))

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_random(self, seed):
        import networkx as nx

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        g = gen.erdos_renyi(n, float(rng.uniform(0, 0.5)), seed=seed)
        got = core_numbers(g)
        want = nx.core_number(to_networkx(g))
        assert all(got[v] == want[v] for v in range(n))

    def test_device_charged(self, triangle):
        dev = Device(DeviceSpec())
        core_numbers(triangle, dev)
        assert dev.stats().kernel_launches >= 1


class TestDegeneracy:
    def test_degeneracy_bounds_clique(self):
        g = gen.complete_graph(5)
        assert degeneracy(g) == 4

    def test_empty(self):
        g = from_edge_list([])
        assert degeneracy(g) == 0

    def test_kcore_subgraph_vertices(self, paper_graph):
        assert kcore_subgraph_vertices(paper_graph, 3).tolist() == [1, 2, 3, 4]
        assert kcore_subgraph_vertices(paper_graph, 4).size == 0
