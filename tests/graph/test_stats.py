"""Graph statistics tests."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.graph import generators as gen
from repro.graph.stats import analyze, degree_histogram, triangle_count

from ..conftest import to_networkx


class TestTriangleCount:
    def test_triangle(self, triangle):
        assert triangle_count(triangle) == 1

    def test_k4(self):
        assert triangle_count(gen.complete_graph(4)) == 4

    def test_k6(self):
        assert triangle_count(gen.complete_graph(6)) == 20  # C(6,3)

    def test_triangle_free(self, path4):
        assert triangle_count(path4) == 0

    def test_empty(self):
        assert triangle_count(from_edge_list([])) == 0

    def test_matches_networkx(self):
        import networkx as nx

        for seed in range(10):
            g = gen.erdos_renyi(40, 0.3, seed=seed)
            want = sum(nx.triangles(to_networkx(g)).values()) // 3
            assert triangle_count(g) == want

    def test_chunked_matches_unchunked(self):
        g = gen.caveman_social(4, 30, p_in=0.5, seed=1)
        assert triangle_count(g, chunk_pairs=64) == triangle_count(g)


class TestDegreeHistogram:
    def test_star(self):
        hist = degree_histogram(gen.star_graph(5))
        assert hist[1] == 5
        assert hist[5] == 1

    def test_empty(self):
        assert degree_histogram(from_edge_list([])).tolist() == [0]

    def test_sums_to_n(self):
        g = gen.erdos_renyi(30, 0.3, seed=2)
        assert degree_histogram(g).sum() == 30


class TestAnalyze:
    def test_complete_graph(self):
        s = analyze(gen.complete_graph(5))
        assert s.num_vertices == 5
        assert s.degeneracy == 4
        assert s.clique_upper_bound == 5
        assert s.triangles == 10
        assert s.global_clustering == pytest.approx(1.0)

    def test_empty_graph(self):
        s = analyze(from_edge_list([]))
        assert s.num_vertices == 0
        assert s.clique_upper_bound == 0

    def test_skip_triangles(self):
        g = gen.erdos_renyi(30, 0.3, seed=3)
        s = analyze(g, triangles=False)
        assert s.triangles == 0
        assert s.degeneracy >= 1

    def test_percentiles_ordered(self):
        g = gen.chung_lu_power_law(500, 6.0, seed=4)
        s = analyze(g, triangles=False)
        assert s.degree_p90 <= s.degree_p99 <= s.max_degree

    def test_hardness_hints(self):
        road = analyze(gen.road_grid(20, 20, seed=5), triangles=False)
        assert road.hardness_hint() in ("easy-to-prune", "moderate")
        dense = analyze(
            gen.caveman_social(3, 40, p_in=0.5, seed=6), triangles=False
        )
        # avg degree ~20 vs omega ~7: hard to prune per the paper
        assert dense.hardness_hint(omega_estimate=7) == "hard-to-prune"
        assert analyze(from_edge_list([])).hardness_hint() == "trivial"
