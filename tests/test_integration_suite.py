"""End-to-end integration over the smallest surrogate datasets.

Every suite category, every heuristic, full verification of the
answers -- the closest thing to running the paper's pipeline on real
inputs in the unit-test budget.
"""

import pytest

from repro import Device, DeviceSpec, MaxCliqueSolver, SolverConfig
from repro.baselines import gpu_dfs_max_clique, pmc_max_clique
from repro.core.verify import verify_result
from repro.datasets.suite import iter_suite

MIB = 1 << 20

SMALL = [
    (spec, graph) for spec, graph in iter_suite(max_edges=12_000)
]


@pytest.mark.parametrize(
    "spec,graph", SMALL, ids=[s.name for s, _ in SMALL]
)
def test_small_suite_graph_end_to_end(spec, graph):
    dev = Device(DeviceSpec(memory_bytes=256 * MIB))
    result = MaxCliqueSolver(graph, SolverConfig(), dev).solve()
    verify_result(graph, result)

    # PMC agrees on omega
    pmc = pmc_max_clique(graph)
    assert pmc.clique_number == result.clique_number, spec.name

    # warp-DFS baseline agrees too
    dfs = gpu_dfs_max_clique(graph, Device(DeviceSpec(memory_bytes=256 * MIB)))
    assert dfs.clique_number == result.clique_number, spec.name

    # windowed run agrees and yields a verified clique
    win = MaxCliqueSolver(
        graph, SolverConfig(window_size=1024), Device(DeviceSpec(memory_bytes=256 * MIB))
    ).solve()
    assert win.clique_number == result.clique_number, spec.name
    verify_result(graph, win)


@pytest.mark.parametrize(
    "heuristic",
    ["none", "single-degree", "single-core", "multi-degree", "multi-core"],
)
def test_heuristics_agree_on_smallest_graphs(heuristic):
    for spec, graph in iter_suite(max_edges=8_000, limit=4):
        dev = Device(DeviceSpec(memory_bytes=256 * MIB))
        result = MaxCliqueSolver(
            graph, SolverConfig(heuristic=heuristic), dev
        ).solve()
        assert result.clique_number == pmc_max_clique(graph).clique_number
        assert result.heuristic.lower_bound <= result.clique_number
