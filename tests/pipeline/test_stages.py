"""Stage pipeline tests: ordering, context propagation, parity."""

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.solver import MaxCliqueSolver
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec
from repro.pipeline import (
    CSRResidencyStage,
    ExecutionContext,
    FullSearchStage,
    HeuristicStage,
    PreprocessStage,
    Stage,
    TwoCliqueSetupStage,
    WindowedSearchStage,
    default_stages,
    run_pipeline,
)

MIB = 1 << 20


@pytest.fixture
def graph():
    return gen.planted_clique(300, 8, avg_degree=4.0, seed=7)


def fresh_device():
    return Device(DeviceSpec(memory_bytes=256 * MIB))


class TestStageOrdering:
    def test_default_stage_names_full(self):
        names = [s.name for s in default_stages(SolverConfig())]
        assert names == ["csr_upload", "preprocess", "heuristic", "setup", "bfs"]

    def test_default_stage_names_windowed(self):
        names = [s.name for s in default_stages(SolverConfig(window_size=64))]
        assert names == [
            "csr_upload", "preprocess", "heuristic", "setup", "windowed",
        ]

    def test_stages_satisfy_protocol(self):
        for stage in default_stages(SolverConfig()):
            assert isinstance(stage, Stage)
            assert isinstance(stage.name, str) and stage.name

    def test_stage_times_follow_execution_order(self, graph):
        result = MaxCliqueSolver(graph, SolverConfig(), fresh_device()).solve()
        assert list(result.stage_times) == [
            "csr_upload", "preprocess", "heuristic", "setup", "bfs",
        ]
        assert all(t >= 0.0 for t in result.stage_times.values())

    def test_stage_times_sum_to_model_time(self, graph):
        result = MaxCliqueSolver(graph, SolverConfig(), fresh_device()).solve()
        assert sum(result.stage_times.values()) == pytest.approx(
            result.model_time_s, rel=1e-12
        )

    def test_solver_stages_match_config(self, graph):
        solver = MaxCliqueSolver(graph, SolverConfig(window_size=32))
        assert isinstance(solver.stages()[-1], WindowedSearchStage)
        solver = MaxCliqueSolver(graph, SolverConfig())
        assert isinstance(solver.stages()[-1], FullSearchStage)


class TestContextPropagation:
    def run_manually(self, graph, config):
        """Drive run_pipeline directly so the context stays inspectable."""
        ctx = ExecutionContext.begin(graph, config, fresh_device())
        run_pipeline(default_stages(config), ctx)
        return ctx

    def test_stage_to_stage_state(self, graph):
        ctx = self.run_manually(graph, SolverConfig())
        assert ctx.ranks is not None
        assert ctx.heuristic is not None
        assert ctx.src is not None and ctx.dst is not None
        assert ctx.setup_stats is not None
        assert ctx.result is not None
        assert ctx.result.clique_number == 8

    def test_heuristic_seeds_omega_bar(self, graph):
        config = SolverConfig()
        ctx = ExecutionContext.begin(graph, config, fresh_device())
        stages = default_stages(config)
        run_pipeline(stages[:3], ctx)  # up to and including the heuristic
        assert ctx.omega_bar == max(ctx.heuristic.lower_bound, 2)

    def test_windowed_search_raises_omega_bar(self, graph):
        # a weak heuristic (none) leaves omega_bar at 2; the windowed
        # search must raise the carried bound to the true omega
        config = SolverConfig(heuristic="none", window_size=64)
        ctx = self.run_manually(graph, config)
        assert ctx.result.clique_number == 8
        assert ctx.omega_bar == 8

    def test_window_bounds_non_decreasing(self, graph):
        config = SolverConfig(heuristic="none", window_size=32)
        ctx = self.run_manually(graph, config)
        bounds = [w.best_clique_size for w in ctx.result.windows]
        assert bounds, "expected at least one window"
        assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))
        assert bounds[-1] == ctx.result.clique_number

    def test_full_search_raises_omega_bar(self, graph):
        ctx = self.run_manually(graph, SolverConfig(heuristic="none"))
        assert ctx.omega_bar == ctx.result.clique_number == 8

    def test_cleanups_release_csr_buffers(self, graph):
        ctx = self.run_manually(graph, SolverConfig())
        # after run_pipeline the deferred frees have run: memory back
        # to the pre-solve baseline
        assert ctx.device.pool.in_use_bytes == ctx.base_mem
        assert not ctx._cleanups

    def test_rng_seeded_from_config(self, graph):
        a = ExecutionContext.begin(graph, SolverConfig(seed=5), fresh_device())
        b = ExecutionContext.begin(graph, SolverConfig(seed=5), fresh_device())
        assert a.rng.integers(1 << 30) == b.rng.integers(1 << 30)


class TestPipelineParity:
    """The staged solver is the solver: same results either way."""

    CONFIGS = [
        SolverConfig(),
        SolverConfig(window_size=64),
        SolverConfig(heuristic="multi-core"),
        SolverConfig(heuristic="none"),
    ]

    @pytest.mark.parametrize("idx", range(len(CONFIGS)))
    def test_manual_pipeline_matches_solver(self, graph, idx):
        config = self.CONFIGS[idx]
        via_solver = MaxCliqueSolver(graph, config, fresh_device()).solve()

        ctx = ExecutionContext.begin(graph, config, fresh_device())
        run_pipeline(default_stages(config), ctx)
        manual = ctx.result

        assert manual.clique_number == via_solver.clique_number
        assert manual.num_maximum_cliques == via_solver.num_maximum_cliques
        assert manual.model_time_s == via_solver.model_time_s
        assert np.array_equal(manual.cliques, via_solver.cliques)

    def test_custom_stage_list(self, graph):
        """Stages compose: extra observing stages slot in anywhere."""
        seen = []

        class Probe:
            name = "probe"

            def run(self, ctx):
                seen.append((ctx.omega_bar, ctx.src is not None))

        config = SolverConfig()
        stages = default_stages(config)
        stages.insert(4, Probe())  # between setup and search
        ctx = ExecutionContext.begin(graph, config, fresh_device())
        run_pipeline(stages, ctx)
        assert seen == [(ctx.heuristic.lower_bound, True)]
        assert ctx.result.clique_number == 8
        assert "probe" in ctx.stage_times
