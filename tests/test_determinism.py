"""Determinism guarantees: identical inputs produce identical outputs.

The reproduction's whole value rests on runs being bit-identical
across invocations and hosts: same datasets, same model times, same
counters. These tests re-run representative pipelines twice and
compare everything except wall time.
"""

import numpy as np
import pytest

from repro import Device, DeviceSpec, MaxCliqueSolver, SolverConfig
from repro.baselines import gpu_dfs_max_clique, pmc_max_clique
from repro.datasets.suite import SUITE, load
from repro.graph import generators as gen

MIB = 1 << 20


def solve_twice(graph, **cfg):
    outs = []
    for _ in range(2):
        dev = Device(DeviceSpec(memory_bytes=256 * MIB))
        outs.append(MaxCliqueSolver(graph, SolverConfig(**cfg), dev).solve())
    return outs


class TestSolverDeterminism:
    def test_full_bf_identical(self):
        g = gen.caveman_social(5, 40, p_in=0.4, seed=1)
        a, b = solve_twice(g)
        assert a.clique_number == b.clique_number
        assert a.num_maximum_cliques == b.num_maximum_cliques
        assert (a.cliques == b.cliques).all()
        assert a.model_time_s == b.model_time_s
        assert a.peak_memory_bytes == b.peak_memory_bytes
        assert a.candidates_stored == b.candidates_stored

    def test_windowed_identical(self):
        g = gen.erdos_renyi(40, 0.35, seed=2)
        a, b = solve_twice(g, window_size=16)
        assert (a.cliques == b.cliques).all()
        assert a.model_time_s == b.model_time_s
        assert [w.peak_bytes for w in a.windows] == [
            w.peak_bytes for w in b.windows
        ]

    def test_chunking_never_changes_model_time(self):
        # chunk_pairs is a host-side wall-time knob only
        g = gen.erdos_renyi(40, 0.35, seed=3)
        a = solve_twice(g, chunk_pairs=1 << 22)[0]
        b = solve_twice(g, chunk_pairs=37)[0]
        assert a.model_time_s == b.model_time_s
        assert (a.cliques == b.cliques).all()


class TestBaselineDeterminism:
    def test_pmc(self):
        g = gen.erdos_renyi(35, 0.4, seed=4)
        a = pmc_max_clique(g)
        b = pmc_max_clique(g)
        assert a.model_time_s == b.model_time_s
        assert (a.clique == b.clique).all()
        assert a.nodes_explored == b.nodes_explored

    def test_gpu_dfs(self):
        g = gen.erdos_renyi(35, 0.4, seed=5)
        a = gpu_dfs_max_clique(g)
        b = gpu_dfs_max_clique(g)
        assert a.model_time_s == b.model_time_s
        assert (a.subtree_costs == b.subtree_costs).all()


class TestDatasetDeterminism:
    def test_suite_builds_identically(self):
        spec = SUITE[10]
        a = spec.build()
        b = spec.build()
        assert (a.row_offsets == b.row_offsets).all()
        assert (a.col_indices == b.col_indices).all()


#: golden clique numbers for a representative slice of the suite --
#: recorded from the archived full regeneration; any change to these
#: is a behavioural regression, not noise
GOLDEN_OMEGA = {
    "road-grid-60": 4,
    "ca-team-1k": 9,
    "bio-cl-1k": 10,
    "bio-plant-3k": 12,
    "tech-cl-2k": 6,
    "web-rmat-10": 8,
    "soc-comm-10x50": 7,
}


class TestGoldenResults:
    @pytest.mark.parametrize("name,omega", sorted(GOLDEN_OMEGA.items()))
    def test_golden_clique_numbers(self, name, omega):
        g = load(name)
        dev = Device(DeviceSpec(memory_bytes=256 * MIB))
        r = MaxCliqueSolver(g, SolverConfig(), dev).solve()
        assert r.clique_number == omega
        assert pmc_max_clique(g).clique_number == omega
