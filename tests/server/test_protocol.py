"""Unit tests for the ``repro-wire/1`` codecs, limiter, and stats."""

import pytest

from repro.core.config import SolverConfig
from repro.errors import ProtocolError
from repro.graph import generators as gen
from repro.server import protocol
from repro.server.limiter import TokenBucket
from repro.server.stats import LatencyWindow, ServerStats


class TestFraming:
    def test_round_trip(self):
        frame = {"type": "solve", "id": "r1", "graph": "ca-team-1k"}
        data = protocol.encode_frame(frame)
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert protocol.decode_frame(data) == frame

    def test_compact_encoding(self):
        data = protocol.encode_frame({"type": "stats"})
        assert b" " not in data

    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"{\"type\": \n",
            b"\xff\xfe\x00\n",
            b"[1,2,3]\n",
            b"42\n",
            b"{}\n",
            b"{\"type\": 7}\n",
            b"{\"type\": \"\"}\n",
        ],
    )
    def test_bad_lines_rejected(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_frame(line)
        assert excinfo.value.code == "bad_frame"

    def test_error_frame_known_code(self):
        frame = protocol.error_frame("rate_limited", "slow down", "r1", 0.25)
        assert frame["type"] == "error"
        assert frame["retriable"] is True
        assert frame["exit_code"] == 1
        assert frame["id"] == "r1"
        assert frame["retry_after_s"] == pytest.approx(0.25)

    def test_error_frame_unknown_code_maps_to_internal_semantics(self):
        frame = protocol.error_frame("no_such_code", "boom")
        assert frame["retriable"] is False
        assert frame["exit_code"] == 1
        assert "id" not in frame and "retry_after_s" not in frame


class TestGraphPayloads:
    def test_string_passes_through(self):
        assert protocol.encode_graph("ca-team-1k") == "ca-team-1k"

    def test_csr_round_trips_compressed(self):
        graph = gen.erdos_renyi(40, 0.25, seed=5)
        payload = protocol.encode_graph(graph)
        assert payload["kind"] == "edgelist-gz"
        decoded = protocol.decode_graph(payload)
        assert decoded.num_vertices == graph.num_vertices
        assert decoded.num_edges == graph.num_edges
        assert (decoded.col_indices == graph.col_indices).all()

    def test_inline_edges(self):
        graph = protocol.decode_graph(
            {"kind": "edges", "edges": [[0, 1], [1, 2], [0, 2]]}
        )
        assert graph.num_vertices == 3 and graph.num_edges == 3

    def test_dataset_kind(self):
        graph = protocol.decode_graph({"kind": "dataset", "name": "ca-team-1k"})
        assert graph.num_vertices == 1000

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_graph("definitely-not-a-dataset")
        assert excinfo.value.code == "bad_request"

    def test_corrupt_base64_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_graph({"kind": "edgelist-gz", "data": "!!!"})
        assert excinfo.value.code == "bad_request"

    def test_non_gzip_data_rejected(self):
        import base64

        payload = {
            "kind": "edgelist-gz",
            "data": base64.b64encode(b"plain text, not gzip").decode(),
        }
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_graph(payload)
        assert excinfo.value.code == "bad_request"

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "nope"},
            {"kind": "edges", "edges": "0 1"},
            {"kind": "edgelist-gz", "data": 42},
            {"kind": "dataset"},
            12345,
            None,
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_graph(payload)
        assert excinfo.value.code == "bad_request"

    def test_unencodable_graph_rejected(self):
        with pytest.raises(TypeError):
            protocol.encode_graph(3.14)


class TestSolveFrames:
    GRAPH = {"kind": "edges", "edges": [[0, 1], [1, 2], [0, 2]]}

    def test_full_frame(self):
        request, max_report = protocol.solve_request_from_frame(
            {
                "type": "solve",
                "id": "r1",
                "graph": self.GRAPH,
                "config": {"heuristic": "none", "window_size": 8},
                "timeout_s": 2.5,
                "label": "triangle",
                "max_report": 3,
            }
        )
        assert request.config == SolverConfig(heuristic="none", window_size=8)
        assert request.timeout_s == 2.5
        assert request.label == "triangle"
        assert max_report == 3

    def test_defaults(self):
        request, max_report = protocol.solve_request_from_frame(
            {"type": "solve", "graph": self.GRAPH}
        )
        assert request.config == SolverConfig()
        assert request.timeout_s is None
        assert max_report is None

    @pytest.mark.parametrize(
        "frame,fragment",
        [
            ({"type": "solve"}, "graph"),
            ({"type": "solve", "graph": GRAPH, "bogus": 1}, "bogus"),
            ({"type": "solve", "graph": GRAPH, "config": 7}, "config"),
            (
                {"type": "solve", "graph": GRAPH, "config": {"nope": 1}},
                "nope",
            ),
            (
                {"type": "solve", "graph": GRAPH, "config": {"heuristic": "zzz"}},
                "config",
            ),
            ({"type": "solve", "graph": GRAPH, "timeout_s": "soon"}, "timeout_s"),
            ({"type": "solve", "graph": GRAPH, "label": 9}, "label"),
            ({"type": "solve", "graph": GRAPH, "max_report": -1}, "max_report"),
            ({"type": "solve", "graph": GRAPH, "max_report": 1.5}, "max_report"),
        ],
    )
    def test_invalid_frames_rejected(self, frame, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.solve_request_from_frame(frame)
        assert excinfo.value.code == "bad_request"
        assert fragment in str(excinfo.value)

    @pytest.mark.parametrize(
        "record,expected",
        [
            ({"status": "ok"}, 0),
            ({"status": "failed", "error": "DeviceOOMError: 3 GiB"}, 2),
            ({"status": "failed", "error": "SolveTimeoutError: 5s"}, 3),
            ({"status": "failed", "error": "DeviceLostError: gone"}, 4),
            ({"status": "failed", "error": "ValueError: ?"}, 1),
            ({"status": "rejected", "error": None}, 1),
        ],
    )
    def test_exit_codes(self, record, expected):
        assert protocol.exit_code_for_record(record) == expected


class TestTokenBucket:
    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(0.0, burst=1)
        assert bucket.unlimited
        for _ in range(1000):
            ok, retry = bucket.try_acquire()
            assert ok and retry == 0.0

    def test_burst_then_denial(self):
        now = [0.0]
        bucket = TokenBucket(1.0, burst=3, clock=lambda: now[0])
        assert all(bucket.try_acquire()[0] for _ in range(3))
        ok, retry = bucket.try_acquire()
        assert not ok
        assert retry == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        now = [0.0]
        bucket = TokenBucket(2.0, burst=2, clock=lambda: now[0])
        assert bucket.try_acquire()[0] and bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        now[0] += 0.5  # 2 tokens/s * 0.5s = 1 token back
        ok, _ = bucket.try_acquire()
        assert ok
        assert not bucket.try_acquire()[0]

    def test_tokens_capped_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(10.0, burst=2, clock=lambda: now[0])
        now[0] += 100.0
        assert bucket.tokens == pytest.approx(2.0)

    def test_bad_burst_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0)


class TestStats:
    def test_latency_percentiles(self):
        window = LatencyWindow(size=100)
        for ms in range(1, 101):
            window.record(ms / 1e3)
        snap = window.snapshot()
        assert snap["count"] == 100
        assert snap["p50_ms"] == pytest.approx(50.0, abs=2.0)
        assert snap["p99_ms"] == pytest.approx(99.0, abs=2.0)
        assert snap["mean_ms"] == pytest.approx(50.5, abs=0.1)

    def test_empty_window(self):
        snap = LatencyWindow().snapshot()
        assert snap == {
            "count": 0,
            "window": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
        }

    def test_window_is_bounded(self):
        window = LatencyWindow(size=4)
        for _ in range(100):
            window.record(1.0)
        snap = window.snapshot()
        assert snap["count"] == 100 and snap["window"] == 4

    def test_bad_window_size_rejected(self):
        with pytest.raises(ValueError):
            LatencyWindow(size=0)

    def test_server_stats_counters_and_gauges(self):
        stats = ServerStats()
        stats.inc("frames.in")
        stats.inc("frames.in")
        stats.inc("rejects.bad_frame", 3)
        assert stats.get("frames.in") == 2
        snap = stats.snapshot(queue_depth=7, draining=False)
        assert snap["frames.in"] == 2
        assert snap["rejects.bad_frame"] == 3
        assert snap["queue_depth"] == 7
        assert snap["draining"] is False
        assert snap["latency"]["count"] == 0
