"""Shared fixtures for the network server tests.

Every test server binds an ephemeral port (``ServerConfig(port=0)``)
on a background :class:`ServerThread`, so the suite is parallel-safe
and never collides with a real ``repro serve``. ``RawConn`` is a
deliberately low-level socket wrapper for the protocol-abuse tests:
it can send partial frames, garbage bytes, and pipelined requests the
well-behaved :class:`SolveClient` never would.
"""

import json
import socket

import pytest

from repro.graph import generators as gen
from repro.server import ServerConfig, ServerThread, SolveClient
from repro.server import protocol
from repro.service import SolveService

#: a triangle plus a pendant vertex: decodes fast, omega == 3
TRIANGLE_EDGES = [[0, 1], [1, 2], [0, 2], [2, 3]]


@pytest.fixture(scope="module")
def community():
    """Small community graph solved comfortably at any sane budget."""
    return gen.caveman_social(6, 40, p_in=0.35, seed=3)


@pytest.fixture
def make_server():
    """Factory for background servers; every handle is stopped at teardown."""
    handles = []

    def _make(service=None, config=None, **service_kwargs):
        if service is None:
            service = SolveService(**service_kwargs)
        if config is None:
            config = ServerConfig(port=0)
        handle = ServerThread(service, config)
        handles.append(handle)
        return handle.start()

    yield _make
    for handle in handles:
        handle.stop()


@pytest.fixture
def server(make_server):
    """A default server over a fresh single-device SolveService."""
    return make_server()


@pytest.fixture
def make_client():
    """Factory for clients; every client is closed at teardown."""
    clients = []

    def _make(handle, **kwargs):
        kwargs.setdefault("retries", 2)
        kwargs.setdefault("timeout_s", 30.0)
        kwargs.setdefault("backoff_s", 0.05)
        client = SolveClient(port=handle.port, **kwargs)
        clients.append(client)
        return client

    yield _make
    for client in clients:
        client.close()


class RawConn:
    """A bare socket speaking (or abusing) ``repro-wire/1``."""

    def __init__(self, port, host="127.0.0.1", timeout=15.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rb")

    def send(self, frame):
        self.sock.sendall(protocol.encode_frame(frame))

    def send_bytes(self, data):
        self.sock.sendall(data)

    def recv(self):
        """One frame, or None on EOF."""
        line = self.file.readline()
        if not line:
            return None
        return json.loads(line.decode("utf-8"))

    def hello(self):
        self.send({"type": "hello", "protocol": protocol.PROTOCOL, "client": "raw"})
        reply = self.recv()
        assert reply is not None and reply["type"] == "hello", reply
        return reply

    def close(self):
        try:
            self.file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def raw_conn():
    """Factory for RawConns; every socket is closed at teardown."""
    conns = []

    def _make(handle_or_port, **kwargs):
        port = getattr(handle_or_port, "port", handle_or_port)
        conn = RawConn(port, **kwargs)
        conns.append(conn)
        return conn

    yield _make
    for conn in conns:
        conn.close()
