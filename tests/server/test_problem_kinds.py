"""Problem-kind negotiation and per-kind solves over the wire.

The hello reply advertises the kinds the server solves; a solve frame
naming an unknown kind gets a non-retriable ``unsupported_problem``
error; :class:`SolveClient` rejects unadvertised kinds locally without
burning a round trip; and every supported kind round-trips to the same
answer as its CPU oracle.
"""

import pytest

from repro.baselines import count_k_cliques_reference, maximal_clique_set
from repro.errors import ServerError
from repro.graph import from_edge_list
from repro.server import protocol

from .conftest import TRIANGLE_EDGES

EDGES_PAYLOAD = {"kind": "edges", "edges": TRIANGLE_EDGES}
TRIANGLE = from_edge_list([tuple(e) for e in TRIANGLE_EDGES])


class TestHelloAdvertisesKinds:
    def test_handshake_lists_supported_problems(self, server, raw_conn):
        hello = raw_conn(server).hello()
        assert hello["problems"] == list(protocol.SUPPORTED_PROBLEMS)
        assert hello["problems"] == [
            "max-clique", "k-clique-count", "maximal-enum"
        ]

    def test_redundant_hello_lists_them_too(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send(
            {"type": "hello", "protocol": protocol.PROTOCOL, "client": "raw"}
        )
        again = conn.recv()
        assert again["problems"] == list(protocol.SUPPORTED_PROBLEMS)

    def test_client_records_advertised_kinds(self, server, make_client):
        client = make_client(server)
        hello = client.connect()
        assert hello["problems"] == list(protocol.SUPPORTED_PROBLEMS)


class TestUnknownKindRejected:
    def test_error_frame_is_non_retriable(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send(
            {
                "type": "solve",
                "id": "r1",
                "graph": EDGES_PAYLOAD,
                "problem": "chromatic-number",
            }
        )
        reply = conn.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "unsupported_problem"
        assert reply["retriable"] is False
        assert reply["exit_code"] == 1
        assert reply["id"] == "r1"
        assert "chromatic-number" in reply["message"]

    def test_connection_survives_the_rejection(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send(
            {
                "type": "solve",
                "id": "bad",
                "graph": EDGES_PAYLOAD,
                "problem": "nope",
            }
        )
        assert conn.recv()["code"] == "unsupported_problem"
        conn.send({"type": "solve", "id": "good", "graph": EDGES_PAYLOAD})
        reply = conn.recv()
        assert reply["type"] == "result"
        assert reply["record"]["clique_number"] == 3

    def test_problem_in_both_places_is_bad_request(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send(
            {
                "type": "solve",
                "id": "r1",
                "graph": EDGES_PAYLOAD,
                "problem": "maximal-enum",
                "config": {"problem": "max-clique"},
            }
        )
        reply = conn.recv()
        assert reply["code"] == "bad_request"
        assert "use one" in reply["message"]

    def test_client_rejects_locally_without_a_round_trip(
        self, server, make_client
    ):
        client = make_client(server)
        client.connect()
        frames_before = client.stats()["server"]["frames.in"]
        with pytest.raises(ServerError) as info:
            client.solve(TRIANGLE, problem="vertex-cover", max_report=5)
        assert info.value.code == "unsupported_problem"
        assert info.value.retriable is False
        # only the second stats round trip hits the wire: the rejected
        # solve frame was never sent (and therefore never retried)
        frames_after = client.stats()["server"]["frames.in"]
        assert frames_after == frames_before + 1


class TestKindsOverTheWire:
    def test_k_clique_count_matches_oracle(self, server, make_client, community):
        client = make_client(server)
        reply = client.solve(community, problem="k-clique-count", k=3)
        record = reply["record"]
        assert record["status"] == "ok"
        assert record["problem"] == "k-clique-count"
        assert record["k"] == 3
        assert record["k_clique_count"] == count_k_cliques_reference(
            community, 3
        )
        assert record["enumerated_all"] is True
        assert "cliques" not in reply  # counting kinds ship no rows

    def test_maximal_enum_matches_oracle(self, server, make_client, community):
        client = make_client(server)
        reply = client.solve(community, problem="maximal-enum")
        record = reply["record"]
        oracle = maximal_clique_set(community)
        assert record["status"] == "ok"
        assert record["num_maximal_cliques"] == len(oracle)
        assert record["clique_number"] == len(oracle[-1])
        assert [tuple(row) for row in reply["cliques"]] == oracle

    def test_max_report_caps_enum_rows(self, server, make_client, community):
        client = make_client(server)
        reply = client.solve(community, problem="maximal-enum", max_report=2)
        assert len(reply["cliques"]) == 2
        # the count stays exact even though the rows are capped
        assert reply["record"]["num_maximal_cliques"] == len(
            maximal_clique_set(community)
        )

    def test_default_kind_record_is_kind_tagged(self, server, make_client):
        client = make_client(server)
        reply = client.solve(TRIANGLE)
        record = reply["record"]
        assert record["problem"] == "max-clique"
        assert record["k"] is None
        assert record["k_clique_count"] is None
        assert record["num_maximal_cliques"] is None
