"""Checkpoint frames on the wire and client address rotation.

The ``checkpoint`` frame and the solve-side ``checkpoint`` payload are
the transport half of the cluster tier's failover (docs/CLUSTER.md):
the router polls the former from the owning backend and re-attaches
the newest state via the latter when it re-submits a dying solve to a
replica. These tests pin the server-side contract on its own, without
a router in the loop.
"""

import time

import pytest

from repro.core import SolverConfig
from repro.core.solver import MaxCliqueSolver
from repro.errors import ServerError
from repro.server import SolveClient
from repro.service import SolveService

from .conftest import TRIANGLE_EDGES

TRIANGLE = {"kind": "edges", "edges": TRIANGLE_EDGES}


class SlowWindowService(SolveService):
    """Sleeps after every completed window: a live checkpoint source."""

    def __init__(self, window_delay_s, **kwargs):
        super().__init__(**kwargs)
        self._window_delay_s = window_delay_s

    def submit(self, request):
        sink = request.checkpoint_sink
        if sink is not None:
            def slow_sink(ckpt, _sink=sink):
                time.sleep(self._window_delay_s)
                _sink(ckpt)

            request.checkpoint_sink = slow_sink
        return super().submit(request)


def local_checkpoints(graph, window_size):
    """Every completed-window checkpoint of a fault-free local solve."""
    taken = []
    MaxCliqueSolver(
        graph,
        SolverConfig(window_size=window_size),
        checkpoint_sink=taken.append,
    ).solve()
    assert len(taken) >= 2, "graph too small to produce checkpoints"
    return taken


class TestCheckpointFrame:
    def test_inflight_job_reports_checkpoint(self, make_server, raw_conn):
        server = make_server(service=SlowWindowService(0.05))
        conn = raw_conn(server)
        conn.hello()
        conn.send(
            {
                "type": "solve",
                "id": "ck",
                "graph": {"kind": "dataset", "name": "ca-team-1k"},
                "config": {"window_size": 128},
            }
        )
        # poll until the bridge has stored at least one completed
        # window; the result frame may interleave with the replies
        saw_live_checkpoint = False
        result = None
        deadline = time.monotonic() + 30.0
        while result is None:
            assert time.monotonic() < deadline, "no result frame"
            conn.send({"type": "checkpoint", "id": "ck"})
            frame = conn.recv()
            assert frame is not None
            if frame["type"] == "result":
                result = frame
                break
            assert frame["type"] == "checkpoint"
            assert frame["id"] == "ck"
            if frame["checkpoint"] is not None:
                saw_live_checkpoint = True
                assert frame["state"] in ("queued", "running")
                assert frame["checkpoint"]["graph_fingerprint"]
            time.sleep(0.02)
        assert saw_live_checkpoint, "never observed a live checkpoint"
        assert result["record"]["status"] == "ok"
        # drain any checkpoint replies that were already in flight
        # when the result landed, then ask once more: job finished ->
        # state terminal, checkpoint dropped
        conn.send({"type": "checkpoint", "id": "ck"})
        frame = conn.recv()
        while frame is not None and frame.get("checkpoint") is not None:
            conn.send({"type": "checkpoint", "id": "ck"})
            frame = conn.recv()
        assert frame is not None
        assert frame["state"] in ("done", "unknown")
        assert frame["checkpoint"] is None

    def test_unknown_id_and_missing_id(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "checkpoint", "id": "nope"})
        frame = conn.recv()
        assert frame["state"] == "unknown"
        assert frame["checkpoint"] is None
        conn.send({"type": "checkpoint"})
        assert conn.recv()["code"] == "bad_request"


class TestShippedCheckpoint:
    def test_resume_from_mid_checkpoint_matches_clean_run(
        self, server, make_client, community
    ):
        """A solve resumed from a shipped mid-search checkpoint must
        produce the same witnesses as the fault-free run."""
        taken = local_checkpoints(community, window_size=24)
        clean = SolveService().solve(community, window_size=24)
        mid = taken[len(taken) // 2].to_dict()
        client = make_client(server)
        reply = client.solve(community, window_size=24, checkpoint=mid)
        record = reply["record"]
        assert record["status"] == "ok"
        assert record["clique_number"] == clean.clique_number
        assert record["num_maximum_cliques"] == clean.num_maximum_cliques
        assert reply["cliques"] == [
            [int(v) for v in row] for row in clean.result.cliques
        ]

    def test_checkpoint_for_wrong_graph_rejected(
        self, server, make_client, community
    ):
        from repro.graph.build import from_edge_list

        other = from_edge_list([tuple(e) for e in TRIANGLE_EDGES])
        taken = local_checkpoints(community, window_size=24)
        client = make_client(server)
        with pytest.raises(ServerError) as excinfo:
            client.solve(
                other, window_size=2, checkpoint=taken[0].to_dict()
            )
        assert excinfo.value.code == "bad_request"
        assert not excinfo.value.retriable

    def test_malformed_checkpoint_rejected(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send(
            {
                "type": "solve",
                "id": "bad",
                "graph": TRIANGLE,
                "config": {"window_size": 2},
                "checkpoint": {"not": "a checkpoint"},
            }
        )
        reply = conn.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "bad_request"


class TestClientRotation:
    def test_connect_rotates_past_dead_address(self, server):
        from tests.cluster.conftest import free_port

        dead = f"127.0.0.1:{free_port()}"
        client = SolveClient(
            addresses=[dead, f"127.0.0.1:{server.port}"],
            retries=2,
            backoff_s=0.01,
        )
        try:
            hello = client.connect()
            assert hello["type"] == "hello"
            assert client.port == server.port  # now pointing past the corpse
        finally:
            client.close()

    def test_all_addresses_dead_reports_every_target(self):
        from tests.cluster.conftest import free_port

        addrs = [f"127.0.0.1:{free_port()}" for _ in range(2)]
        client = SolveClient(addresses=addrs, retries=1, backoff_s=0.01)
        with pytest.raises(ServerError) as excinfo:
            client.connect()
        assert excinfo.value.code == "unreachable"
        for addr in addrs:
            assert addr in str(excinfo.value)

    def test_draining_reject_rotates_to_next_server(self, make_server):
        """A draining reject must push the client to its alternate
        address instead of burning the retry budget on sleeps."""
        from repro.graph import generators as gen
        from tests.cluster.conftest import FakeBackend

        draining = FakeBackend()  # rejects every solve with draining
        healthy = make_server()
        client = SolveClient(
            addresses=[
                f"127.0.0.1:{draining.port}",
                f"127.0.0.1:{healthy.port}",
            ],
            retries=2,
            backoff_s=0.01,
        )
        try:
            reply = client.solve(gen.erdos_renyi(12, 0.5, seed=1))
            assert reply["record"]["status"] == "ok"
            assert client.port == healthy.port
        finally:
            client.close()
            draining.close()

    def test_single_address_never_rotates(self, server, make_client):
        client = make_client(server)
        assert client._rotate() is False
        assert client.port == server.port
