"""End-to-end server tests: parity, backpressure, drain, and abuse.

The abuse section is the acceptance gate from the issue: oversized
frames, garbage bytes, rate-limit bursts, and mid-solve disconnects
must never produce an unhandled exception or wedge the solve worker,
and a concurrent ``stats`` frame must answer promptly even while a
slow solve is in flight.
"""

import threading
import time

import pytest

from repro.errors import ServerError
from repro.server import ServerConfig, protocol
from repro.service import SolveService

from .conftest import TRIANGLE_EDGES

TRIANGLE = {"kind": "edges", "edges": TRIANGLE_EDGES}


def _slow_service(delay_s, **kwargs):
    """A service whose every launch sleeps: deterministic slowness."""
    return SolveService(
        fault_hook=lambda request, attempt, config: time.sleep(delay_s),
        **kwargs,
    )


def _collect(conn, n, deadline_s=20.0):
    """Read ``n`` frames from a RawConn (order-insensitive callers)."""
    frames = []
    end = time.monotonic() + deadline_s
    while len(frames) < n:
        assert time.monotonic() < end, f"timed out after {frames}"
        frame = conn.recv()
        assert frame is not None, f"unexpected EOF after {frames}"
        frames.append(frame)
    return frames


class TestSolvePath:
    def test_parity_with_local_service(self, server, make_client, community):
        local = SolveService().solve(community)
        client = make_client(server)
        reply = client.solve(community, label="community")
        record = reply["record"]
        assert reply["exit_code"] == 0
        assert record["status"] == "ok"
        assert record["clique_number"] == local.clique_number
        assert record["num_maximum_cliques"] == local.num_maximum_cliques
        local_rows = sorted(tuple(int(v) for v in row) for row in local.result.cliques)
        wire_rows = sorted(tuple(row) for row in reply["cliques"])
        assert wire_rows == local_rows

    def test_dataset_name_resolved_server_side(self, server, make_client):
        reply = make_client(server).solve("ca-team-1k")
        assert reply["record"]["status"] == "ok"
        assert reply["record"]["clique_number"] == 9

    def test_cache_hit_across_transport(self, server, make_client, community):
        client = make_client(server)
        first = client.solve(community)
        second = client.solve(community)
        assert first["record"]["cache_hit"] is False
        assert second["record"]["cache_hit"] is True
        assert second["cliques"] == first["cliques"]

    def test_max_report_caps_reply_not_count(self, server, make_client, community):
        client = make_client(server)
        full = client.solve(community)
        capped = client.solve(community, max_report=1)
        assert len(capped["cliques"]) == 1
        assert (
            capped["record"]["num_maximum_cliques"]
            == full["record"]["num_maximum_cliques"]
        )

    def test_bad_config_raises_server_error(self, server, make_client, community):
        client = make_client(server)
        with pytest.raises(ServerError) as excinfo:
            client.solve(community, config={"heuristic": "zzz"})
        assert excinfo.value.code == "bad_request"
        assert not excinfo.value.retriable

    def test_stats_frame_shape(self, server, make_client, community):
        client = make_client(server)
        client.solve(community)
        stats = client.stats()
        assert stats["server"]["solves.accepted"] == 1
        assert stats["server"]["connections_open"] >= 1
        assert stats["server"]["latency"]["count"] == 1
        assert stats["service"]["jobs"]["total"] == 1
        assert stats["service"]["jobs"]["ok"] == 1
        assert stats["service"]["cache"]["misses"] == 1
        assert stats["service"]["pool"]["devices"] == 1
        assert isinstance(stats["counters"], dict)

    def test_pipelined_solves_one_connection(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        for i in range(4):
            conn.send({"type": "solve", "id": f"r{i}", "graph": TRIANGLE})
        frames = _collect(conn, 4)
        assert {f["id"] for f in frames} == {"r0", "r1", "r2", "r3"}
        assert all(f["type"] == "result" for f in frames)
        assert all(f["record"]["clique_number"] == 3 for f in frames)


class TestStatusAndCancel:
    def test_status_lifecycle(self, make_server, raw_conn):
        server = make_server(service=_slow_service(0.4))
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "solve", "id": "job", "graph": TRIANGLE})
        conn.send({"type": "status", "id": "job"})
        status = conn.recv()
        assert status["type"] == "status"
        assert status["state"] in ("queued", "running")
        result = conn.recv()
        assert result["type"] == "result" and result["id"] == "job"
        conn.send({"type": "status", "id": "job"})
        assert conn.recv()["state"] in ("done", "unknown")

    def test_status_unknown_id(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "status", "id": "nope"})
        assert conn.recv()["state"] == "unknown"

    def test_cancel_queued_job(self, make_server, raw_conn):
        server = make_server(service=_slow_service(0.4))
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "solve", "id": "a", "graph": TRIANGLE})
        time.sleep(0.15)  # let the worker take job a in-flight
        conn.send({"type": "solve", "id": "b", "graph": TRIANGLE})
        time.sleep(0.05)  # let b reach the bridge queue
        conn.send({"type": "cancel", "id": "b"})
        frames = _collect(conn, 3)
        by_key = {(f["type"], f.get("id")): f for f in frames}
        cancel_reply = by_key[("status", "b")]
        assert cancel_reply["cancelled"] is True
        assert cancel_reply["state"] == "cancelled"
        error = by_key[("error", "b")]
        assert error["code"] == "cancelled"
        assert by_key[("result", "a")]["record"]["status"] == "ok"

    def test_cancel_unknown_id(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "cancel", "id": "ghost"})
        reply = conn.recv()
        assert reply["cancelled"] is False and reply["state"] == "unknown"


class TestBackpressure:
    def test_rate_limit_burst(self, make_server, raw_conn):
        server = make_server(
            config=ServerConfig(port=0, rate=0.01, burst=1),
        )
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "solve", "id": "ok", "graph": TRIANGLE})
        conn.send({"type": "solve", "id": "fast", "graph": TRIANGLE})
        frames = _collect(conn, 2)
        by_key = {(f["type"], f.get("id")): f for f in frames}
        limited = by_key[("error", "fast")]
        assert limited["code"] == "rate_limited"
        assert limited["retriable"] is True
        assert limited["retry_after_s"] > 0
        assert by_key[("result", "ok")]["record"]["status"] == "ok"

    def test_queue_full_is_server_busy(self, make_server, raw_conn):
        server = make_server(
            service=_slow_service(0.6),
            config=ServerConfig(port=0, queue_depth=1),
        )
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "solve", "id": "a", "graph": TRIANGLE})
        time.sleep(0.2)  # a is now in-flight, the queue is empty
        conn.send({"type": "solve", "id": "b", "graph": TRIANGLE})
        time.sleep(0.05)  # b occupies the single queue slot
        conn.send({"type": "solve", "id": "c", "graph": TRIANGLE})
        frames = _collect(conn, 3)
        by_key = {(f["type"], f.get("id")): f for f in frames}
        busy = by_key[("error", "c")]
        assert busy["code"] == "server_busy" and busy["retriable"] is True
        assert by_key[("result", "a")]["record"]["status"] == "ok"
        assert by_key[("result", "b")]["record"]["status"] == "ok"

    def test_duplicate_in_flight_id_rejected(self, make_server, raw_conn):
        server = make_server(service=_slow_service(0.4))
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "solve", "id": "dup", "graph": TRIANGLE})
        time.sleep(0.05)
        conn.send({"type": "solve", "id": "dup", "graph": TRIANGLE})
        frames = _collect(conn, 2)
        codes = sorted(f["type"] for f in frames)
        assert codes == ["error", "result"]
        error = next(f for f in frames if f["type"] == "error")
        assert error["code"] == "bad_request"

    def test_connection_cap(self, make_server, raw_conn, make_client, community):
        server = make_server(config=ServerConfig(port=0, max_conns=1))
        client = make_client(server, retries=0)
        client.connect()
        extra = raw_conn(server)
        refused = extra.recv()
        assert refused["type"] == "error"
        assert refused["code"] == "too_many_connections"
        assert refused["retriable"] is True
        assert extra.recv() is None  # server closed the socket
        # the occupant is unaffected
        assert client.solve(community)["record"]["status"] == "ok"


class TestHandshake:
    def test_solve_before_hello_rejected(self, server, raw_conn):
        conn = raw_conn(server)
        conn.send({"type": "solve", "id": "r", "graph": TRIANGLE})
        reply = conn.recv()
        assert reply["code"] == "handshake_required"
        assert conn.recv() is None

    def test_wrong_protocol_rejected(self, server, raw_conn):
        conn = raw_conn(server)
        conn.send({"type": "hello", "protocol": "repro-wire/99"})
        assert conn.recv()["code"] == "unsupported_protocol"
        assert conn.recv() is None

    def test_hello_reply_shape(self, server, raw_conn):
        reply = raw_conn(server).hello()
        assert reply["protocol"] == protocol.PROTOCOL
        assert reply["server"].startswith("repro/")
        assert reply["max_frame_bytes"] == protocol.MAX_FRAME_BYTES

    def test_redundant_hello_answered(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "hello", "protocol": protocol.PROTOCOL})
        assert conn.recv()["type"] == "hello"


class TestAbuse:
    def test_fragmented_frames_reassembled(self, server, raw_conn):
        conn = raw_conn(server)
        hello = protocol.encode_frame(
            {"type": "hello", "protocol": protocol.PROTOCOL}
        )
        for i in range(0, len(hello), 7):
            conn.send_bytes(hello[i : i + 7])
            time.sleep(0.01)
        assert conn.recv()["type"] == "hello"
        solve = protocol.encode_frame(
            {"type": "solve", "id": "frag", "graph": TRIANGLE}
        )
        conn.send_bytes(solve[: len(solve) // 2])
        time.sleep(0.05)
        conn.send_bytes(solve[len(solve) // 2 :])
        result = conn.recv()
        assert result["type"] == "result"
        assert result["record"]["clique_number"] == 3

    def test_garbage_line_keeps_connection(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send_bytes(b"\xff\xfe\x00 utter garbage\n")
        assert conn.recv()["code"] == "bad_frame"
        conn.send({"type": "stats"})
        assert conn.recv()["type"] == "stats"  # still fully usable

    def test_garbage_before_handshake_closes(self, server, raw_conn):
        conn = raw_conn(server)
        conn.send_bytes(b"GET / HTTP/1.1\r\n")
        assert conn.recv()["code"] == "bad_frame"
        assert conn.recv() is None

    def test_unknown_type_keeps_connection(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "frobnicate", "id": "x"})
        error = conn.recv()
        assert error["code"] == "unknown_type" and error["id"] == "x"
        conn.send({"type": "stats"})
        assert conn.recv()["type"] == "stats"

    def test_oversized_frame_closes_connection(self, make_server, raw_conn):
        server = make_server(config=ServerConfig(port=0, max_frame_bytes=4096))
        conn = raw_conn(server)
        conn.hello()
        conn.send_bytes(b"{\"type\":\"solve\",\"label\":\"" + b"x" * 8192 + b"\"}\n")
        assert conn.recv()["code"] == "frame_too_large"
        assert conn.recv() is None
        # the server keeps accepting fresh connections afterwards
        assert raw_conn(server).hello()["type"] == "hello"

    def test_mid_solve_disconnect_does_not_wedge(
        self, make_server, make_client, raw_conn, community
    ):
        server = make_server(service=_slow_service(0.5))
        rude = raw_conn(server)
        rude.hello()
        rude.send({"type": "solve", "id": "a", "graph": TRIANGLE})
        time.sleep(0.15)  # a is in-flight on the worker
        rude.send({"type": "solve", "id": "b", "graph": TRIANGLE})
        time.sleep(0.05)  # b is queued
        rude.close()  # vanish without reading anything
        # a concurrent stats frame answers promptly despite the
        # in-flight solve (the acceptance criterion from the issue)
        client = make_client(server)
        t0 = time.monotonic()
        stats = client.stats()
        assert time.monotonic() - t0 < 1.0
        assert stats["server"]["in_flight"] + stats["server"]["queue_depth"] >= 0
        # the worker survives and serves the next client
        reply = client.solve(community)
        assert reply["record"]["status"] == "ok"
        # the queued job b was cancelled rather than run for a ghost
        stats = client.stats()
        assert stats["server"].get("solves.cancelled_on_disconnect", 0) >= 1


class TestDrain:
    def test_shutdown_frame_drains(self, make_server, make_client, community):
        server = make_server()
        client = make_client(server)
        assert client.solve(community)["record"]["status"] == "ok"
        bye = client.shutdown()
        assert bye["type"] == "bye"
        server._thread.join(15.0)
        assert not server._thread.is_alive()

    def test_in_flight_finishes_queued_rejected(self, make_server, raw_conn):
        server = make_server(service=_slow_service(0.5))
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "solve", "id": "a", "graph": TRIANGLE})
        time.sleep(0.2)  # a in-flight
        conn.send({"type": "solve", "id": "b", "graph": TRIANGLE})
        time.sleep(0.05)  # b queued
        conn.send({"type": "shutdown"})
        frames = _collect(conn, 3)
        by_key = {(f["type"], f.get("id")): f for f in frames}
        assert by_key[("bye", None)]
        rejected = by_key[("error", "b")]
        assert rejected["code"] == "draining" and rejected["retriable"] is True
        # the in-flight result is still delivered before the close
        assert by_key[("result", "a")]["record"]["status"] == "ok"
        server._thread.join(15.0)
        assert not server._thread.is_alive()

    def test_new_connections_refused_while_draining(
        self, make_server, raw_conn
    ):
        server = make_server(service=_slow_service(0.8))
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "solve", "id": "a", "graph": TRIANGLE})
        time.sleep(0.2)
        conn.send({"type": "shutdown"})
        assert conn.recv()["type"] == "bye"
        # drain is in progress while a's solve sleeps; a newcomer is
        # turned away with a retriable error (or plain refusal once
        # the listener socket is fully closed)
        try:
            late = raw_conn(server)
            refused = late.recv()
            assert refused is None or refused["code"] in (
                "draining",
                "too_many_connections",
            )
        except OSError:
            pass  # listener already closed: equally acceptable

    def test_solve_while_draining_rejected(self, make_server, raw_conn):
        server = make_server(service=_slow_service(0.8))
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "solve", "id": "a", "graph": TRIANGLE})
        time.sleep(0.2)
        conn.send({"type": "shutdown"})
        conn.send({"type": "solve", "id": "late", "graph": TRIANGLE})
        frames = _collect(conn, 3)
        by_key = {(f["type"], f.get("id")): f for f in frames}
        assert by_key[("error", "late")]["code"] == "draining"
        assert by_key[("result", "a")]["record"]["status"] == "ok"


class TestClientRetry:
    def test_retries_rate_limited_until_success(self, make_server, make_client):
        server = make_server(config=ServerConfig(port=0, rate=5.0, burst=1))
        client = make_client(server, retries=5)
        from repro.graph import generators as gen

        graph = gen.erdos_renyi(12, 0.5, seed=1)
        # burst of 1: the second call must eat a rate_limited frame and
        # retry after the server-provided delay
        assert client.solve(graph)["record"]["status"] == "ok"
        assert client.solve(graph)["record"]["status"] == "ok"

    def test_unreachable_raises_retriable(self):
        from repro.server import SolveClient

        client = SolveClient(port=1, retries=0, backoff_s=0.01)
        with pytest.raises(ServerError) as excinfo:
            client.connect()
        assert excinfo.value.code == "unreachable"
        assert excinfo.value.retriable

    def test_concurrent_clients_all_served(self, server, make_client):
        from repro.graph import generators as gen

        graphs = [gen.erdos_renyi(20, 0.3, seed=s) for s in range(4)]
        results = [None] * 4
        errors = []

        def _worker(i):
            try:
                client = make_client(server)
                results[i] = client.solve(graphs[i])
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=_worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors
        assert all(r is not None and r["record"]["status"] == "ok" for r in results)


class TestChaosThroughServer:
    """PR-3 fault plans behind the wire: clients only ever see clean
    results — the service's transparent retries absorb every injected
    transient fault, and the answer matches the fault-free run."""

    def test_fault_run_matches_fault_free(self, make_server, make_client, community):
        from repro.gpusim import FaultEvent, FaultPlan
        from repro.gpusim.spec import DeviceSpec

        spec = DeviceSpec(memory_bytes=8 * (1 << 20))
        config = {"window_size": 256}

        clean = make_server(SolveService(devices=1, spec=spec, cache_size=0))
        reply_clean = make_client(clean).solve(community, config=config)
        assert reply_clean["record"]["status"] == "ok"

        plan = FaultPlan(
            [
                FaultEvent(0, "launch", 7, "transient-kernel"),
                FaultEvent(0, "alloc", 11, "flaky-alloc"),
            ]
        )
        chaos = make_server(
            SolveService(devices=1, spec=spec, cache_size=0, fault_plan=plan)
        )
        reply_chaos = make_client(chaos).solve(community, config=config)

        rc, rf = reply_clean["record"], reply_chaos["record"]
        assert rf["status"] == "ok"
        assert rf["clique_number"] == rc["clique_number"]
        assert rf["num_maximum_cliques"] == rc["num_maximum_cliques"]
        assert rf["enumerated_all"] == rc["enumerated_all"]
        assert reply_chaos["cliques"] == reply_clean["cliques"]
        # at least one injected fault actually fired and was absorbed
        assert rf["transient_retries"] >= 1, rf
        assert reply_chaos["exit_code"] == 0
