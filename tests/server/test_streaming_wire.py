"""Streaming session frames over the real wire.

Covers the four new ``repro-wire/1`` frame types end to end against a
background :class:`ServerThread`: open / mutate / subscribe / close,
idempotent-retry replay of both opens and mutations, the streaming
error codes, session residency across client disconnects, and the
epoch-monotone push contract subscribers rely on.
"""

import threading

import pytest

from repro.errors import ProtocolError, ServerError
from repro.graph import from_edge_list
from repro.server import SolveClient, protocol

TRIANGLE_EDGES = [(0, 1), (1, 2), (0, 2), (2, 3)]


def triangle():
    return from_edge_list(TRIANGLE_EDGES)


class TestSessionLifecycle:
    def test_open_mutate_close_round_trip(self, server, make_client):
        client = make_client(server)
        opened = client.open_session(triangle(), session="s1")
        assert opened["type"] == "session-opened"
        assert opened["epoch"] == 0 and opened["omega"] == 3
        assert opened["path"] == "open"

        mutated = client.mutate("s1", insert=[(0, 3), (1, 3)])
        assert mutated["type"] == "mutated"
        assert mutated["epoch"] == 1 and mutated["omega"] == 4
        assert mutated["witness"] == [0, 1, 2, 3]

        closed = client.close_session("s1")
        assert closed["type"] == "session-closed"
        assert closed["epoch"] == 1 and closed["omega"] == 4

    def test_hello_advertises_streaming(self, server, make_client):
        client = make_client(server)
        hello = client.connect()
        assert hello["streaming"] is True

    def test_session_survives_client_disconnect(self, server, make_client):
        make_client(server).open_session(triangle(), session="resident")
        # a brand-new connection mutates the same resident session
        fresh = make_client(server)
        mutated = fresh.mutate("resident", insert=[(0, 3), (1, 3)])
        assert mutated["epoch"] == 1 and mutated["omega"] == 4

    def test_generated_session_ids_are_unique(self, server, make_client):
        client = make_client(server)
        first = client.open_session(triangle())
        second = client.open_session(triangle())
        assert first["session"] != second["session"]

    def test_sessions_open_gauge(self, server, make_client):
        client = make_client(server)
        client.open_session(triangle(), session="g1")
        assert client.stats()["server"]["sessions_open"] == 1
        client.close_session("g1")
        assert client.stats()["server"]["sessions_open"] == 0


class TestIdempotency:
    def test_duplicate_open_with_same_request_id_replays(self, server,
                                                         raw_conn):
        conn = raw_conn(server)
        conn.hello()
        frame = {
            "type": "open-session", "id": "rq-open", "request_id": "rq-open",
            "session": "dup", "graph": protocol.encode_graph(triangle()),
        }
        conn.send(frame)
        first = conn.recv()
        assert first["type"] == "session-opened"
        conn.send(frame)
        replay = conn.recv()
        assert replay["type"] == "session-opened"
        assert replay["epoch"] == first["epoch"] == 0
        assert replay["fingerprint"] == first["fingerprint"]

    def test_open_of_existing_sid_with_new_request_id_rejected(
            self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        graph = protocol.encode_graph(triangle())
        conn.send({"type": "open-session", "id": "rq-a", "request_id": "rq-a",
                   "session": "dup2", "graph": graph})
        assert conn.recv()["type"] == "session-opened"
        conn.send({"type": "open-session", "id": "rq-b", "request_id": "rq-b",
                   "session": "dup2", "graph": graph})
        reply = conn.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "session_exists"
        assert reply["retriable"] is False

    def test_duplicate_mutate_replays_without_reapplying(self, server,
                                                         raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "open-session", "id": "rq-o", "session": "m1",
                   "graph": protocol.encode_graph(triangle())})
        assert conn.recv()["type"] == "session-opened"
        mutate = {"type": "mutate", "id": "rq-m", "request_id": "rq-m",
                  "session": "m1", "insert": [[0, 3], [1, 3]]}
        conn.send(mutate)
        first = conn.recv()
        assert first["type"] == "mutated" and first["epoch"] == 1
        assert first["replayed"] is False
        conn.send(mutate)
        replay = conn.recv()
        assert replay["type"] == "mutated"
        assert replay["epoch"] == 1  # NOT 2: the batch applied once
        assert replay["replayed"] is True
        assert replay["fingerprint"] == first["fingerprint"]

    def test_pipelined_duplicate_mutate_joins_in_flight_apply(self, server,
                                                              raw_conn):
        """Both copies in one segment: the second replays, not reapplies."""
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "open-session", "id": "rq-o", "session": "m2",
                   "graph": protocol.encode_graph(triangle())})
        assert conn.recv()["type"] == "session-opened"
        encoded = protocol.encode_frame(
            {"type": "mutate", "id": "rq-dup", "request_id": "rq-dup",
             "session": "m2", "insert": [[0, 3]]}
        )
        conn.send_bytes(encoded + encoded)
        first, second = conn.recv(), conn.recv()
        assert first["type"] == second["type"] == "mutated"
        assert first["epoch"] == second["epoch"] == 1
        assert {first["replayed"], second["replayed"]} == {False, True}


class TestErrors:
    def test_mutate_unknown_session(self, server, make_client):
        client = make_client(server)
        with pytest.raises(ServerError) as exc_info:
            client.mutate("ghost", insert=[(0, 1)])
        assert exc_info.value.code == "unknown_session"
        assert not exc_info.value.retriable

    def test_close_unknown_session(self, server, make_client):
        client = make_client(server)
        with pytest.raises(ServerError) as exc_info:
            client.close_session("ghost")
        assert exc_info.value.code == "unknown_session"

    def test_mutate_after_close_is_unknown_session(self, server, make_client):
        client = make_client(server)
        client.open_session(triangle(), session="c1")
        client.close_session("c1")
        with pytest.raises(ServerError) as exc_info:
            client.mutate("c1", insert=[(0, 3)])
        assert exc_info.value.code == "unknown_session"

    def test_session_cap(self, make_server, make_client):
        from repro.server import ServerConfig
        server = make_server(config=ServerConfig(port=0, max_sessions=1))
        client = make_client(server)
        client.open_session(triangle(), session="one")
        with pytest.raises(ServerError) as exc_info:
            client.open_session(triangle(), session="two")
        assert exc_info.value.code == "too_many_sessions"
        assert exc_info.value.retriable  # closing a session frees a slot

    def test_non_max_clique_session_rejected(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({
            "type": "open-session", "id": "rq-k", "session": "k",
            "graph": protocol.encode_graph(triangle()),
            "config": {"problem": "k-clique-count", "k": 3},
        })
        reply = conn.recv()
        assert reply["type"] == "error" and reply["code"] == "bad_request"

    def test_bad_mutation_pairs_rejected(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "open-session", "id": "rq-o", "session": "b1",
                   "graph": protocol.encode_graph(triangle())})
        assert conn.recv()["type"] == "session-opened"
        conn.send({"type": "mutate", "id": "rq-m", "session": "b1",
                   "insert": [[0, 0]]})
        reply = conn.recv()
        assert reply["type"] == "error" and reply["code"] == "bad_request"
        # the rejected batch spent nothing: the session still mutates
        conn.send({"type": "mutate", "id": "rq-m2", "session": "b1",
                   "insert": [[0, 3]]})
        assert conn.recv()["epoch"] == 1

    def test_subscribe_unknown_session(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "subscribe", "id": "rq-s", "session": "ghost"})
        reply = conn.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "unknown_session"


class TestSubscribe:
    def test_snapshot_then_pushes_then_close(self, server, make_client):
        opener = make_client(server)
        opener.open_session(triangle(), session="w1")

        frames = []
        done = threading.Event()

        def watch():
            watcher = SolveClient(port=server.port, timeout_s=30.0)
            try:
                for frame in watcher.subscribe("w1"):
                    frames.append(frame)
                    if frame.get("closed"):
                        break
            finally:
                watcher.close()
                done.set()

        thread = threading.Thread(target=watch, daemon=True)
        thread.start()
        # wait for the snapshot so the pushes race nothing
        deadline = threading.Event()
        for _ in range(200):
            if frames:
                break
            deadline.wait(0.05)
        assert frames and frames[0]["epoch"] == 0

        opener.mutate("w1", insert=[(0, 3), (1, 3)])
        opener.mutate("w1", delete=[(0, 3)])
        opener.close_session("w1")
        assert done.wait(timeout=30.0), "subscriber never saw the close"

        epochs = [f["epoch"] for f in frames]
        assert epochs[0] == 0
        # monotone non-decreasing, ending at the final epoch
        assert all(a <= b for a, b in zip(epochs, epochs[1:])), epochs
        assert epochs[-1] == 2
        assert frames[-1]["closed"] is True
        omegas = {f["epoch"]: f["omega"] for f in frames}
        assert omegas[2] == 3

    def test_resubscribe_after_disconnect(self, server, make_client):
        opener = make_client(server)
        opener.open_session(triangle(), session="w2")
        opener.mutate("w2", insert=[(0, 3), (1, 3)])

        # first subscriber connects, reads the snapshot, and vanishes
        first = SolveClient(port=server.port, timeout_s=30.0)
        gen_first = first.subscribe("w2")
        snap = next(gen_first)
        assert snap["epoch"] == 1
        first.close()

        # the session is untouched: a second subscriber reattaches
        second = SolveClient(port=server.port, timeout_s=30.0)
        try:
            gen_second = second.subscribe("w2")
            snap = next(gen_second)
            assert snap["epoch"] == 1 and snap["omega"] == 4
        finally:
            second.close()

    def test_subscribers_gauge_drops_with_connection(self, server,
                                                     make_client):
        opener = make_client(server)
        opener.open_session(triangle(), session="w3")
        watcher = SolveClient(port=server.port, timeout_s=30.0)
        gen = watcher.subscribe("w3")
        next(gen)
        assert opener.stats()["server"]["subscribers"] == 1
        watcher.close()
        # teardown is asynchronous; poll briefly
        for _ in range(100):
            if opener.stats()["server"]["subscribers"] == 0:
                break
            threading.Event().wait(0.02)
        assert opener.stats()["server"]["subscribers"] == 0


class TestValidation:
    def test_session_id_must_be_short_string(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "open-session", "id": "rq-v",
                   "session": "x" * 500,
                   "graph": protocol.encode_graph(triangle())})
        reply = conn.recv()
        assert reply["type"] == "error" and reply["code"] == "bad_request"

    def test_open_requires_graph(self, server, raw_conn):
        conn = raw_conn(server)
        conn.hello()
        conn.send({"type": "open-session", "id": "rq-g", "session": "ng"})
        reply = conn.recv()
        assert reply["type"] == "error" and reply["code"] == "bad_request"

    def test_open_against_non_streaming_server_fails_fast(self):
        """A hello without the streaming advert rejects open_session."""
        from tests.cluster.conftest import FakeBackend

        fake = FakeBackend()
        client = SolveClient(port=fake.port, timeout_s=5.0, retries=0)
        try:
            with pytest.raises(ServerError) as exc_info:
                client.open_session(triangle(), session="nope")
            assert exc_info.value.code == "unsupported_protocol"
            assert not exc_info.value.retriable
        finally:
            client.close()
            fake.close()
