"""CLI tests (in-process via ``repro.cli.main``)."""

import pytest

from repro.cli import main
from repro.graph import generators as gen
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    write_edge_list(gen.planted_clique(120, 7, avg_degree=3.0, seed=1), path)
    return str(path)


class TestSolve:
    def test_solve_file(self, graph_file, capsys):
        assert main(["solve", graph_file]) == 0
        out = capsys.readouterr().out
        assert "omega=7" in out
        assert "clique:" in out

    def test_solve_dataset_name(self, capsys):
        assert main(["solve", "soc-comm-10x50", "--max-report", "1"]) == 0
        out = capsys.readouterr().out
        assert "omega=" in out

    def test_solve_windowed(self, graph_file, capsys):
        assert main(["solve", graph_file, "--window", "64", "--adaptive"]) == 0
        assert "omega=7" in capsys.readouterr().out

    def test_solve_oom_exit_code(self, capsys):
        code = main(
            ["solve", "fb-comm-20x130", "--heuristic", "none", "--memory-mib", "2"]
        )
        assert code == 2
        assert "OOM" in capsys.readouterr().out

    def test_unknown_graph(self):
        with pytest.raises(SystemExit):
            main(["solve", "definitely-not-a-graph"])

    def test_solve_json(self, graph_file, capsys):
        import json

        assert main(["solve", graph_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clique_number"] == 7
        assert payload["num_maximum_cliques"] >= 1
        assert payload["heuristic"]["kind"] == "multi-degree"
        assert len(payload["cliques"][0]) == 7


class TestInfo:
    def test_info(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "degeneracy" in out
        assert "prunability" in out

    def test_info_no_triangles(self, graph_file, capsys):
        assert main(["info", graph_file, "--no-triangles"]) == 0
        assert "triangles" not in capsys.readouterr().out


class TestDatasets:
    def test_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "road-grid-60" in out
        assert out.count("\n") == 58

    def test_category_filter(self, capsys):
        assert main(["datasets", "--category", "road"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 8


class TestCompare:
    def test_compare(self, graph_file, capsys):
        assert main(["compare", graph_file]) == 0
        out = capsys.readouterr().out
        assert "breadth-first" in out
        assert "PMC" in out
        assert "warp-parallel" in out
        assert "disagree" not in out
