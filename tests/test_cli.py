"""CLI tests (in-process via ``repro.cli.main``)."""

import pytest

from repro.cli import main
from repro.graph import generators as gen
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    write_edge_list(gen.planted_clique(120, 7, avg_degree=3.0, seed=1), path)
    return str(path)


class TestSolve:
    def test_solve_file(self, graph_file, capsys):
        assert main(["solve", graph_file]) == 0
        out = capsys.readouterr().out
        assert "omega=7" in out
        assert "clique:" in out

    def test_solve_dataset_name(self, capsys):
        assert main(["solve", "soc-comm-10x50", "--max-report", "1"]) == 0
        out = capsys.readouterr().out
        assert "omega=" in out

    def test_solve_windowed(self, graph_file, capsys):
        assert main(["solve", graph_file, "--window", "64", "--adaptive"]) == 0
        assert "omega=7" in capsys.readouterr().out

    def test_solve_oom_exit_code(self, capsys):
        code = main(
            ["solve", "fb-comm-20x130", "--heuristic", "none", "--memory-mib", "2"]
        )
        assert code == 2
        assert "OOM" in capsys.readouterr().out

    def test_unknown_graph(self):
        with pytest.raises(SystemExit):
            main(["solve", "definitely-not-a-graph"])

    def test_solve_json(self, graph_file, capsys):
        import json

        assert main(["solve", graph_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clique_number"] == 7
        assert payload["num_maximum_cliques"] >= 1
        assert payload["heuristic"]["kind"] == "multi-degree"
        assert len(payload["cliques"][0]) == 7


class TestInfo:
    def test_info(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "degeneracy" in out
        assert "prunability" in out

    def test_info_no_triangles(self, graph_file, capsys):
        assert main(["info", graph_file, "--no-triangles"]) == 0
        assert "triangles" not in capsys.readouterr().out


class TestDatasets:
    def test_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "road-grid-60" in out
        assert out.count("\n") == 58

    def test_category_filter(self, capsys):
        assert main(["datasets", "--category", "road"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 8


class TestCompare:
    def test_compare(self, graph_file, capsys):
        assert main(["compare", graph_file]) == 0
        out = capsys.readouterr().out
        assert "breadth-first" in out
        assert "PMC" in out
        assert "warp-parallel" in out
        assert "disagree" not in out

    def test_compare_covers_every_problem_kind(self, graph_file, capsys):
        # exit 0 means every kind row agreed with its CPU oracle
        assert main(["compare", graph_file]) == 0
        out = capsys.readouterr().out
        assert "k-clique-count (k=3)" in out
        assert "maximal-enum" in out
        assert "CPU oracle" in out
        assert "disagree" not in out

    def test_compare_k_flag_sets_the_count_row(self, graph_file, capsys):
        assert main(["compare", graph_file, "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "k-clique-count (k=4)" in out
        assert "disagree" not in out


class TestTrace:
    STAGES = ["csr_upload", "preprocess", "heuristic", "setup", "bfs"]

    def test_solve_trace_json(self, graph_file, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.json"
        assert main(["solve", graph_file, "--trace", str(trace_file)]) == 0
        assert f"wrote {trace_file}" in capsys.readouterr().out
        payload = json.loads(trace_file.read_text())
        assert payload["schema"] == "repro-trace/1"
        span_names = [s["name"] for s in payload["spans"]]
        for stage in self.STAGES:  # >= 1 span per pipeline stage
            assert span_names.count(stage) >= 1
        assert payload["kernels"], "expected per-kernel events"
        assert all(k["span"] in span_names for k in payload["kernels"])
        assert payload["counters"]["setup.kept_2cliques"] >= 0

    def test_solve_trace_chrome(self, graph_file, tmp_path):
        import json

        chrome_file = tmp_path / "trace.chrome.json"
        assert main(
            ["solve", graph_file, "--trace-chrome", str(chrome_file)]
        ) == 0
        payload = json.loads(chrome_file.read_text())
        events = payload["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert set(self.STAGES) <= names

    def test_trace_does_not_change_result(self, graph_file, tmp_path, capsys):
        import json

        assert main(["solve", graph_file, "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        trace_file = tmp_path / "t.json"
        assert main(
            ["solve", graph_file, "--json", "--trace", str(trace_file)]
        ) == 0
        traced = json.loads(capsys.readouterr().out)
        traced.pop("wall_time_s"), plain.pop("wall_time_s")
        assert traced == plain  # includes exact model_time_s

    def test_windowed_trace_spans(self, graph_file, tmp_path):
        import json

        trace_file = tmp_path / "trace.json"
        assert main(
            ["solve", graph_file, "--window", "64", "--trace", str(trace_file)]
        ) == 0
        span_names = [
            s["name"] for s in json.loads(trace_file.read_text())["spans"]
        ]
        assert "windowed" in span_names
        assert "bfs" not in span_names

    def test_compare_shares_one_trace(self, graph_file, tmp_path):
        import json

        trace_file = tmp_path / "trace.json"
        assert main(["compare", graph_file, "--trace", str(trace_file)]) == 0
        payload = json.loads(trace_file.read_text())
        names = {s["name"] for s in payload["spans"]}
        assert {"bfs", "pmc.search", "gpu_dfs.search"} <= names

    def test_trace_written_on_oom(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.json"
        code = main(
            [
                "solve", "fb-comm-20x130", "--heuristic", "none",
                "--memory-mib", "2", "--trace", str(trace_file),
            ]
        )
        assert code == 2
        payload = json.loads(trace_file.read_text())  # partial trace
        assert payload["kernels"]


class TestLogLevel:
    def test_debug_shows_stage_breakdown(self, graph_file, capsys):
        assert main(["--log-level", "debug", "solve", graph_file]) == 0
        assert "stages:" in capsys.readouterr().out

    def test_default_hides_stage_breakdown(self, graph_file, capsys):
        assert main(["solve", graph_file]) == 0
        assert "stages:" not in capsys.readouterr().out

    def test_error_level_silences_info(self, graph_file, capsys):
        assert main(["--log-level", "error", "solve", graph_file]) == 0
        assert capsys.readouterr().out == ""
