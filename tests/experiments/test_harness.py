"""Experiment harness tests on a small suite slice."""

import pytest

from repro.core.config import Heuristic, SolverConfig
from repro.datasets.suite import SUITE, load
from repro.experiments.harness import (
    EVAL_SPEC,
    best_run,
    heuristic_probe,
    pmc_reference,
    run_config,
    sweep_heuristics,
)
from repro.gpusim.spec import DeviceSpec

SMALL = SUITE[0]  # road-grid-60: fast under every configuration


@pytest.fixture(scope="module")
def small_graph():
    return load(SMALL.name)


class TestRunConfig:
    def test_ok_outcome_filled(self, small_graph):
        rec = run_config(SMALL, small_graph, SolverConfig())
        assert rec.ok
        assert rec.omega >= 3
        assert rec.model_time_s > 0
        assert rec.throughput_eps > 0
        assert rec.dataset == SMALL.name
        assert rec.config_label.startswith("multi-degree")

    def test_oom_outcome(self, small_graph):
        tiny = DeviceSpec(memory_bytes=64 * 1024)
        rec = run_config(SMALL, small_graph, SolverConfig(), device_spec=tiny)
        assert rec.outcome == "oom"
        assert not rec.ok
        assert rec.throughput_eps == 0.0

    def test_timeout_outcome(self, small_graph):
        rec = run_config(
            SMALL, small_graph, SolverConfig(), timeout_s=1e-4
        )
        assert rec.outcome == "timeout"

    def test_windowed_label(self, small_graph):
        rec = run_config(
            SMALL, small_graph, SolverConfig(window_size=1024)
        )
        assert "win=1024" in rec.config_label
        assert rec.windows >= 1


class TestSweepAndBest:
    def test_sweep_covers_all_heuristics(self, small_graph):
        recs = sweep_heuristics(SMALL, small_graph)
        assert [r.config_label for r in recs] == [
            "none",
            "single-degree",
            "single-core",
            "multi-degree",
            "multi-core",
        ]
        omegas = {r.omega for r in recs if r.ok}
        assert len(omegas) == 1  # all configurations agree on omega

    def test_best_run_picks_fastest(self, small_graph):
        recs = sweep_heuristics(SMALL, small_graph)
        best = best_run(recs)
        assert best is not None
        assert best.model_time_s == min(r.model_time_s for r in recs if r.ok)

    def test_best_run_none_when_all_fail(self):
        assert best_run([]) is None


class TestReferencesAndProbes:
    def test_pmc_reference_matches_solver(self, small_graph):
        ref = pmc_reference(SMALL)
        rec = run_config(SMALL, small_graph, SolverConfig())
        assert ref.clique_number == rec.omega

    def test_heuristic_probe(self, small_graph):
        probe = heuristic_probe(SMALL, small_graph, Heuristic.MULTI_DEGREE)
        assert probe.lower_bound >= 2
        assert probe.model_time_s > 0
        assert 0.0 <= probe.setup_pruned_fraction <= 1.0

    def test_probe_core_variant_costs_more(self, small_graph):
        deg = heuristic_probe(SMALL, small_graph, Heuristic.SINGLE_DEGREE)
        core = heuristic_probe(SMALL, small_graph, Heuristic.SINGLE_CORE)
        # the k-core decomposition makes core variants slower (Fig. 5a)
        assert core.model_time_s > deg.model_time_s
