"""Smoke tests for table/figure generators on a tiny suite slice.

Full-suite shape assertions live in the benchmark harness; here we
check the machinery end-to-end on the smallest datasets.
"""

import pytest

from repro.experiments.figures import figure2, figure3, figure4, figure5, figure6
from repro.experiments.tables import table1, table2

# the smallest few datasets keep this fast; sweeps are lru_cached so
# the cost is paid once per session
LIMIT = dict(max_edges=9_000, timeout_s=60.0)


class TestTable1:
    def test_rows_and_render(self):
        t = table1(**LIMIT)
        assert t.total >= 4
        names = [row[0] for row in t.rows]
        assert names[:5] == [
            "none", "single-degree", "single-core", "multi-degree", "multi-core",
        ]
        assert names[-1] == "rossi-pmc"
        out = t.render()
        assert "Mean Error" in out

    def test_error_ordering_multi_beats_single(self):
        t = table1(**LIMIT)
        by = t.by_heuristic()
        assert by["multi-degree"][0] <= by["single-degree"][0]
        assert by["none"][0] >= by["multi-degree"][0]

    def test_errors_in_unit_range(self):
        t = table1(**LIMIT)
        for _, err, solved, oom in t.rows:
            assert 0.0 <= err <= 1.0
            assert 0.0 <= oom <= 1.0
            assert 0 <= solved <= t.total


class TestTable2:
    def test_groups_partition_suite(self):
        t1 = table1(**LIMIT)
        t2 = table2(**LIMIT)
        assert sum(t2.group_sizes.values()) <= t1.total
        out = t2.render()
        assert "Baseline" in out

    def test_cells_positive(self):
        t2 = table2(**LIMIT)
        for row in t2.cells.values():
            for v in row.values():
                if v == v:  # not NaN
                    assert v > 0


class TestFigures:
    def test_figure2_rows(self):
        fig = figure2(**LIMIT)
        assert len(fig.rows) >= 4
        assert "Spearman" in fig.render()

    def test_figure3_rows(self):
        fig = figure3(**LIMIT)
        xs = [x for _, x, _, _ in fig.rows]
        assert min(x for x in xs) > 0

    def test_figure4_speedups(self):
        fig = figure4(**LIMIT)
        assert len(fig.rows) >= 4
        assert fig.bf_geomean > 0
        assert "geo-mean BF speedup" in fig.render()

    def test_figure5_panels(self):
        fig = figure5(**LIMIT)
        assert len(fig.runtime_rows) >= 4
        assert len(fig.quality_rows) >= 16  # 4 heuristics x >=4 datasets
        for _, _, acc, pruned in fig.quality_rows:
            assert 0.0 <= acc <= 1.0
            assert 0.0 <= pruned <= 1.0
        fig.render()

    def test_figure6_memory(self):
        fig = figure6(**LIMIT)
        assert len(fig.rows) >= 3
        for w in (1024, 32768):
            red = fig.mean_reduction(w)
            assert red == red  # defined
            assert red <= 1.0
        fig.render()

    def test_figure6_runtime_cost(self):
        fig = figure6(**LIMIT)
        # windowing never speeds things up on average (Section V-C2)
        g = fig.runtime_geomean(1024)
        assert g == g and g <= 1.2
