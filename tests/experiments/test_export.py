"""Result-export round trips."""

import csv
import json

import pytest

from repro.core.config import SolverConfig
from repro.datasets.suite import SUITE, load
from repro.experiments.export import (
    figure_to_csv,
    run_record_dicts,
    run_records_to_csv,
    table1_to_csv,
    table2_to_csv,
    to_json,
)
from repro.experiments.figures import figure2, figure4, figure6
from repro.experiments.harness import run_config
from repro.experiments.tables import table1, table2

TINY = dict(max_edges=9_000, timeout_s=60.0)


@pytest.fixture(scope="module")
def records():
    spec = SUITE[0]
    graph = load(spec.name)
    return [run_config(spec, graph, SolverConfig())]


class TestRunRecords:
    def test_dicts(self, records):
        d = run_record_dicts(records)[0]
        assert d["dataset"] == SUITE[0].name
        assert d["outcome"] == "ok"

    def test_csv_round_trip(self, records, tmp_path):
        path = tmp_path / "runs.csv"
        run_records_to_csv(records, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["dataset"] == SUITE[0].name
        assert float(rows[0]["model_time_s"]) > 0

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        run_records_to_csv([], path)
        assert path.read_text() == ""

    def test_json(self, records, tmp_path):
        path = tmp_path / "runs.json"
        to_json(records, path)
        data = json.loads(path.read_text())
        assert data[0]["dataset"] == SUITE[0].name


class TestTableExports:
    def test_table1_csv(self, tmp_path):
        t = table1(**TINY)
        path = tmp_path / "t1.csv"
        table1_to_csv(t, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert {r["heuristic"] for r in rows} >= {"none", "multi-degree"}

    def test_table2_csv(self, tmp_path):
        t = table2(**TINY)
        path = tmp_path / "t2.csv"
        table2_to_csv(t, path)
        text = path.read_text()
        assert "baseline" in text


class TestFigureExports:
    def test_throughput_figure(self, tmp_path):
        fig = figure2(**TINY)
        path = tmp_path / "fig2.csv"
        figure_to_csv(fig, path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][1] == "avg_degree"
        assert len(rows) == len(fig.rows) + 1

    def test_speedup_figure(self, tmp_path):
        fig = figure4(**TINY)
        figure_to_csv(fig, tmp_path / "fig4.csv")

    def test_window_figure(self, tmp_path):
        fig = figure6(**TINY)
        figure_to_csv(fig, tmp_path / "fig6.csv")
