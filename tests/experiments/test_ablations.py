"""Ablation runner tests on a tiny suite slice."""

import pytest

from repro.experiments.ablations import (
    coloring_preprune_ablation,
    orientation_ablation,
    sublist_order_ablation,
    window_fanout_ablation,
)

TINY = dict(max_edges=9_000, limit=4, timeout_s=60.0)


class TestOrientationAblation:
    def test_runs_and_agrees(self):
        r = orientation_ablation(**TINY)
        assert r.arms == ("degree", "index")
        assert len(r.rows) == 4
        for _, recs in r.rows:
            omegas = {rec.omega for rec in recs.values() if rec.ok}
            assert len(omegas) == 1

    def test_degree_orientation_prunes_at_least_as_much(self):
        r = orientation_ablation(**TINY)
        for recs in r.agreeing_rows():
            assert (
                recs["degree"].pruned_fraction
                >= recs["index"].pruned_fraction - 1e-9
            )

    def test_render(self):
        r = orientation_ablation(**TINY)
        out = r.render()
        assert "Ablation" in out and "degree" in out


class TestOtherAblations:
    def test_sublist_order(self):
        r = sublist_order_ablation(**TINY)
        assert len(r.agreeing_rows()) >= 3
        ratio = r.geomean_time_ratio("degree-sorted", "natural")
        assert 0.3 < ratio < 3.0

    def test_coloring_preprune(self):
        r = coloring_preprune_ablation(**TINY)
        for recs in r.agreeing_rows():
            assert (
                recs["colored"].pruned_fraction
                >= recs["plain"].pruned_fraction - 1e-9
            )

    def test_window_fanout(self):
        r = window_fanout_ablation(**TINY)
        assert len(r.agreeing_rows()) >= 3
        # concurrency is never slower in model time
        ratio = r.geomean_time_ratio("fanout-8", "fanout-1")
        assert ratio <= 1.01
