"""Report/statistics utility tests."""

import math

import numpy as np
import pytest

from repro.experiments.report import (
    format_bytes,
    format_time,
    geometric_mean,
    render_series,
    render_table,
    spearman,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["name", "value"], [("a", 1.5), ("long-name", 22)], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_float_formatting(self):
        out = render_table(["x"], [(0.000123,)])
        assert "0.000123" in out

    def test_nan_rendering(self):
        out = render_table(["x"], [(float("nan"),)])
        assert "nan" in out


class TestRenderSeries:
    def test_basic(self):
        out = render_series("f", [1, 2], [10.0, 20.0], "x", "y")
        assert "f" in out
        assert out.count("\n") == 2

    def test_max_points(self):
        out = render_series("f", list(range(100)), list(range(100)), max_points=5)
        assert out.count("\n") == 5


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_ignores_nonpositive_and_nonfinite(self):
        assert geometric_mean([2, 0, -1, float("inf"), 8]) == pytest.approx(4.0)

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        r = spearman([1, 1, 2, 3], [5, 5, 6, 7])
        assert r == pytest.approx(1.0)

    def test_nonmonotone_in_between(self):
        r = spearman([1, 2, 3, 4], [1, 3, 2, 4])
        assert -1.0 < r < 1.0

    def test_degenerate(self):
        assert math.isnan(spearman([1], [2]))
        assert math.isnan(spearman([1, 1], [2, 2]))


class TestFormatters:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert "MiB" in format_bytes(5 * 2**20)

    def test_time(self):
        assert "us" in format_time(5e-6)
        assert "ms" in format_time(5e-3)
        assert format_time(2.5) == "2.50 s"
