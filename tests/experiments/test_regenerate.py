"""Regeneration CLI tests (tiny suite slice)."""

import io

import pytest

from repro.experiments.regenerate import main, regenerate


class TestRegenerate:
    def test_report_contains_all_artifacts(self):
        buf = io.StringIO()
        regenerate(max_edges=9_000, timeout_s=60.0, out=buf)
        text = buf.getvalue()
        for marker in (
            "Table I",
            "Table II",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "total regeneration time",
        ):
            assert marker in text, marker

    def test_main_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        code = main(
            ["--max-edges", "9000", "--timeout", "60", "--out", str(out)]
        )
        assert code == 0
        assert "Table I" in out.read_text()
        # also streamed to stdout
        assert "Table I" in capsys.readouterr().out
