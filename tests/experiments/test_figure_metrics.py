"""Unit tests for the figure classes' statistics on synthetic rows.

These exercise the metric logic (correlations, geo-means, medians)
without running any sweeps, so the properties the benchmark
assertions lean on are themselves tested.
"""

import math

import numpy as np
import pytest

from repro.experiments.figures import SpeedupFigure, ThroughputFigure, WindowFigure


def make_throughput(rows, meta=None):
    fig = ThroughputFigure(x_label="avg_degree")
    fig.rows = rows
    fig.meta = meta or []
    return fig


class TestThroughputFigure:
    def test_bf_correlation_ignores_failures(self):
        fig = make_throughput(
            [
                ("a", 1.0, 10.0, 0.0),
                ("b", 2.0, 20.0, 0.0),
                ("c", 3.0, 0.0, 0.0),  # OOM row excluded
            ]
        )
        assert fig.bf_correlation == pytest.approx(1.0)

    def test_size_adjusted_recovers_hidden_degree_effect(self):
        # throughput = |E| / degree: raw degree correlation is masked
        # by the size spread, the size-adjusted one is perfectly -1
        rng = np.random.default_rng(0)
        rows, meta = [], []
        for i in range(30):
            edges = int(10 ** rng.uniform(3, 6))
            degree = float(rng.uniform(2, 100))
            tput = edges / degree
            rows.append((f"g{i}", degree, tput, 0.0))
            meta.append((f"g{i}", degree, edges))
        fig = make_throughput(rows, meta)
        assert fig.size_adjusted_degree_correlation("bf") < -0.95

    def test_size_adjusted_nan_when_too_few(self):
        fig = make_throughput(
            [("a", 1.0, 10.0, 0.0)], [("a", 1.0, 100)]
        )
        assert math.isnan(fig.size_adjusted_degree_correlation("bf"))

    def test_render_with_and_without_meta(self):
        fig = make_throughput([("a", 1.0, 10.0, 5.0)])
        assert "size-adjusted" not in fig.render()
        fig.meta = [("a", 1.0, 100)]
        assert "size-adjusted" in fig.render()


class TestSpeedupFigure:
    def test_geomeans_and_split(self):
        fig = SpeedupFigure()
        fig.rows = [
            ("low1", 2.0, 4.0, 1.0),
            ("low2", 3.0, 4.0, 1.0),
            ("low3", 4.0, 4.0, 1.0),  # the median row joins the low half
            ("high1", 50.0, 0.25, 0.1),
            ("high2", 60.0, 0.25, 0.1),
        ]
        assert fig.bf_geomean == pytest.approx((4 ** 3 * 0.25 ** 2) ** 0.2)
        assert fig.low_degree_geomean == pytest.approx(4.0)
        assert fig.high_degree_geomean == pytest.approx(0.25)

    def test_failed_rows_excluded(self):
        fig = SpeedupFigure()
        fig.rows = [("a", 1.0, 2.0, 0.0), ("b", 2.0, 0.0, 0.0)]
        assert fig.bf_geomean == pytest.approx(2.0)

    def test_render(self):
        fig = SpeedupFigure()
        fig.rows = [("a", 1.0, 2.0, 0.0)]
        out = fig.render()
        assert "2.00x" in out and "OOM" in out


class TestWindowFigure:
    def test_reduction_and_runtime(self):
        fig = WindowFigure()
        fig.rows = [
            ("a", 1000.0, {64: 100.0, 1024: 800.0}, {64: 0.5, 1024: 0.9}),
            ("b", 2000.0, {64: 400.0, 1024: 1800.0}, {64: 0.4, 1024: 0.8}),
        ]
        assert fig.mean_reduction(64) == pytest.approx((0.9 + 0.8) / 2)
        assert fig.mean_reduction(1024) == pytest.approx((0.2 + 0.1) / 2)
        assert fig.runtime_geomean(64) == pytest.approx(
            math.sqrt(0.5 * 0.4)
        )

    def test_missing_window_is_nan(self):
        fig = WindowFigure()
        fig.rows = [("a", 100.0, {}, {})]
        assert math.isnan(fig.mean_reduction(64))
        assert math.isnan(fig.runtime_geomean(64))

    def test_render_with_orderings(self):
        fig = WindowFigure()
        fig.rows = [("a", 1000.0, {64: 100.0}, {64: 0.5})]
        fig.ordering_mem = {"natural": 100.0, "desc-degree": 200.0}
        out = fig.render()
        assert "ordering peak-memory" in out
