"""Shared fixtures for the cluster-tier tests.

Backends are real :class:`ServerThread` servers on ephemeral ports;
the router is a :class:`RouterThread` in the same process, so chaos
tests can kill a backend (transport aborts -- observably identical to
a SIGKILL'd process) and read the router's counters directly.
``FakeBackend`` is a minimal scripted peer for wire edge cases a real
server would never produce (mismatching hello adverts, permanent
``draining`` rejects).
"""

import json
import socket
import socketserver
import threading
import time

import pytest

from repro.cluster import RouterConfig, RouterThread
from repro.server import ServerConfig, ServerThread, SolveClient, protocol
from repro.service import SolveService

from tests.server.conftest import RawConn  # noqa: F401  (re-exported fixture dep)

#: aggressive timings so chaos tests converge in well under a second
FAST = dict(
    probe_interval_s=0.05,
    probe_timeout_s=2.0,
    checkpoint_poll_s=0.02,
    down_threshold=2,
)


class SlowWindowService(SolveService):
    """A service whose every completed window sleeps on the host.

    Deterministic slowness for the failover tests: the solve takes
    ``window_delay_s`` x windows of wall time, and every window ships
    a checkpoint through the bridge sink, so the router's poll loop is
    guaranteed material to fetch before the kill.
    """

    def __init__(self, window_delay_s, **kwargs):
        super().__init__(**kwargs)
        self._window_delay_s = window_delay_s

    def submit(self, request):
        sink = request.checkpoint_sink
        if sink is not None:
            def slow_sink(ckpt, _sink=sink):
                time.sleep(self._window_delay_s)
                _sink(ckpt)

            request.checkpoint_sink = slow_sink
        return super().submit(request)


@pytest.fixture
def make_backend():
    """Factory for backend servers; stopped (best effort) at teardown."""
    handles = []

    def _make(service=None, config=None, **service_kwargs):
        if service is None:
            service = SolveService(**service_kwargs)
        if config is None:
            config = ServerConfig(port=0)
        handle = ServerThread(service, config)
        handles.append(handle)
        return handle.start()

    yield _make
    for handle in handles:
        handle.stop(timeout_s=10.0)


@pytest.fixture
def make_router():
    """Factory for routers over started backends (fast test timings)."""
    handles = []

    def _make(backends, **overrides):
        addrs = [
            ("127.0.0.1", b.port if hasattr(b, "port") else b[1])
            for b in backends
        ]
        kwargs = dict(FAST)
        kwargs.update(overrides)
        handle = RouterThread(
            RouterConfig(backends=addrs, port=0, **kwargs)
        )
        handles.append(handle)
        return handle.start()

    yield _make
    for handle in handles:
        handle.stop(timeout_s=10.0)


@pytest.fixture
def make_client():
    clients = []

    def _make(handle_or_port, **kwargs):
        port = getattr(handle_or_port, "port", handle_or_port)
        kwargs.setdefault("retries", 3)
        kwargs.setdefault("timeout_s", 60.0)
        kwargs.setdefault("backoff_s", 0.05)
        client = SolveClient(port=port, **kwargs)
        clients.append(client)
        return client

    yield _make
    for client in clients:
        client.close()


@pytest.fixture
def raw_conn():
    """RawConn factory (same contract as the server suite's fixture)."""
    conns = []

    def _make(handle_or_port, **kwargs):
        port = getattr(handle_or_port, "port", handle_or_port)
        conn = RawConn(port, **kwargs)
        conns.append(conn)
        return conn

    yield _make
    for conn in conns:
        conn.close()


class _FakeHandler(socketserver.StreamRequestHandler):
    def handle(self):
        script = self.server.script
        while True:
            line = self.rfile.readline()
            if not line:
                return
            try:
                frame = json.loads(line.decode("utf-8"))
            except ValueError:
                return
            reply = script(frame)
            if reply is None:
                return
            self.wfile.write(protocol.encode_frame(reply))
            self.wfile.flush()


class FakeBackend:
    """A scripted ``repro-wire/1`` peer for protocol edge cases.

    ``script(frame) -> reply frame`` decides every answer; the default
    answers hellos (with a configurable ``problems`` advert) and
    status probes, and rejects solves with a retriable ``draining``.
    """

    def __init__(self, problems=None, solve_reply=None):
        self.problems = (
            list(protocol.SUPPORTED_PROBLEMS) if problems is None else problems
        )
        self.solve_reply = solve_reply
        self.server = socketserver.ThreadingTCPServer(
            ("127.0.0.1", 0), _FakeHandler
        )
        self.server.daemon_threads = True
        self.server.script = self._script
        self.port = self.server.server_address[1]
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    def _script(self, frame):
        ftype = frame.get("type")
        if ftype == "hello":
            return {
                "type": "hello",
                "protocol": protocol.PROTOCOL,
                "server": "fake/0",
                "max_frame_bytes": protocol.MAX_FRAME_BYTES,
                "problems": self.problems,
            }
        if ftype == "status":
            return {
                "type": "status",
                "id": frame.get("id"),
                "state": "unknown",
            }
        if ftype == "checkpoint":
            return {
                "type": "checkpoint",
                "id": frame.get("id"),
                "state": "unknown",
                "checkpoint": None,
            }
        if ftype == "solve":
            if self.solve_reply is not None:
                return self.solve_reply(frame)
            return protocol.error_frame(
                "draining",
                "fake backend is draining",
                request_id=frame.get("id"),
                retry_after_s=0.01,
            )
        return protocol.error_frame("unknown_type", f"fake: {ftype!r}")

    def close(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture
def fake_backend():
    fakes = []

    def _make(**kwargs):
        fake = FakeBackend(**kwargs)
        fakes.append(fake)
        return fake

    yield _make
    for fake in fakes:
        fake.close()


def wait_until(predicate, timeout_s=20.0, interval_s=0.01, message="condition"):
    """Poll ``predicate`` until true; raise on timeout."""
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(interval_s)


def free_port():
    """An OS-assigned TCP port that nothing is listening on."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
