"""Streaming sessions through the cluster tier.

The router pins each session to one backend by consistent-hashing the
session id, forwards open/mutate/close as ordinary request/reply
traffic, and relays subscriptions over a dedicated passthrough
connection. A dead backend turns its pinned sessions into
non-retriable ``session_lost`` errors -- resident graph state dies
with the process that held it -- and the session id becomes reusable
the moment a new open succeeds elsewhere.
"""

import threading

import pytest

from repro.errors import ServerError
from repro.graph import from_edge_list
from repro.server import SolveClient

from .conftest import wait_until

TRIANGLE_EDGES = [(0, 1), (1, 2), (0, 2), (2, 3)]


def triangle():
    return from_edge_list(TRIANGLE_EDGES)


class TestRoutedSessions:
    def test_open_mutate_close_through_router(self, make_backend,
                                              make_router, make_client):
        backends = [make_backend(), make_backend()]
        router = make_router(backends)
        client = make_client(router)
        opened = client.open_session(triangle(), session="r1")
        assert opened["epoch"] == 0 and opened["omega"] == 3
        mutated = client.mutate("r1", insert=[(0, 3), (1, 3)])
        assert mutated["epoch"] == 1 and mutated["omega"] == 4
        closed = client.close_session("r1")
        assert closed["epoch"] == 1

    def test_hello_advertises_streaming(self, make_backend, make_router,
                                        make_client):
        router = make_router([make_backend()])
        hello = make_client(router).connect()
        assert hello["streaming"] is True

    def test_session_pins_to_exactly_one_backend(self, make_backend,
                                                 make_router, make_client):
        backends = [make_backend(), make_backend()]
        router = make_router(backends)
        client = make_client(router)
        for i in range(4):
            client.open_session(triangle(), session=f"pin-{i}")
            client.mutate(f"pin-{i}", insert=[(0, 3)])
        stats = client.stats()
        assert stats["router"]["sessions_pinned"] == 4
        # every session lives on exactly one backend; the four spread
        # per the ring, their sum is exact
        per_backend = []
        for backend in backends:
            with SolveClient(port=backend.port, timeout_s=30.0) as direct:
                per_backend.append(
                    direct.stats()["server"]["sessions_open"]
                )
        assert sum(per_backend) == 4

    def test_mutations_follow_the_pin(self, make_backend, make_router,
                                      make_client):
        backends = [make_backend(), make_backend()]
        router = make_router(backends)
        client = make_client(router)
        client.open_session(triangle(), session="sticky")
        for i in range(5):
            client.mutate("sticky", insert=[(0, 4 + i)])
        # exactly one backend saw the session; its epoch is 5
        epochs = []
        for backend in backends:
            sessions = backend.server.sessions
            if "sticky" in sessions:
                epochs.append(sessions.get("sticky").epoch)
        assert epochs == [5]

    def test_subscribe_relays_through_router(self, make_backend,
                                             make_router, make_client):
        router = make_router([make_backend(), make_backend()])
        opener = make_client(router)
        opener.open_session(triangle(), session="sub1")

        frames = []
        done = threading.Event()

        def watch():
            watcher = SolveClient(port=router.port, timeout_s=30.0)
            try:
                for frame in watcher.subscribe("sub1"):
                    frames.append(frame)
                    if frame.get("closed"):
                        break
            finally:
                watcher.close()
                done.set()

        thread = threading.Thread(target=watch, daemon=True)
        thread.start()
        wait_until(lambda: frames, message="snapshot through the router")
        opener.mutate("sub1", insert=[(0, 3), (1, 3)])
        opener.close_session("sub1")
        assert done.wait(timeout=30.0), "close never reached the subscriber"
        epochs = [f["epoch"] for f in frames]
        assert epochs[0] == 0 and epochs[-1] == 1
        assert all(a <= b for a, b in zip(epochs, epochs[1:]))
        assert frames[-1]["closed"] is True
        counters = opener.stats()["router"]
        assert counters["sessions.updates_relayed"] >= len(frames)

    def test_duplicate_open_replays_through_router(self, make_backend,
                                                   make_router, raw_conn):
        from repro.server import protocol

        router = make_router([make_backend()])
        conn = raw_conn(router)
        conn.hello()
        frame = {"type": "open-session", "id": "rq-o", "request_id": "rq-o",
                 "session": "dup", "graph": protocol.encode_graph(triangle())}
        conn.send(frame)
        first = conn.recv()
        assert first["type"] == "session-opened"
        conn.send(frame)
        replay = conn.recv()
        assert replay["type"] == "session-opened"
        assert replay["fingerprint"] == first["fingerprint"]


class TestSessionLoss:
    def test_dead_backend_turns_pins_into_session_lost(self, make_backend,
                                                       make_router,
                                                       make_client):
        backends = [make_backend(), make_backend()]
        router = make_router(backends)
        client = make_client(router)
        client.open_session(triangle(), session="doomed")
        # find and kill the backend holding the session
        victim = next(
            b for b in backends if "doomed" in b.server.sessions
        )
        victim.kill()
        wait_until(
            lambda: not router.router.health[
                f"127.0.0.1:{victim.port}"].available,
            message="router noticing the dead backend",
        )
        with pytest.raises(ServerError) as exc_info:
            client.mutate("doomed", insert=[(0, 3)], deadline_s=30.0)
        assert exc_info.value.code == "session_lost"
        assert not exc_info.value.retriable
        assert client.stats()["router"]["sessions_lost"] >= 1

    def test_lost_session_id_reopens_on_survivor(self, make_backend,
                                                 make_router, make_client):
        backends = [make_backend(), make_backend()]
        router = make_router(backends)
        client = make_client(router)
        client.open_session(triangle(), session="phoenix")
        victim = next(
            b for b in backends if "phoenix" in b.server.sessions
        )
        survivor = next(b for b in backends if b is not victim)
        victim.kill()
        wait_until(
            lambda: not router.router.health[
                f"127.0.0.1:{victim.port}"].available,
            message="router noticing the dead backend",
        )
        with pytest.raises(ServerError):
            client.mutate("phoenix", insert=[(0, 3)], deadline_s=30.0)
        # a fresh open of the same id is legal: it pins to the survivor
        # (the client's open retries absorb any transient no_backend)
        reopened = client.open_session(triangle(), session="phoenix")
        assert reopened["epoch"] == 0
        assert "phoenix" in survivor.server.sessions
        mutated = client.mutate("phoenix", insert=[(0, 3), (1, 3)])
        assert mutated["omega"] == 4

    def test_subscriber_sees_session_lost_on_backend_death(self, make_backend,
                                                           make_router,
                                                           make_client,
                                                           raw_conn):
        backends = [make_backend(), make_backend()]
        router = make_router(backends)
        client = make_client(router)
        client.open_session(triangle(), session="watched")
        victim = next(
            b for b in backends if "watched" in b.server.sessions
        )
        conn = raw_conn(router)
        conn.hello()
        conn.send({"type": "subscribe", "id": "sub-1", "session": "watched"})
        snapshot = conn.recv()
        assert snapshot["type"] == "update" and snapshot["epoch"] == 0
        victim.kill()
        # the passthrough pipe hits EOF and reports the loss in-band
        lost = conn.recv()
        assert lost["type"] == "error"
        assert lost["code"] == "session_lost"
        assert lost["retriable"] is False

    def test_unknown_vs_lost_error_codes(self, make_backend, make_router,
                                         make_client):
        backends = [make_backend(), make_backend()]
        router = make_router(backends)
        client = make_client(router)
        # never-opened id: unknown_session
        with pytest.raises(ServerError) as exc_info:
            client.mutate("never-was", insert=[(0, 1)])
        assert exc_info.value.code == "unknown_session"
        # lost id: session_lost (tombstoned, not merely unknown)
        client.open_session(triangle(), session="was-here")
        victim = next(
            b for b in backends if "was-here" in b.server.sessions
        )
        victim.kill()
        wait_until(
            lambda: not router.router.health[
                f"127.0.0.1:{victim.port}"].available,
            message="router noticing the dead backend",
        )
        with pytest.raises(ServerError) as exc_info:
            client.mutate("was-here", insert=[(0, 1)], deadline_s=30.0)
        assert exc_info.value.code == "session_lost"
