"""The cluster with *every* backend dead: stats, rejects, status CLI.

PR-7 proved single-backend loss fails over; this suite pins down the
terminal case. A router whose whole backend set is unreachable must
stay up and answer ``stats`` (the health board is most valuable
exactly when everything is down), reject solves with the retriable
``no_backend`` error, and render all of it through
``repro cluster-status`` with documented exit codes.
"""

import json

import pytest

from repro import cli
from repro.errors import ServerError

from .conftest import free_port, wait_until


@pytest.fixture(scope="module")
def community():
    from repro.graph import generators as gen

    return gen.caveman_social(5, 30, p_in=0.35, seed=3)


@pytest.fixture
def dead_cluster(make_router):
    """A router over two ports nothing listens on, already marked DOWN."""
    ports = [free_port(), free_port()]
    router = make_router([("127.0.0.1", p) for p in ports])
    wait_until(
        lambda: all(not h.available for h in router.router.health.values()),
        message="all backends marked down",
    )
    return router, ports


class TestRouterAllDown:
    def test_stats_answer_with_zero_available(self, dead_cluster,
                                              make_client):
        router, ports = dead_cluster
        stats = make_client(router).stats()
        assert stats["router"]["backends_available"] == 0
        assert stats["router"]["backends_total"] == 2
        # the health board still lists every backend, each DOWN
        assert set(stats["backends"]) == {
            f"127.0.0.1:{p}" for p in ports
        }
        for backend in stats["backends"].values():
            assert backend["health"]["state"] == "down"
            assert not backend.get("connected")

    def test_solve_rejected_no_backend_retriable(self, dead_cluster,
                                                 make_client, community):
        router, _ = dead_cluster
        client = make_client(router, retries=0)
        with pytest.raises(ServerError) as excinfo:
            client.solve(community)
        assert excinfo.value.code == "no_backend"
        assert excinfo.value.retriable is True
        assert router.router.stats.get("rejects.no_backend") >= 1

    def test_recovers_when_a_backend_appears(self, dead_cluster,
                                             make_backend, make_client,
                                             community):
        """A backend born *after* the router still gets adopted."""
        router, ports = dead_cluster
        from repro.server import ServerConfig

        backend = make_backend(config=ServerConfig(port=ports[0]))
        wait_until(
            lambda: router.router.health[
                f"127.0.0.1:{backend.port}"].available,
            message="late backend adopted",
        )
        reply = make_client(router).solve(community)
        assert reply["record"]["status"] == "ok"


class TestClusterStatusCLI:
    def test_renders_all_down_board(self, dead_cluster, capsys):
        router, ports = dead_cluster
        rc = cli.main(["cluster-status", "--port", str(router.port)])
        assert rc == 0  # rendering a dead cluster is a *successful* query
        captured = capsys.readouterr().out
        assert "0/2 backend(s) available" in captured
        for port in ports:
            assert f"127.0.0.1:{port}" in captured
        assert captured.count("down") >= 2

    def test_json_mode_round_trips(self, dead_cluster, capsys):
        router, _ = dead_cluster
        rc = cli.main(["cluster-status", "--port", str(router.port),
                       "--json"])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["router"]["backends_available"] == 0
        assert all(b["health"]["state"] == "down"
                   for b in stats["backends"].values())

    def test_unreachable_router_exits_nonzero(self, capsys):
        rc = cli.main(["cluster-status", "--port", str(free_port()),
                       "--retries", "0", "--wait", "5"])
        assert rc == 1
        assert "error" in capsys.readouterr().out

    def test_plain_server_is_not_a_router(self, make_backend, capsys):
        backend = make_backend()
        rc = cli.main(["cluster-status", "--port", str(backend.port)])
        assert rc == 1
        assert "not a router" in capsys.readouterr().out
