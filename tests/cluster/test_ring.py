"""Consistent-hash ring invariants."""

import pytest

from repro.cluster import HashRing

NODES = ["10.0.0.1:7421", "10.0.0.2:7421", "10.0.0.3:7421"]
KEYS = [f"graph-{i}/cfg-{i % 7}" for i in range(400)]


class TestPlacement:
    def test_deterministic_across_instances(self):
        a = HashRing(NODES, replicas=32)
        b = HashRing(list(reversed(NODES)), replicas=32)
        for key in KEYS:
            assert a.node_for(key) == b.node_for(key)
            assert a.preference(key) == b.preference(key)

    def test_preference_covers_all_nodes_once(self):
        ring = HashRing(NODES, replicas=16)
        for key in KEYS[:50]:
            pref = ring.preference(key)
            assert sorted(pref) == sorted(NODES)
            assert pref[0] == ring.node_for(key)

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(NODES, replicas=64)
        spread = ring.spread(KEYS)
        assert sum(spread.values()) == len(KEYS)
        # with 64 vnodes each node should own a sizeable share
        for name, count in spread.items():
            assert count > len(KEYS) // 10, (name, spread)

    def test_single_node_owns_everything(self):
        ring = HashRing(["only:1"], replicas=8)
        assert ring.spread(KEYS) == {"only:1": len(KEYS)}


class TestStability:
    def test_removing_a_node_only_remaps_its_keys(self):
        """The consistent-hashing property the cache affinity rests on."""
        full = HashRing(NODES, replicas=64)
        smaller = HashRing(NODES[:-1], replicas=64)
        moved = 0
        for key in KEYS:
            before = full.node_for(key)
            after = smaller.node_for(key)
            if before == NODES[-1]:
                assert after in NODES[:-1]
                moved += 1
            else:
                # keys not owned by the removed node must not move
                assert after == before
        assert moved > 0

    def test_failover_order_matches_preference(self):
        """Skipping a down primary must land on preference()[1]."""
        ring = HashRing(NODES, replicas=32)
        for key in KEYS[:50]:
            pref = ring.preference(key)
            alive = [n for n in pref if n != pref[0]]
            assert alive[0] == pref[1]


class TestValidation:
    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            HashRing([])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a:1", "a:1"])

    def test_bad_replicas_rejected(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(["a:1"], replicas=0)
