"""Chaos tests: kill a backend mid-solve, watch the router recover.

``ServerThread.kill()`` aborts every transport of the backend without
any goodbye -- to the router it is indistinguishable from a SIGKILL'd
process. The acceptance bar (ISSUE.md): the client sees a normal
``ok`` result, byte-identical to a fault-free single-server run, and
for a resumable solve the router must have shipped a polled
``SearchCheckpoint`` to the replica (``failover.resumed``) rather than
restarting from scratch.
"""

import threading
import time

import pytest

from repro.service import SolveService

from .conftest import SlowWindowService, wait_until


class SlowStartService(SolveService):
    """Holds every submit on the host for ``delay_s`` before solving.

    A kill window for *non-checkpointable* kinds: the job is accepted
    (the router's link.request is pending) but no work has happened
    yet, so a clean restart on a replica is trivially correct.
    """

    def __init__(self, delay_s, **kwargs):
        super().__init__(**kwargs)
        self._delay_s = delay_s

    def submit(self, request):
        time.sleep(self._delay_s)
        return super().submit(request)


def solve_in_thread(client, graph, **kwargs):
    """Run client.solve on a thread; returns (thread, box)."""
    box = {}

    def _run():
        try:
            box["reply"] = client.solve(graph, **kwargs)
        except Exception as exc:  # surfaced by the caller's assert
            box["error"] = exc

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    return thread, box


def routed_backend(router, handles):
    """The handle of the single backend the router placed the job on."""
    owners = [
        h for h in handles
        if router.router.stats.get(f"routed.127.0.0.1:{h.port}") > 0
    ]
    assert len(owners) == 1, "expected exactly one placement"
    return owners[0]


@pytest.fixture(scope="module")
def community():
    from repro.graph import generators as gen

    return gen.caveman_social(6, 40, p_in=0.35, seed=3)


class TestCheckpointedFailover:
    def test_kill_backend_mid_solve_resumes_from_checkpoint(
        self, make_backend, make_router, make_client, community
    ):
        config = dict(window_size=16)
        # fault-free reference on a plain local service
        reference = SolveService().solve(community, **config)
        ref_rows = [[int(v) for v in row] for row in reference.result.cliques]

        backends = [
            make_backend(service=SlowWindowService(0.08)) for _ in range(2)
        ]
        router = make_router(backends)
        client = make_client(router, retries=0, timeout_s=120.0)
        thread, box = solve_in_thread(client, community, **config)

        # the poll loop must have shipped state *before* the kill, so
        # the failover genuinely resumes instead of restarting
        wait_until(
            lambda: router.router.stats.get("checkpoints.polled") >= 2,
            message="checkpoint polls before the kill",
        )
        victim = routed_backend(router, backends)
        victim.kill()

        thread.join(timeout=120.0)
        assert not thread.is_alive(), "solve never completed after the kill"
        assert "error" not in box, box.get("error")
        record = box["reply"]["record"]
        assert record["status"] == "ok"
        assert record["clique_number"] == reference.clique_number
        assert record["num_maximum_cliques"] == reference.num_maximum_cliques
        # byte-identical witnesses: the replica resumed the same
        # deterministic search, it did not start a different one
        assert box["reply"]["cliques"] == ref_rows

        stats = router.router.stats
        assert stats.get("failover.total") >= 1
        assert stats.get("failover.resumed") >= 1
        assert stats.get("solves.resumed_ok") >= 1
        victim_name = f"127.0.0.1:{victim.port}"
        assert router.router.health[victim_name].state == "down"
        survivor = next(b for b in backends if b is not victim)
        assert stats.get(f"routed.127.0.0.1:{survivor.port}") >= 1

    def test_survivor_reports_shipped_resume(
        self, make_backend, make_router, make_client, community
    ):
        """The replica's own service counters prove it consumed the
        shipped checkpoint (resume accounting, not just a clean run)."""
        from repro.trace import CounterTracer

        services = [
            SlowWindowService(0.08, tracer=CounterTracer()) for _ in range(2)
        ]
        backends = [make_backend(service=s) for s in services]
        router = make_router(backends)
        client = make_client(router, retries=0, timeout_s=120.0)
        thread, box = solve_in_thread(client, community, window_size=16)
        wait_until(
            lambda: router.router.stats.get("checkpoints.polled") >= 2,
            message="checkpoint polls before the kill",
        )
        victim = routed_backend(router, backends)
        victim.kill()
        thread.join(timeout=120.0)
        assert box["reply"]["record"]["status"] == "ok"
        survivor_service = services[backends.index(
            next(b for b in backends if b is not victim)
        )]
        counters = survivor_service.tracer.counters_snapshot()
        assert counters.get("service.checkpoint.shipped_resumes", 0) >= 1


class TestCleanRestartFailover:
    def test_non_checkpointable_kind_restarts_cleanly(
        self, make_backend, make_router, make_client, community
    ):
        """maximal-enum has no checkpoint: failover restarts the solve
        on a replica and must not claim a resume."""
        reference = SolveService().solve(community, problem="maximal-enum")
        backends = [
            make_backend(service=SlowStartService(0.4)) for _ in range(2)
        ]
        router = make_router(backends)
        client = make_client(router, retries=0, timeout_s=120.0)
        thread, box = solve_in_thread(
            client, community, problem="maximal-enum"
        )
        wait_until(
            lambda: router.router.stats.get("routed.total") >= 1,
            message="placement before the kill",
        )
        victim = routed_backend(router, backends)
        victim.kill()
        thread.join(timeout=120.0)
        assert not thread.is_alive()
        assert "error" not in box, box.get("error")
        record = box["reply"]["record"]
        assert record["status"] == "ok"
        assert record["clique_number"] == reference.clique_number
        stats = router.router.stats
        assert stats.get("failover.total") >= 1
        assert stats.get("failover.resumed") == 0
        assert stats.get("solves.resumed_ok") == 0

    def test_all_backends_dead_is_a_clean_error(
        self, make_backend, make_router, make_client, community
    ):
        backends = [
            make_backend(service=SlowStartService(0.4)) for _ in range(2)
        ]
        router = make_router(backends)
        client = make_client(router, retries=0, timeout_s=120.0)
        thread, box = solve_in_thread(client, community)
        wait_until(
            lambda: router.router.stats.get("routed.total") >= 1,
            message="placement before the kills",
        )
        for backend in backends:
            backend.kill()
        thread.join(timeout=120.0)
        assert not thread.is_alive()
        error = box.get("error")
        assert error is not None, box.get("reply")
        assert getattr(error, "code", None) == "no_backend"
