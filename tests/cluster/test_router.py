"""Router behaviour: parity, affinity, negotiation, wire edge cases."""

import time

import pytest

from repro.core.config import SolverConfig, config_fingerprint
from repro.errors import ServerError
from repro.graph.build import from_edge_list
from repro.server import SolveClient, protocol
from repro.service import SolveService

from .conftest import SlowWindowService, free_port, wait_until

TRIANGLE = {"kind": "edges", "edges": [[0, 1], [1, 2], [0, 2], [2, 3]]}


def ring_key(graph, **config_kwargs):
    """The router's placement key for one (graph, config) request."""
    config = SolverConfig(**config_kwargs)
    return f"{graph.fingerprint()}/{config_fingerprint(config)}"


@pytest.fixture(scope="module")
def community():
    from repro.graph import generators as gen

    return gen.caveman_social(6, 40, p_in=0.35, seed=3)


class TestRouting:
    def test_parity_with_local_service(
        self, make_backend, make_router, make_client, community
    ):
        local = SolveService().solve(community)
        router = make_router([make_backend(), make_backend()])
        client = make_client(router)
        reply = client.solve(community)
        record = reply["record"]
        assert record["status"] == "ok"
        assert record["clique_number"] == local.clique_number
        assert record["num_maximum_cliques"] == local.num_maximum_cliques
        assert reply["cliques"] == [
            [int(v) for v in row] for row in local.result.cliques
        ]

    def test_repeat_requests_stay_on_one_backend(
        self, make_backend, make_router, make_client, community
    ):
        """The cache-affinity acceptance test: same graph, same backend,
        warm cache there -- cold everywhere else."""
        b1, b2 = make_backend(), make_backend()
        router = make_router([b1, b2])
        client = make_client(router)
        for _ in range(3):
            reply = client.solve(community)
            assert reply["record"]["status"] == "ok"
        assert reply["record"]["cache_hit"] is True
        stats = client.stats()
        routed = {
            name: backend["routed"]
            for name, backend in stats["backends"].items()
        }
        assert sorted(routed.values()) == [0, 3], routed
        # the owning backend saw 2 cache hits; the other stayed cold
        caches = []
        for handle in (b1, b2):
            with SolveClient(port=handle.port) as direct:
                caches.append(direct.stats()["service"]["cache"])
        hits = sorted(c["hits"] for c in caches)
        sizes = sorted(c["size"] for c in caches)
        assert hits == [0, 2], caches
        assert sizes == [0, 1], caches

    def test_distinct_keys_can_use_distinct_backends(
        self, make_backend, make_router, make_client
    ):
        """Different (graph, config) keys spread over the ring; the
        router's per-backend counters account for every placement."""
        router = make_router([make_backend(), make_backend()])
        client = make_client(router)
        for window in (2, 3, 4, 5, 6, 7, 8):
            reply = client.solve(
                from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3)]),
                window_size=window,
            )
            assert reply["record"]["status"] == "ok"
        stats = client.stats()
        total = stats["router"]["routed.total"]
        per_backend = sum(
            backend["routed"] for backend in stats["backends"].values()
        )
        assert total == per_backend == 7

    def test_status_forwarded_to_owning_backend(
        self, make_backend, make_router, raw_conn
    ):
        backend = make_backend(service=SlowWindowService(0.05))
        router = make_router([backend])
        conn = raw_conn(router)
        conn.hello()
        conn.send(
            {"type": "solve", "id": "job", "graph": TRIANGLE,
             "config": {"window_size": 2}}
        )
        conn.send({"type": "status", "id": "job"})
        status = conn.recv()
        assert status["type"] == "status"
        assert status["id"] == "job"
        assert status["state"] in ("queued", "running", "unknown")
        result = conn.recv()
        assert result["type"] == "result" and result["id"] == "job"
        conn.send({"type": "status", "id": "job"})
        assert conn.recv()["state"] in ("done", "unknown")

    def test_no_backend_when_nothing_listens(self, make_router, make_client):
        router = make_router([("127.0.0.1", free_port()),
                              ("127.0.0.1", free_port())])
        client = make_client(router, retries=0)
        with pytest.raises(ServerError) as excinfo:
            client.solve(from_edge_list([(0, 1), (1, 2), (0, 2)]))
        assert excinfo.value.code == "no_backend"
        assert excinfo.value.retriable


class TestHelloNegotiation:
    def test_advertises_backend_intersection(
        self, make_backend, make_router, fake_backend, make_client
    ):
        """Backends advertising different problem lists: the router
        only promises the intersection."""
        fake = fake_backend(problems=["max-clique"])
        router = make_router([make_backend(), ("127.0.0.1", fake.port)])
        client = make_client(router)
        hello = client.connect()
        assert hello["problems"] == ["max-clique"]
        assert hello["protocol"] == protocol.PROTOCOL

    def test_solve_outside_intersection_rejected(
        self, make_backend, make_router, fake_backend, raw_conn
    ):
        fake = fake_backend(problems=["max-clique"])
        router = make_router([make_backend(), ("127.0.0.1", fake.port)])
        conn = raw_conn(router)
        conn.hello()
        conn.send(
            {"type": "solve", "id": "kc", "graph": TRIANGLE,
             "problem": "k-clique-count", "config": {"k": 3}}
        )
        reply = conn.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "unsupported_problem"
        assert reply["retriable"] is False

    def test_matching_backends_advertise_everything(
        self, make_backend, make_router, make_client
    ):
        router = make_router([make_backend(), make_backend()])
        client = make_client(router)
        hello = client.connect()
        assert hello["problems"] == list(protocol.SUPPORTED_PROBLEMS)


class TestDrainingResubmit:
    def test_draining_primary_resubmits_to_replica(
        self, make_backend, make_router, fake_backend, make_client
    ):
        """A backend answering ``draining`` (retriable) must not fail
        the client: the router re-submits to the next backend."""
        fake = fake_backend()  # rejects every solve with draining
        backend = make_backend()
        router = make_router([backend, ("127.0.0.1", fake.port)])
        client = make_client(router)
        # find a config whose primary is the fake, so the re-submit
        # path is guaranteed to be exercised
        graph = from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3)])
        fake_name = f"127.0.0.1:{fake.port}"
        window = next(
            w for w in range(2, 64)
            if router.router.ring.node_for(
                ring_key(graph, window_size=w)
            ) == fake_name
        )
        reply = client.solve(graph, window_size=window)
        assert reply["record"]["status"] == "ok"
        assert reply["record"]["clique_number"] == 3
        assert router.router.stats.get("resubmits.draining") >= 1
        stats = client.stats()
        assert stats["backends"][fake_name]["routed"] >= 1


class TestWireEdgeCases:
    def test_fragmented_solve_frame_through_router(
        self, make_backend, make_router, raw_conn
    ):
        """A solve frame dribbled in arbitrary chunks must still route."""
        router = make_router([make_backend()])
        conn = raw_conn(router)
        conn.hello()
        data = protocol.encode_frame(
            {"type": "solve", "id": "frag", "graph": TRIANGLE}
        )
        for i in range(0, len(data), 7):
            conn.send_bytes(data[i:i + 7])
            time.sleep(0.001)
        reply = conn.recv()
        assert reply["type"] == "result" and reply["id"] == "frag"
        assert reply["record"]["clique_number"] == 3

    def test_pipelined_frames_in_one_segment(
        self, make_backend, make_router, raw_conn
    ):
        router = make_router([make_backend()])
        conn = raw_conn(router)
        conn.hello()
        burst = (
            protocol.encode_frame(
                {"type": "solve", "id": "a", "graph": TRIANGLE}
            )
            + protocol.encode_frame({"type": "stats"})
        )
        conn.send_bytes(burst)
        frames = [conn.recv(), conn.recv()]
        types = {f["type"] for f in frames}
        assert types == {"result", "stats"}

    def test_oversized_frame_rejected_and_closed(
        self, make_backend, make_router, raw_conn
    ):
        router = make_router([make_backend()], max_frame_bytes=4096)
        conn = raw_conn(router)
        conn.hello()
        conn.send_bytes(b"x" * 8192 + b"\n")
        reply = conn.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "frame_too_large"
        assert conn.recv() is None  # framing is unrecoverable: closed

    def test_bad_json_keeps_connection(
        self, make_backend, make_router, raw_conn
    ):
        router = make_router([make_backend()])
        conn = raw_conn(router)
        conn.hello()
        conn.send_bytes(b"{not json}\n")
        assert conn.recv()["code"] == "bad_frame"
        conn.send({"type": "solve", "id": "ok", "graph": TRIANGLE})
        assert conn.recv()["record"]["clique_number"] == 3

    def test_handshake_required(self, make_backend, make_router, raw_conn):
        router = make_router([make_backend()])
        conn = raw_conn(router)
        conn.send({"type": "stats"})
        assert conn.recv()["code"] == "handshake_required"


class TestStatsFrame:
    def test_router_stats_shape(
        self, make_backend, make_router, make_client, community
    ):
        router = make_router([make_backend(), make_backend()])
        client = make_client(router)
        client.solve(community)
        stats = client.stats()
        assert stats["type"] == "stats"
        router_stats = stats["router"]
        assert router_stats["backends_total"] == 2
        assert router_stats["backends_available"] == 2
        assert router_stats["routed.total"] == 1
        assert "p50_ms" in router_stats["latency"]
        assert "p99_ms" in router_stats["latency"]
        assert len(stats["backends"]) == 2
        for backend in stats["backends"].values():
            assert backend["health"]["state"] == "healthy"
            assert backend["connected"] is True
            assert set(backend) >= {"routed", "failed_over", "rebalanced"}

    def test_probes_drive_health(self, make_backend, make_router):
        backend = make_backend()
        router = make_router([backend])
        wait_until(
            lambda: router.router.stats.get("probes.ok") >= 2,
            message="health probes",
        )
        assert router.router.health[f"127.0.0.1:{backend.port}"].state == (
            "healthy"
        )

    def test_shutdown_frame_drains_router_not_backends(
        self, make_backend, make_router, make_client
    ):
        backend = make_backend()
        router = make_router([backend])
        client = make_client(router)
        bye = client.shutdown()
        assert bye["type"] == "bye"
        wait_until(
            lambda: not router._thread.is_alive(), message="router drain"
        )
        # the backend survives a router drain
        with SolveClient(port=backend.port) as direct:
            assert direct.stats()["server"]["draining"] is False
