"""Backend health state-machine transitions."""

import pytest

from repro.cluster import DOWN, HEALTHY, SUSPECT, BackendHealth


class TestTransitions:
    def test_starts_healthy_and_available(self):
        health = BackendHealth()
        assert health.state == HEALTHY
        assert health.available

    def test_single_failure_is_suspect_not_down(self):
        health = BackendHealth(down_threshold=3)
        health.note_failure()
        assert health.state == SUSPECT
        assert health.available  # suspect backends still take traffic

    def test_threshold_failures_go_down(self):
        health = BackendHealth(down_threshold=3)
        for _ in range(3):
            health.note_failure()
        assert health.state == DOWN
        assert not health.available
        assert health.downs == 1

    def test_success_snaps_back_to_healthy(self):
        health = BackendHealth(down_threshold=2)
        health.note_failure()
        health.note_success()
        assert health.state == HEALTHY
        assert health.consecutive_failures == 0

    def test_recovery_from_down_is_counted(self):
        health = BackendHealth(down_threshold=1)
        health.note_failure()
        assert health.state == DOWN
        health.note_success()
        assert health.state == HEALTHY
        assert health.recoveries == 1

    def test_connection_loss_skips_suspect(self):
        health = BackendHealth(down_threshold=5)
        health.note_lost()
        assert health.state == DOWN
        assert health.downs == 1

    def test_repeated_downs_count_once_per_episode(self):
        health = BackendHealth(down_threshold=1)
        health.note_failure()
        health.note_failure()
        assert health.downs == 1
        health.note_success()
        health.note_failure()
        assert health.downs == 2

    def test_to_dict_shape(self):
        health = BackendHealth()
        health.note_failure()
        snap = health.to_dict()
        assert snap["state"] == SUSPECT
        assert snap["consecutive_failures"] == 1
        assert snap["total_failures"] == 1

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="down_threshold"):
            BackendHealth(down_threshold=0)
