"""Exception hierarchy tests."""

import pytest

from repro.errors import (
    DeviceOOMError,
    DeviceStateError,
    GraphFormatError,
    ReproError,
    SolveTimeoutError,
    SolverConfigError,
)


class TestHierarchy:
    def test_all_inherit_repro_error(self):
        for exc in (
            DeviceOOMError(1, 2, 3),
            DeviceStateError("x"),
            GraphFormatError("x"),
            SolverConfigError("x"),
            SolveTimeoutError("x"),
        ):
            assert isinstance(exc, ReproError)

    def test_stdlib_compatibility(self):
        # catchable by the stdlib exception types users expect
        assert isinstance(DeviceOOMError(1, 2, 3), MemoryError)
        assert isinstance(GraphFormatError("x"), ValueError)
        assert isinstance(SolverConfigError("x"), ValueError)
        assert isinstance(SolveTimeoutError("x"), TimeoutError)
        assert isinstance(DeviceStateError("x"), RuntimeError)


class TestDeviceOOMError:
    def test_carries_accounting(self):
        exc = DeviceOOMError(requested=100, in_use=50, budget=120)
        assert exc.requested == 100
        assert exc.in_use == 50
        assert exc.budget == 120
        msg = str(exc)
        assert "100" in msg and "50" in msg and "120" in msg
