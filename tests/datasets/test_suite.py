"""Surrogate dataset suite integrity tests."""

import pytest

from repro.datasets import MONSTERS, SUITE, categories, iter_suite, load, names


class TestSuiteShape:
    def test_has_58_entries_like_the_paper(self):
        assert len(SUITE) == 58

    def test_names_unique(self):
        assert len(set(names())) == 58

    def test_six_categories(self):
        cats = categories()
        assert sorted(cats) == sorted(
            ["road", "collab", "bio", "tech", "web", "social"]
        )

    def test_category_counts(self):
        from collections import Counter

        counts = Counter(spec.category for spec in SUITE)
        assert counts["road"] == 8
        assert counts["collab"] == 10
        assert counts["bio"] == 8
        assert counts["tech"] == 8
        assert counts["web"] == 10
        assert counts["social"] == 14

    def test_monsters_are_social_suite_members(self):
        all_names = set(names())
        for m in MONSTERS:
            assert m in all_names


class TestLoading:
    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load("no-such-graph")

    def test_load_deterministic_and_memoised(self):
        a = load("road-grid-60")
        b = load("road-grid-60")
        assert a is b  # lru_cache
        assert a.num_vertices == 3600

    def test_build_is_deterministic(self):
        spec = SUITE[0]
        g1 = spec.build()
        g2 = spec.build()
        assert (g1.col_indices == g2.col_indices).all()

    def test_small_graphs_valid(self):
        for spec, graph in iter_suite(max_edges=20_000):
            graph.validate()
            assert graph.num_edges > 500, spec.name

    def test_iter_filters(self):
        road = list(iter_suite(categories=["road"]))
        assert len(road) == 8
        limited = list(iter_suite(limit=3))
        assert len(limited) == 3

    def test_degree_regimes_cover_papers_spread(self):
        degs = {
            spec.category: graph.average_degree
            for spec, graph in iter_suite(max_edges=120_000)
        }
        # low-degree road vs high-degree social, as in the paper
        assert degs["road"] < 6
        assert degs["social"] > 15
