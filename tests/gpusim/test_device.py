"""Unit tests for the simulated device's kernel cost model."""

import numpy as np
import pytest

from repro.gpusim import Device, DeviceSpec


def make_device(**kw) -> Device:
    defaults = dict(
        lanes=64, warp_size=32, clock_hz=1e9, launch_overhead_s=1e-6,
        memory_bytes=1 << 20,
    )
    defaults.update(kw)
    return Device(DeviceSpec(**defaults))


class TestLaunchAccounting:
    def test_empty_launch_is_a_noop(self):
        d = make_device()
        t = d.launch(np.zeros(0))
        assert t == 0.0
        assert d.stats().kernel_launches == 0
        assert d.stats().threads_launched == 0
        assert d.launch(5.0, n_threads=0) == 0.0

    def test_uniform_launch_charges_overhead_plus_work(self):
        d = make_device()
        t = d.launch(1.0, n_threads=64)
        # 64 threads exactly fill the device: 64 ops / 64 lanes / 1e9 Hz
        assert t == pytest.approx(1e-6 + 1e-9)

    def test_warp_divergence_charges_max_of_warp(self):
        d = make_device()
        costs = np.zeros(32)
        costs[0] = 100.0  # one busy thread, 31 idle lane-mates
        d.launch(costs)
        s = d.stats()
        assert s.useful_ops == pytest.approx(100.0)
        assert s.effective_ops == pytest.approx(3200.0)  # 32 * max
        assert s.divergence_waste == pytest.approx(1 - 100 / 3200)

    def test_uniform_costs_have_no_divergence_waste(self):
        d = make_device()
        d.launch(np.full(64, 7.0))
        s = d.stats()
        assert s.useful_ops == s.effective_ops == pytest.approx(64 * 7.0)

    def test_ragged_last_warp_rounding(self):
        d = make_device()
        d.launch(2.0, n_threads=33)  # 2 warps, second nearly empty
        s = d.stats()
        assert s.useful_ops == pytest.approx(66.0)
        assert s.effective_ops == pytest.approx(2.0 * 64)

    def test_latency_bound_small_launch(self):
        # one thread doing lots of serial work cannot use the full device
        d = make_device()
        t = d.launch(np.array([1e6]))
        serial = 1e6 / 1e9
        assert t == pytest.approx(1e-6 + serial)

    def test_throughput_bound_large_launch(self):
        d = make_device()
        n = 64 * 100
        t = d.launch(1.0, n_threads=n)
        assert t == pytest.approx(1e-6 + n / 64 / 1e9)

    def test_scalar_requires_n_threads(self):
        d = make_device()
        with pytest.raises(ValueError):
            d.launch(1.0)

    def test_model_time_accumulates(self):
        d = make_device()
        t1 = d.launch(1.0, n_threads=10)
        t2 = d.launch(1.0, n_threads=10)
        assert d.model_time_s == pytest.approx(t1 + t2)

    def test_charge_time_direct(self):
        d = make_device()
        d.charge_time(0.5)
        assert d.model_time_s == pytest.approx(0.5)
        with pytest.raises(ValueError):
            d.charge_time(-1.0)

    def test_reset_counters(self):
        d = make_device()
        arr = d.alloc(100, np.int64)
        d.launch(1.0, n_threads=5)
        d.reset_counters()
        s = d.stats()
        assert s.kernel_launches == 0
        assert s.model_time_s == 0.0
        assert s.mem_in_use_bytes == 800  # live allocation survives
        assert s.mem_peak_bytes == 800
        arr.free()


class TestAllocation:
    def test_alloc_and_fill(self):
        d = make_device()
        arr = d.alloc(5, np.int32, fill=7)
        assert arr.to_host().tolist() == [7] * 5
        arr.free()

    def test_from_host_copies(self):
        d = make_device()
        host = np.arange(4)
        arr = d.from_host(host)
        host[0] = 99
        assert arr.a[0] == 0
        arr.free()

    def test_stats_track_memory(self):
        d = make_device()
        arr = d.alloc((10,), np.int64)
        assert d.stats().mem_in_use_bytes == 80
        arr.free()
        assert d.stats().mem_in_use_bytes == 0
        assert d.stats().mem_peak_bytes == 80
