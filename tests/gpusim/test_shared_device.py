"""Shared-device semantics: accumulation, reset_counters, trace hook.

A :class:`~repro.gpusim.device.Device` holds cumulative state for its
lifetime -- a device shared across solves accumulates counters, the
kernel breakdown, and the model clock. ``reset_counters`` starts
accounting fresh without touching live allocations. These are the
documented contracts multi-solve experiments rely on.
"""

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.solver import MaxCliqueSolver
from repro.graph import generators as gen
from repro.gpusim import Device, DeviceSpec

MIB = 1 << 20


@pytest.fixture
def graph():
    return gen.planted_clique(200, 6, avg_degree=3.0, seed=3)


@pytest.fixture
def device():
    return Device(DeviceSpec(memory_bytes=256 * MIB))


class TestSharedDeviceAccumulation:
    def test_stats_accumulate_across_solves(self, graph, device):
        r1 = MaxCliqueSolver(graph, SolverConfig(), device).solve()
        s1 = device.stats()
        r2 = MaxCliqueSolver(graph, SolverConfig(), device).solve()
        s2 = device.stats()

        # the device keeps counting: second solve adds on top
        assert s2.kernel_launches > s1.kernel_launches
        assert s2.model_time_s > s1.model_time_s
        assert s2.useful_ops > s1.useful_ops
        # identical work, so exactly double after two solves
        assert s2.kernel_launches == 2 * s1.kernel_launches
        assert s2.model_time_s == pytest.approx(2 * s1.model_time_s)

        # per-solve results are deltas, unaffected by the shared clock
        # (up to float summation order on the offset clock)
        assert r1.model_time_s == pytest.approx(r2.model_time_s, rel=1e-12)
        assert r1.clique_number == r2.clique_number
        assert r1.peak_memory_bytes == r2.peak_memory_bytes

    def test_kernel_breakdown_merges_solves(self, graph, device):
        MaxCliqueSolver(graph, SolverConfig(), device).solve()
        one = {k: p.launches for k, p in device.kernel_breakdown().items()}
        MaxCliqueSolver(graph, SolverConfig(), device).solve()
        two = {k: p.launches for k, p in device.kernel_breakdown().items()}
        assert set(one) == set(two)
        assert all(two[k] == 2 * one[k] for k in one)


class TestResetCounters:
    def test_reset_zeroes_counters_and_breakdown(self, graph, device):
        MaxCliqueSolver(graph, SolverConfig(), device).solve()
        assert device.kernel_breakdown()
        device.reset_counters()
        stats = device.stats()
        assert stats.kernel_launches == 0
        assert stats.threads_launched == 0
        assert stats.useful_ops == 0.0
        assert stats.effective_ops == 0.0
        assert stats.model_time_s == 0.0
        assert device.kernel_breakdown() == {}

    def test_live_allocations_survive_reset(self, device):
        arr = device.from_host(np.arange(1024, dtype=np.int32))
        in_use = device.pool.in_use_bytes
        assert in_use > 0
        device.reset_counters()
        assert device.pool.in_use_bytes == in_use
        assert np.array_equal(arr.to_host(), np.arange(1024))
        arr.free()

    def test_solve_after_reset_matches_fresh_device(self, graph, device):
        MaxCliqueSolver(graph, SolverConfig(), device).solve()
        device.reset_counters()
        shared = MaxCliqueSolver(graph, SolverConfig(), device).solve()
        fresh = MaxCliqueSolver(
            graph, SolverConfig(), Device(DeviceSpec(memory_bytes=256 * MIB))
        ).solve()
        assert shared.model_time_s == fresh.model_time_s
        assert shared.device_stats.kernel_launches == (
            fresh.device_stats.kernel_launches
        )


class TestTraceHook:
    def test_hook_sees_every_charge(self, device):
        events = []
        device.set_trace_hook(lambda **kw: events.append(kw))
        device.launch(np.ones(64), name="k1")
        device.launch(2.0, n_threads=32, name="k2")
        assert [e["name"] for e in events] == ["k1", "k2"]
        assert events[0]["threads"] == 64
        assert events[0]["end_model_s"] == pytest.approx(
            events[0]["model_time_s"]
        )
        assert events[1]["end_model_s"] == device.model_time_s

    def test_set_returns_previous_hook(self, device):
        a = lambda **kw: None  # noqa: E731
        assert device.set_trace_hook(a) is None
        assert device.set_trace_hook(None) is a

    def test_hook_is_observe_only(self, graph):
        """Installing a hook must not change any model number."""
        plain = Device(DeviceSpec(memory_bytes=256 * MIB))
        hooked = Device(DeviceSpec(memory_bytes=256 * MIB))
        hooked.set_trace_hook(lambda **kw: None)
        r1 = MaxCliqueSolver(graph, SolverConfig(), plain).solve()
        r2 = MaxCliqueSolver(graph, SolverConfig(), hooked).solve()
        assert r1.model_time_s == r2.model_time_s
        assert plain.stats() == hooked.stats()

    def test_hook_survives_reset_counters(self, device):
        events = []
        device.set_trace_hook(lambda **kw: events.append(kw))
        device.launch(np.ones(8), name="a")
        device.reset_counters()
        device.launch(np.ones(8), name="b")
        assert [e["name"] for e in events] == ["a", "b"]

    def test_empty_launch_emits_nothing(self, device):
        events = []
        device.set_trace_hook(lambda **kw: events.append(kw))
        device.launch(np.zeros(0), name="empty")
        assert events == []
