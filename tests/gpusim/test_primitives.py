"""Unit + property tests for the CUB-style data-parallel primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device, DeviceSpec, primitives as P


@pytest.fixture
def dev():
    return Device(DeviceSpec(memory_bytes=1 << 24))


int_arrays = st.lists(st.integers(0, 1000), min_size=0, max_size=200).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


class TestScan:
    def test_exclusive_scan_basic(self, dev):
        offs, total = P.exclusive_scan(dev, np.array([3, 1, 4]))
        assert offs.tolist() == [0, 3, 4]
        assert total == 8

    def test_exclusive_scan_empty(self, dev):
        offs, total = P.exclusive_scan(dev, np.zeros(0, dtype=np.int64))
        assert offs.size == 0
        assert total == 0

    def test_inclusive_scan(self, dev):
        out = P.inclusive_scan(dev, np.array([1, 2, 3]))
        assert out.tolist() == [1, 3, 6]

    @given(int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_exclusive_scan_matches_numpy(self, values):
        dev = Device(DeviceSpec())
        offs, total = P.exclusive_scan(dev, values)
        ref = np.concatenate([[0], np.cumsum(values)])
        assert offs.tolist() == ref[:-1].tolist()
        assert total == ref[-1]

    def test_scan_charges_launch(self, dev):
        before = dev.stats().kernel_launches
        P.exclusive_scan(dev, np.arange(10))
        assert dev.stats().kernel_launches == before + 1


class TestReduce:
    def test_reduce_sum(self, dev):
        assert P.reduce_sum(dev, np.array([1, 2, 3])) == 6.0
        assert P.reduce_sum(dev, np.zeros(0)) == 0.0

    def test_reduce_max(self, dev):
        assert P.reduce_max(dev, np.array([5, 2, 9])) == 9.0
        assert P.reduce_max(dev, np.zeros(0)) == float("-inf")


class TestSelect:
    def test_select_flagged(self, dev):
        vals = np.array([10, 20, 30, 40])
        flags = np.array([True, False, True, False])
        assert P.select_flagged(dev, vals, flags).tolist() == [10, 30]

    def test_select_shape_mismatch(self, dev):
        with pytest.raises(ValueError):
            P.select_flagged(dev, np.zeros(3), np.zeros(2, dtype=bool))

    def test_select_if_nonzero(self, dev):
        assert P.select_if_nonzero(dev, np.array([0, 5, 0, 7])).tolist() == [5, 7]

    @given(int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_select_preserves_order(self, values):
        dev = Device(DeviceSpec())
        flags = values % 2 == 0
        out = P.select_flagged(dev, values, flags)
        assert out.tolist() == values[flags].tolist()


class TestSort:
    def test_radix_sort(self, dev):
        out = P.radix_sort(dev, np.array([3, 1, 2]))
        assert out.tolist() == [1, 2, 3]

    def test_radix_sort_descending(self, dev):
        out = P.radix_sort(dev, np.array([3, 1, 2]), descending=True)
        assert out.tolist() == [3, 2, 1]

    def test_radix_sort_pairs_stable(self, dev):
        keys = np.array([2, 1, 2, 1])
        vals = np.array([0, 1, 2, 3])
        k, v = P.radix_sort_pairs(dev, keys, vals)
        assert k.tolist() == [1, 1, 2, 2]
        assert v.tolist() == [1, 3, 0, 2]  # stable within equal keys

    def test_radix_sort_pairs_descending(self, dev):
        keys = np.array([1, 3, 2])
        vals = np.array([10, 30, 20])
        k, v = P.radix_sort_pairs(dev, keys, vals, descending=True)
        assert k.tolist() == [3, 2, 1]
        assert v.tolist() == [30, 20, 10]

    def test_pairs_shape_mismatch(self, dev):
        with pytest.raises(ValueError):
            P.radix_sort_pairs(dev, np.zeros(3), np.zeros(4))


class TestSegmented:
    def test_segmented_max(self, dev):
        out = P.segmented_max(
            dev, np.array([3, 1, 4, 1, 5]), np.array([0, 2, 2, 5])
        )
        assert out[0] == 3
        assert out[2] == 5
        assert out[1] == np.iinfo(np.int64).min  # empty segment

    def test_segmented_argmax_first_tie(self, dev):
        out = P.segmented_argmax(
            dev, np.array([7, 7, 1, 2, 9]), np.array([0, 3, 5])
        )
        assert out.tolist() == [0, 4]  # ties resolve to the earliest index

    def test_segmented_argmax_empty_segment(self, dev):
        out = P.segmented_argmax(dev, np.array([1]), np.array([0, 0, 1]))
        assert out.tolist() == [-1, 0]

    def test_segmented_sum(self, dev):
        out = P.segmented_sum(
            dev, np.array([1, 2, 3, 4]), np.array([0, 1, 1, 4])
        )
        assert out.tolist() == [1, 0, 9]

    def test_bad_offsets_rejected(self, dev):
        with pytest.raises(ValueError):
            P.segmented_max(dev, np.array([1, 2]), np.array([0, 1]))
        with pytest.raises(ValueError):
            P.segmented_max(dev, np.array([1, 2]), np.zeros(0, dtype=np.int64))

    @given(
        st.lists(
            st.lists(st.integers(0, 100), min_size=0, max_size=10),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_segmented_ops_match_python(self, segments):
        dev = Device(DeviceSpec())
        values = np.asarray(
            [x for seg in segments for x in seg], dtype=np.int64
        )
        offsets = np.cumsum([0] + [len(s) for s in segments]).astype(np.int64)
        got_max = P.segmented_max(dev, values, offsets)
        got_arg = P.segmented_argmax(dev, values, offsets)
        got_sum = P.segmented_sum(dev, values, offsets)
        for i, seg in enumerate(segments):
            if seg:
                assert got_max[i] == max(seg)
                assert got_sum[i] == sum(seg)
                local = int(np.argmax(np.asarray(seg)))
                assert got_arg[i] == offsets[i] + local
            else:
                assert got_arg[i] == -1
                assert got_sum[i] == 0


class TestRunBoundaries:
    def test_basic_runs(self, dev):
        out = P.run_boundaries(dev, np.array([5, 5, 7, 7, 7, 9]))
        assert out.tolist() == [0, 2, 5, 6]

    def test_empty(self, dev):
        assert P.run_boundaries(dev, np.zeros(0, dtype=np.int32)).tolist() == [0]

    def test_all_equal(self, dev):
        assert P.run_boundaries(dev, np.full(4, 3)).tolist() == [0, 4]

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_boundaries_reconstruct_runs(self, values):
        dev = Device(DeviceSpec())
        arr = np.asarray(values)
        bounds = P.run_boundaries(dev, arr)
        # each segment is constant and differs from its neighbour
        for a, b in zip(bounds[:-1], bounds[1:]):
            seg = arr[a:b]
            assert (seg == seg[0]).all()
            if b < arr.size:
                assert arr[b] != seg[0]
