"""Unit tests for the device memory pool and arrays."""

import numpy as np
import pytest

from repro.errors import DeviceOOMError, DeviceStateError
from repro.gpusim.memory import DeviceArray, MemoryPool


class TestMemoryPool:
    def test_reserve_and_release(self):
        pool = MemoryPool(1000)
        pool.reserve(400)
        assert pool.in_use_bytes == 400
        pool.release(100)
        assert pool.in_use_bytes == 300
        assert pool.peak_bytes == 400

    def test_budget_enforced(self):
        pool = MemoryPool(100)
        pool.reserve(80)
        with pytest.raises(DeviceOOMError) as exc:
            pool.reserve(21)
        assert exc.value.requested == 21
        assert exc.value.in_use == 80
        assert exc.value.budget == 100
        # failed reservation does not change accounting
        assert pool.in_use_bytes == 80

    def test_exact_fit_allowed(self):
        pool = MemoryPool(100)
        pool.reserve(100)
        assert pool.in_use_bytes == 100

    def test_unlimited_pool(self):
        pool = MemoryPool(None)
        pool.reserve(10**12)
        assert pool.peak_bytes == 10**12

    def test_peak_tracks_high_water(self):
        pool = MemoryPool(None)
        pool.reserve(500)
        pool.release(500)
        pool.reserve(200)
        assert pool.peak_bytes == 500
        pool.reset_peak()
        assert pool.peak_bytes == 200

    def test_over_release_rejected(self):
        pool = MemoryPool(None)
        pool.reserve(10)
        with pytest.raises(DeviceStateError):
            pool.release(11)

    def test_negative_sizes_rejected(self):
        pool = MemoryPool(None)
        with pytest.raises(ValueError):
            pool.reserve(-1)
        with pytest.raises(ValueError):
            pool.release(-1)

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(0)

    def test_alloc_free_counts(self):
        pool = MemoryPool(None)
        pool.reserve(1)
        pool.reserve(2)
        pool.release(1)
        assert pool.alloc_count == 2
        assert pool.free_count == 1


class TestDeviceArray:
    def test_wraps_and_charges(self):
        pool = MemoryPool(None)
        arr = DeviceArray(np.zeros(10, dtype=np.int32), pool, label="x")
        assert pool.in_use_bytes == 40
        assert arr.nbytes == 40
        assert arr.size == 10
        assert arr.dtype == np.int32

    def test_free_releases_and_is_idempotent(self):
        pool = MemoryPool(None)
        arr = DeviceArray(np.zeros(10, dtype=np.int64), pool)
        arr.free()
        assert pool.in_use_bytes == 0
        arr.free()  # idempotent
        assert pool.free_count == 1

    def test_use_after_free_raises(self):
        pool = MemoryPool(None)
        arr = DeviceArray(np.zeros(4), pool)
        arr.free()
        with pytest.raises(DeviceStateError):
            _ = arr.a

    def test_context_manager_frees(self):
        pool = MemoryPool(None)
        with DeviceArray(np.zeros(4), pool) as arr:
            assert not arr.freed
        assert arr.freed
        assert pool.in_use_bytes == 0

    def test_to_host_is_a_copy(self):
        pool = MemoryPool(None)
        arr = DeviceArray(np.arange(5), pool)
        host = arr.to_host()
        host[0] = 99
        assert arr.a[0] == 0

    def test_len_and_iter(self):
        pool = MemoryPool(None)
        arr = DeviceArray(np.arange(3), pool)
        assert len(arr) == 3
        assert list(arr) == [0, 1, 2]

    def test_oversized_allocation_fails(self):
        pool = MemoryPool(16)
        with pytest.raises(DeviceOOMError):
            DeviceArray(np.zeros(100, dtype=np.int64), pool)
