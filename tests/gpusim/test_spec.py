"""Unit tests for device/CPU hardware specs."""

import pytest

from repro.gpusim.spec import A100_LIKE, EPYC_LIKE, CPUSpec, DeviceSpec


class TestDeviceSpec:
    def test_defaults_valid(self):
        spec = DeviceSpec()
        assert spec.lanes % spec.warp_size == 0
        assert spec.warp_slots == spec.lanes // spec.warp_size
        assert spec.ops_per_second == spec.lanes * spec.clock_hz

    def test_with_memory_returns_new_spec(self):
        spec = DeviceSpec()
        other = spec.with_memory(123456)
        assert other.memory_bytes == 123456
        assert spec.memory_bytes != 123456  # frozen original untouched
        assert other.lanes == spec.lanes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lanes": 0},
            {"lanes": 100, "warp_size": 32},  # not a multiple
            {"warp_size": 0},
            {"clock_hz": 0.0},
            {"launch_overhead_s": -1e-6},
            {"memory_bytes": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeviceSpec(**kwargs)

    def test_module_constant_is_default(self):
        assert A100_LIKE == DeviceSpec()


class TestCPUSpec:
    def test_single_thread_full_clock(self):
        spec = CPUSpec()
        assert spec.ops_per_second(1) == spec.clock_hz

    def test_threads_capped_at_cores(self):
        spec = CPUSpec(cores=8)
        assert spec.ops_per_second(64) == spec.ops_per_second(8)

    def test_parallel_efficiency_applied(self):
        spec = CPUSpec(cores=4, parallel_efficiency=0.5)
        assert spec.ops_per_second(4) == pytest.approx(4 * spec.clock_hz * 0.5)

    def test_time_scales_with_ops_and_mem_penalty(self):
        spec = CPUSpec(mem_penalty=10.0)
        base = spec.time_for_ops(1000, 1)
        assert spec.time_for_ops(2000, 1) == pytest.approx(2 * base)
        assert spec.time_for_ops(0, 1, mem_ops=100) == pytest.approx(
            spec.time_for_ops(1000, 1)
        )

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            CPUSpec().ops_per_second(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"clock_hz": -1.0},
            {"parallel_efficiency": 0.0},
            {"parallel_efficiency": 1.5},
            {"mem_penalty": 0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CPUSpec(**kwargs)

    def test_epyc_constant(self):
        assert EPYC_LIKE.cores == 24
