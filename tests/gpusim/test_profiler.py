"""Per-kernel profiler tests."""

import numpy as np
import pytest

from repro.gpusim import Device, DeviceSpec


@pytest.fixture
def dev():
    return Device(DeviceSpec(memory_bytes=1 << 20))


class TestKernelBreakdown:
    def test_groups_by_name(self, dev):
        dev.launch(1.0, n_threads=10, name="a")
        dev.launch(1.0, n_threads=10, name="a")
        dev.launch(2.0, n_threads=5, name="b")
        bd = dev.kernel_breakdown()
        assert bd["a"].launches == 2
        assert bd["a"].threads == 20
        assert bd["b"].launches == 1

    def test_times_partition_total(self, dev):
        dev.launch(np.arange(100, dtype=np.float64), name="x")
        dev.launch(7.0, n_threads=3, name="y")
        bd = dev.kernel_breakdown()
        assert sum(p.model_time_s for p in bd.values()) == pytest.approx(
            dev.model_time_s
        )

    def test_sorted_by_time(self, dev):
        dev.launch(1.0, n_threads=1, name="small")
        dev.launch(1e6, n_threads=1024, name="big")
        names = list(dev.kernel_breakdown())
        assert names[0] == "big"

    def test_divergence_waste_per_kernel(self, dev):
        costs = np.zeros(32)
        costs[0] = 64.0
        dev.launch(costs, name="divergent")
        prof = dev.kernel_breakdown()["divergent"]
        assert prof.divergence_waste > 0.9

    def test_reset_clears_profiles(self, dev):
        dev.launch(1.0, n_threads=4, name="z")
        dev.reset_counters()
        assert dev.kernel_breakdown() == {}

    def test_solver_produces_named_kernels(self):
        from repro import MaxCliqueSolver
        from repro.graph import generators as gen

        dev = Device(DeviceSpec(memory_bytes=1 << 26))
        MaxCliqueSolver(gen.erdos_renyi(40, 0.3, seed=1), device=dev).solve()
        names = set(dev.kernel_breakdown())
        # the Algorithm 2 kernels must all appear
        assert {"count_cliques", "output_new_cliques", "exclusive_scan"} <= names
