"""Fault-injection layer: determinism, ordinal keying, zero overhead."""

import json

import numpy as np
import pytest

from repro.errors import (
    DeviceLostError,
    FaultPlanError,
    FlakyAllocError,
    TransientDeviceError,
    TransientKernelError,
)
from repro.gpusim import Device, FaultEvent, FaultInjector, FaultPlan, load_fault_plan
from repro.gpusim.spec import DeviceSpec


def small_spec():
    return DeviceSpec(memory_bytes=1 << 20)


# ----------------------------------------------------------------------
# FaultEvent / FaultPlan validation
# ----------------------------------------------------------------------


def test_event_rejects_unknown_kind():
    with pytest.raises(FaultPlanError):
        FaultEvent(0, "launch", 0, "meteor-strike")


def test_event_rejects_wrong_hook():
    with pytest.raises(FaultPlanError):
        FaultEvent(0, "alloc", 0, "transient-kernel")
    with pytest.raises(FaultPlanError):
        FaultEvent(0, "launch", 0, "flaky-alloc")


def test_device_lost_fires_on_either_hook():
    FaultEvent(0, "launch", 0, "device-lost")
    FaultEvent(0, "alloc", 0, "device-lost")


def test_plan_rejects_duplicate_slot():
    e = {"device": 0, "on": "launch", "ordinal": 3, "kind": "transient-kernel"}
    with pytest.raises(FaultPlanError):
        FaultPlan([e, dict(e, kind="device-lost")])


def test_plan_rejects_bad_rates():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_rates(1, transient_kernel=1.5)
    with pytest.raises(FaultPlanError):
        FaultPlan.from_rates(1, devices=0)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------


def test_from_rates_is_deterministic():
    kw = dict(
        devices=3,
        horizon=400,
        transient_kernel=0.02,
        device_lost=0.005,
        flaky_alloc=0.01,
    )
    a = FaultPlan.from_rates(42, **kw)
    b = FaultPlan.from_rates(42, **kw)
    assert [e.to_dict() for e in a.events] == [e.to_dict() for e in b.events]
    assert len(a.events) > 0


def test_from_rates_per_device_substreams():
    # adding a device must not reshuffle the existing devices' events
    one = FaultPlan.from_rates(9, devices=1, horizon=300, transient_kernel=0.05)
    two = FaultPlan.from_rates(9, devices=2, horizon=300, transient_kernel=0.05)
    dev0_of_two = [e.to_dict() for e in two.events if e.device == 0]
    assert [e.to_dict() for e in one.events] == dev0_of_two


def test_different_seeds_differ():
    kw = dict(horizon=500, transient_kernel=0.05)
    a = FaultPlan.from_rates(1, **kw)
    b = FaultPlan.from_rates(2, **kw)
    assert [e.to_dict() for e in a.events] != [e.to_dict() for e in b.events]


def test_plan_round_trip(tmp_path):
    plan = FaultPlan.from_rates(
        11, devices=2, horizon=200, transient_kernel=0.03, flaky_alloc=0.02
    )
    path = tmp_path / "plan.json"
    plan.save(path)
    loaded = load_fault_plan(path)
    assert loaded.seed == plan.seed
    assert [e.to_dict() for e in loaded.events] == [e.to_dict() for e in plan.events]


def test_load_rejects_bad_schema(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"schema": "repro-fault-plan/99", "events": []}))
    with pytest.raises(FaultPlanError):
        load_fault_plan(path)


def test_load_rejects_unknown_keys(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"events": [], "surprise": 1}))
    with pytest.raises(FaultPlanError):
        load_fault_plan(path)


def test_rates_key_materializes(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(
        json.dumps(
            {
                "seed": 5,
                "rates": {"transient_kernel": 0.05, "horizon": 300},
            }
        )
    )
    loaded = load_fault_plan(path)
    direct = FaultPlan.from_rates(5, horizon=300, transient_kernel=0.05)
    assert [e.to_dict() for e in loaded.events] == [e.to_dict() for e in direct.events]


# ----------------------------------------------------------------------
# injector semantics on a live device
# ----------------------------------------------------------------------


def test_launch_ordinal_keying():
    plan = FaultPlan([FaultEvent(0, "launch", 2, "transient-kernel")])
    d = Device(small_spec())
    d.set_fault_injector(plan.injector_for(0))
    d.launch(n_threads=4, name="k0")
    d.launch(n_threads=4, name="k1")
    with pytest.raises(TransientKernelError):
        d.launch(n_threads=4, name="k2")
    # transient: the very next launch succeeds
    d.launch(n_threads=4, name="k2-retry")
    assert d.fault_injector.injected["transient-kernel"] == 1


def test_empty_launches_do_not_advance_ordinals():
    plan = FaultPlan([FaultEvent(0, "launch", 1, "transient-kernel")])
    d = Device(small_spec())
    d.set_fault_injector(plan.injector_for(0))
    d.launch(n_threads=4, name="k0")  # ordinal 0
    d.launch(n_threads=0, name="empty")  # charges nothing, no ordinal
    d.launch(thread_costs=np.array([], dtype=np.int64), name="empty2")
    with pytest.raises(TransientKernelError):
        d.launch(n_threads=4, name="k1")  # ordinal 1


def test_alloc_ordinal_keying():
    plan = FaultPlan([FaultEvent(0, "alloc", 1, "flaky-alloc")])
    d = Device(small_spec())
    d.set_fault_injector(plan.injector_for(0))
    d.alloc(8, label="a0")
    with pytest.raises(FlakyAllocError):
        d.alloc(8, label="a1")
    # transient: retry succeeds and the pool was never charged
    arr = d.alloc(8, label="a1-retry")
    assert arr.nbytes > 0


def test_from_host_counts_as_alloc():
    plan = FaultPlan([FaultEvent(0, "alloc", 1, "flaky-alloc")])
    d = Device(small_spec())
    d.set_fault_injector(plan.injector_for(0))
    d.from_host(np.arange(4, dtype=np.int32))  # ordinal 0
    with pytest.raises(FlakyAllocError):
        d.from_host(np.arange(4, dtype=np.int32))  # ordinal 1


def test_flaky_alloc_is_transient_not_oom():
    assert issubclass(FlakyAllocError, TransientDeviceError)
    assert not issubclass(FlakyAllocError, MemoryError)


def test_device_lost_is_sticky():
    plan = FaultPlan([FaultEvent(0, "launch", 1, "device-lost")])
    d = Device(small_spec())
    d.set_fault_injector(plan.injector_for(0))
    d.launch(n_threads=4, name="k0")
    with pytest.raises(DeviceLostError):
        d.launch(n_threads=4, name="k1")
    assert d.lost
    with pytest.raises(DeviceLostError):
        d.launch(n_threads=4, name="k2")
    with pytest.raises(DeviceLostError):
        d.alloc(8)
    with pytest.raises(DeviceLostError):
        d.from_host(np.arange(2, dtype=np.int32))


def test_device_lost_on_alloc_hook():
    plan = FaultPlan([FaultEvent(0, "alloc", 0, "device-lost")])
    d = Device(small_spec())
    d.set_fault_injector(plan.injector_for(0))
    with pytest.raises(DeviceLostError):
        d.alloc(8)
    assert d.lost


def test_injector_for_other_device_is_none():
    plan = FaultPlan([FaultEvent(1, "launch", 0, "transient-kernel")])
    assert plan.injector_for(0) is None
    assert isinstance(plan.injector_for(1), FaultInjector)


def test_injector_ordinals_survive_device_replacement():
    # the pool re-installs the same injector on a replacement device;
    # later events must still land at their planned absolute ordinals
    plan = FaultPlan(
        [
            FaultEvent(0, "launch", 1, "device-lost"),
            FaultEvent(0, "launch", 3, "transient-kernel"),
        ]
    )
    inj = plan.injector_for(0)
    d = Device(small_spec())
    d.set_fault_injector(inj)
    d.launch(n_threads=4, name="k0")  # ordinal 0
    with pytest.raises(DeviceLostError):
        d.launch(n_threads=4, name="k1")  # ordinal 1 -> lost
    fresh = Device(small_spec())
    fresh.set_fault_injector(inj)
    fresh.launch(n_threads=4, name="k2")  # ordinal 2
    with pytest.raises(TransientKernelError):
        fresh.launch(n_threads=4, name="k3")  # ordinal 3


# ----------------------------------------------------------------------
# zero overhead by default
# ----------------------------------------------------------------------


def test_no_injector_model_times_exact():
    costs = np.arange(1, 513, dtype=np.int64)
    plain = Device(small_spec())
    hooked = Device(small_spec())
    hooked.set_fault_injector(None)
    for d in (plain, hooked):
        d.alloc(64, label="buf")
        d.launch(thread_costs=costs, name="work")
        d.launch(n_threads=100, thread_costs=3, name="uniform")
    assert plain.model_time_s == hooked.model_time_s
    assert plain.stats() == hooked.stats()


def test_benign_injector_does_not_change_model_time():
    # an injector whose events never fire observes but never charges
    plan = FaultPlan([FaultEvent(0, "launch", 10_000, "transient-kernel")])
    costs = np.arange(1, 257, dtype=np.int64)
    plain = Device(small_spec())
    hooked = Device(small_spec())
    hooked.set_fault_injector(plan.injector_for(0))
    for d in (plain, hooked):
        d.launch(thread_costs=costs, name="work")
    assert plain.model_time_s == hooked.model_time_s
