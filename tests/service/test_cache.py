"""Result cache: keys, LRU behaviour, counters."""

from dataclasses import replace

import pytest

from repro.core.config import SolverConfig
from repro.graph import generators as gen
from repro.service import ResultCache, config_fingerprint, request_key
from repro.trace import JsonTracer


class TestConfigFingerprint:
    def test_equal_configs_equal_fingerprints(self):
        assert config_fingerprint(SolverConfig()) == config_fingerprint(
            SolverConfig()
        )

    def test_result_relevant_field_changes_key(self):
        base = SolverConfig()
        assert config_fingerprint(base) != config_fingerprint(
            replace(base, heuristic="none")
        )
        assert config_fingerprint(base) != config_fingerprint(
            replace(base, window_size=64, enumerate_all=False)
        )

    def test_host_only_fields_excluded(self):
        base = SolverConfig()
        assert config_fingerprint(base) == config_fingerprint(
            replace(base, time_limit_s=0.5)
        )
        assert config_fingerprint(base) == config_fingerprint(
            replace(base, chunk_pairs=123)
        )

    def test_enum_spelling_and_enum_value_agree(self):
        # "multi-degree" (string) and Heuristic.MULTI_DEGREE (enum)
        # normalise to the same canonical key
        assert config_fingerprint(SolverConfig(heuristic="multi-degree")) == (
            config_fingerprint(SolverConfig())
        )


class TestRequestKey:
    def test_same_content_same_key(self):
        g1 = gen.erdos_renyi(40, 0.3, seed=7)
        g2 = gen.erdos_renyi(40, 0.3, seed=7)
        assert request_key(g1, SolverConfig()) == request_key(g2, SolverConfig())

    def test_different_graph_different_key(self):
        g1 = gen.erdos_renyi(40, 0.3, seed=7)
        g2 = gen.erdos_renyi(40, 0.3, seed=8)
        assert request_key(g1, SolverConfig()) != request_key(g2, SolverConfig())


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(("g", "c")) is None
        cache.put(("g", "c"), "value")
        assert cache.get(("g", "c")) == "value"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(("a", ""), 1)
        cache.put(("b", ""), 2)
        assert cache.get(("a", "")) == 1  # refresh "a": "b" is now LRU
        cache.put(("c", ""), 3)
        assert cache.get(("b", "")) is None
        assert cache.get(("a", "")) == 1
        assert cache.get(("c", "")) == 3
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put(("g", "c"), "value")
        assert cache.get(("g", "c")) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_clear_keeps_counters(self):
        cache = ResultCache(capacity=4)
        cache.put(("g", "c"), 1)
        cache.get(("g", "c"))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(("g", "c")) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_tracer_counters(self):
        tracer = JsonTracer()
        cache = ResultCache(capacity=1, tracer=tracer)
        cache.get(("a", ""))
        cache.put(("a", ""), 1)
        cache.get(("a", ""))
        cache.put(("b", ""), 2)  # evicts "a"
        assert tracer.counters["service.cache.misses"] == 1
        assert tracer.counters["service.cache.hits"] == 1
        assert tracer.counters["service.cache.evictions"] == 1
