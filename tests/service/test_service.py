"""SolveService end-to-end: caching, admission, the degradation ladder."""

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import MaxCliqueSolver
from repro.errors import DeviceOOMError
from repro.gpusim import Device, DeviceSpec
from repro.graph import generators as gen
from repro.service import SolveService
from repro.trace import JsonTracer

MIB = 1 << 20


@pytest.fixture(scope="module")
def community():
    """Small community graph solved comfortably at any sane budget."""
    return gen.caveman_social(6, 40, p_in=0.35, seed=3)


@pytest.fixture(scope="module")
def community_omega(community):
    return MaxCliqueSolver(community, SolverConfig(), Device()).solve().clique_number


@pytest.fixture(scope="module")
def monster():
    """fb-comm-20x130-sized graph: full search OOMs below ~100 GiB
    projected, windowed succeeds at a few MiB."""
    return gen.caveman_social(20, 130, p_in=0.48, seed=11)


class TestBasics:
    def test_single_job_ok(self, community, community_omega):
        service = SolveService()
        record = service.solve(community)
        assert record.ok and record.status == "ok"
        assert record.clique_number == community_omega
        assert record.attempts == 1
        assert record.admission == "full"
        assert record.cache_hit is False
        assert record.device == 0
        assert record.model_time_s > 0.0
        assert record.result is not None

    def test_record_carries_stage_breakdown(self, community):
        record = SolveService().solve(community)
        assert set(record.stage_model_times) >= {"csr_upload", "setup", "bfs"}
        assert record.model_time_s == pytest.approx(
            sum(record.stage_model_times.values())
        )

    def test_job_ids_and_pending(self, community):
        service = SolveService()
        assert service.submit_graph(community) == "job-0"
        assert service.submit_graph(community, job_id="mine") == "mine"
        assert service.pending == 2
        records = service.run()
        assert service.pending == 0
        assert [r.job_id for r in records] == ["job-0", "mine"]

    def test_submit_graph_rejects_conflicting_args(self, community):
        with pytest.raises(ValueError):
            SolveService().submit_graph(
                community, SolverConfig(), heuristic="none"
            )

    def test_to_dict_is_json_safe(self, community):
        import json

        record = SolveService().solve(community)
        payload = record.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["status"] == "ok"
        assert "result" not in payload
        assert payload["stage_model_times_s"] == record.stage_model_times


class TestCache:
    def test_duplicate_request_hits_cache(self, community):
        tracer = JsonTracer()
        service = SolveService(tracer=tracer)
        service.submit_graph(community)
        service.submit_graph(community)
        first, second = service.run()
        assert first.cache_hit is False and second.cache_hit is True
        # the hit charges zero device model time and runs nothing
        assert second.model_time_s == 0.0
        assert second.attempts == 0
        assert second.admission == "cache"
        assert second.clique_number == first.clique_number
        assert second.stage_model_times == first.stage_model_times
        assert tracer.counters["service.cache.hits"] == 1
        assert tracer.counters["service.cache.misses"] == 1
        # device clock did not move for the cached job
        assert service.pool.total_model_s == pytest.approx(first.model_time_s)

    def test_equal_content_different_instance_hits(self, community):
        twin = gen.caveman_social(6, 40, p_in=0.35, seed=3)
        service = SolveService()
        service.submit_graph(community)
        service.submit_graph(twin)
        assert [r.cache_hit for r in service.run()] == [False, True]

    def test_different_config_misses(self, community):
        service = SolveService()
        service.submit_graph(community)
        service.submit_graph(community, heuristic="none")
        assert [r.cache_hit for r in service.run()] == [False, False]

    def test_cache_disabled(self, community):
        service = SolveService(cache_size=0)
        service.submit_graph(community)
        service.submit_graph(community)
        assert [r.cache_hit for r in service.run()] == [False, False]

    def test_failed_jobs_not_cached(self, community):
        def explode(request, attempt, config):
            raise DeviceOOMError(requested=1, in_use=0, budget=0)

        service = SolveService(fault_hook=explode, max_attempts=2)
        assert service.solve(community).status == "failed"
        service.fault_hook = None
        record = service.solve(community)
        assert record.status == "ok" and record.cache_hit is False


class TestAdmission:
    def test_over_budget_graph_admitted_windowed(self, monster):
        # the full search OOMs at this budget (the admission estimate
        # projects ~90 GiB); the service must land it windowed instead
        service = SolveService(spec=DeviceSpec(memory_bytes=4 * MIB))
        record = service.solve(monster)
        assert record.status == "ok"
        assert record.admission == "windowed"
        assert record.attempts == 1  # admitted right the first time
        assert record.clique_number == 10
        assert record.degraded  # single clique, not full enumeration
        assert "windowed" in record.stage_model_times

    def test_hopeless_budget_rejected(self, monster):
        tracer = JsonTracer()
        service = SolveService(
            spec=DeviceSpec(memory_bytes=MIB), tracer=tracer
        )
        record = service.solve(monster)
        assert record.status == "rejected"
        assert not record.ok
        assert record.attempts == 0  # refused before any launch
        assert record.device is None
        assert "exceeds" in record.admission_reason
        assert service.pool.total_model_s == 0.0
        assert tracer.counters["service.admit.reject"] == 1
        assert tracer.counters["service.jobs.rejected"] == 1

    def test_summary_counts(self, community, monster):
        service = SolveService(spec=DeviceSpec(memory_bytes=8 * MIB))
        service.submit_graph(community)
        service.submit_graph(community)
        service.submit_graph(monster)
        service.run()
        summary = service.summary()
        assert summary.total == 3
        assert summary.ok == 3
        assert summary.cache_hits == 1
        assert summary.rejected == summary.failed == 0
        assert summary.model_time_s > 0.0
        assert summary.to_dict()["devices"] == 1


class TestDegradationLadder:
    def test_injected_oom_retries_windowed(self, community, community_omega):
        """First attempt OOMs; the ladder lands the job windowed."""
        failed = []

        def fail_first(request, attempt, config):
            if attempt == 1:
                failed.append(request.job_id)
                raise DeviceOOMError(requested=MIB, in_use=0, budget=MIB)

        tracer = JsonTracer()
        service = SolveService(fault_hook=fail_first, tracer=tracer)
        record = service.solve(community)
        assert failed == [record.job_id]
        assert record.status == "ok"
        assert record.attempts == 2
        assert record.degraded
        assert record.clique_number == community_omega
        assert "windowed" in record.stage_model_times
        assert tracer.counters["service.retries"] == 1

    def test_max_attempts_exhausts(self, community):
        def always(request, attempt, config):
            raise DeviceOOMError(requested=MIB, in_use=0, budget=MIB)

        service = SolveService(fault_hook=always, max_attempts=2)
        record = service.solve(community)
        assert record.status == "failed"
        assert record.attempts == 2
        assert "DeviceOOMError" in record.error
        assert record.clique_number is None

    def test_real_oom_degrades_without_injection(self, monster):
        """A genuinely over-budget *windowed* request (caller pinned a
        huge window) OOMs for real and is retried smaller."""
        service = SolveService(spec=DeviceSpec(memory_bytes=4 * MIB))
        record = service.solve(
            monster, SolverConfig(window_size=200000, enumerate_all=False)
        )
        assert record.status == "ok"
        assert record.attempts >= 2
        assert record.degraded
        assert record.clique_number == 10


class TestPoolScheduling:
    def test_jobs_spread_across_devices(self, community):
        other = gen.caveman_social(6, 40, p_in=0.35, seed=4)
        service = SolveService(devices=2)
        service.submit_graph(community)
        service.submit_graph(other)
        records = service.run()
        assert sorted(r.device for r in records) == [0, 1]
        summary = service.summary()
        assert summary.makespan_model_s < summary.model_time_s

    def test_sef_runs_cheap_job_first(self, community):
        tiny = gen.road_grid(5, 5)
        service = SolveService(policy="sef")
        service.submit_graph(community, label="big")
        service.submit_graph(tiny, label="small")
        records = service.run()
        assert [r.label for r in records] == ["small", "big"]

    def test_service_span_emitted(self, community):
        tracer = JsonTracer()
        service = SolveService(tracer=tracer)
        service.solve(community)
        spans = [s for s in tracer.spans if s.name == "service.job"]
        assert len(spans) == 1
        assert spans[0].category == "service"
        assert spans[0].attrs["admission"] == "full"


class TestCacheHygiene:
    def test_degraded_record_not_cached(self, community):
        """A degraded answer must not be served for the pristine key."""

        def fail_first(request, attempt, config):
            if request.job_id == "job-0" and attempt == 1:
                raise DeviceOOMError(requested=MIB, in_use=0, budget=MIB)

        service = SolveService(fault_hook=fail_first)
        degraded = service.solve(community)
        assert degraded.status == "ok" and degraded.degraded

        # identical request again: the degraded record must NOT answer it
        service.fault_hook = None
        clean = service.solve(community)
        assert clean.cache_hit is False
        assert not clean.degraded
        assert clean.clique_number == degraded.clique_number

        # the clean record IS cached for the third round
        assert service.solve(community).cache_hit is True


class TestDeviceHygiene:
    def test_retry_starts_from_clean_device_state(self, monster):
        """Each ladder attempt sees zero residual allocations and a
        reset peak -- shared-device accounting must not leak across a
        failed attempt."""
        snapshots = []
        service = SolveService(spec=DeviceSpec(memory_bytes=4 * MIB))
        device = service.pool.devices[0]

        def spy(request, attempt, config):
            snapshots.append(
                (attempt, device.pool.in_use_bytes, device.pool.peak_bytes)
            )

        service.fault_hook = spy
        record = service.solve(
            monster, SolverConfig(window_size=200000, enumerate_all=False)
        )
        assert record.status == "ok"
        assert len(snapshots) >= 2  # a real OOM forced at least one retry
        assert all(in_use == 0 for _, in_use, _ in snapshots)
        assert all(peak == 0 for _, _, peak in snapshots)
        # nothing leaked past the job either
        assert device.pool.in_use_bytes == 0


class TestLadderEdges:
    def test_max_attempts_one_never_consults_ladder(self, community):
        def explode(request, attempt, config):
            raise DeviceOOMError(requested=MIB, in_use=0, budget=MIB)

        tracer = JsonTracer()
        service = SolveService(
            fault_hook=explode, max_attempts=1, tracer=tracer
        )

        def forbidden(config, error):  # pragma: no cover - must not run
            raise AssertionError("ladder consulted despite max_attempts=1")

        service.degradation.next_config = forbidden
        record = service.solve(community)
        assert record.status == "failed"
        assert record.attempts == 1
        assert not record.degraded
        assert "service.retries" not in tracer.counters

    def test_adaptive_single_sublist_oom_is_terminal(self):
        """Adaptive windowing splits down to single sublists; a sublist
        whose own subtree exceeds the budget still OOMs, and the
        service records a clean terminal failure (OOM is a workload
        outcome, not a device fault)."""
        dense = gen.planted_clique(300, 40, avg_degree=2.0, seed=5)
        service = SolveService(spec=DeviceSpec(memory_bytes=2 * MIB))
        record = service.solve(
            dense,
            SolverConfig(
                window_size=32,
                adaptive_windowing=True,
                enumerate_all=False,
                heuristic="none",
            ),
        )
        assert record.status == "failed"
        assert "DeviceOOMError" in record.error
        # already at the ladder's bottom rung: one attempt, no retry
        assert record.attempts == 1
        # the breaker must not trip on OOM
        assert service.pool.health[0].state == "healthy"
        assert service.pool.health[0].total_faults == 0
        # nothing leaked out of the failed job
        assert service.pool.devices[0].pool.in_use_bytes == 0


class TestTimeout:
    def test_default_timeout_applies(self, monster):
        service = SolveService(
            spec=DeviceSpec(memory_bytes=64 * MIB),
            default_timeout_s=1e-6,
            max_attempts=1,
        )
        record = service.solve(monster, SolverConfig(heuristic="none"))
        assert record.status == "failed"
        assert "SolveTimeoutError" in record.error

    def test_per_request_timeout_overrides_default(self, community):
        service = SolveService(default_timeout_s=1e-6)
        record = service.solve(community, timeout_s=60.0)
        assert record.status == "ok"


class TestStatsSnapshot:
    def test_fresh_service(self):
        snap = SolveService(devices=2).stats_snapshot()
        assert snap["jobs"]["total"] == 0
        assert snap["pending"] == 0
        assert snap["cache"] == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0, "capacity": 128,
        }
        assert snap["pool"]["devices"] == 2
        assert snap["pool"]["device_faults"] == 0
        assert len(snap["pool"]["health"]) == 2

    def test_counts_outcomes_and_cache(self, community):
        service = SolveService()
        service.solve(community)
        service.solve(community)  # identical: result-cache hit
        service.submit_graph(community, config=SolverConfig(heuristic="none"))
        snap = service.stats_snapshot()
        assert snap["jobs"]["total"] == 2
        assert snap["jobs"]["ok"] == 2
        assert snap["jobs"]["cache_hits"] == 1
        assert snap["cache"]["hits"] == 1
        assert snap["cache"]["misses"] == 1
        assert snap["cache"]["size"] == 1
        assert snap["pending"] == 1  # the submitted-but-unrun job
        assert snap["model_time_s"] > 0.0

    def test_snapshot_is_a_copy(self, community):
        service = SolveService()
        service.solve(community)
        snap = service.stats_snapshot()
        snap["jobs"]["total"] = 999
        snap["pool"]["health"].clear()
        fresh = service.stats_snapshot()
        assert fresh["jobs"]["total"] == 1
        assert len(fresh["pool"]["health"]) == 1

    def test_concurrent_reads_while_batch_runs(self, community):
        """stats_snapshot must be callable from another thread mid-run."""
        import threading
        import time as _time

        service = SolveService(
            fault_hook=lambda request, attempt, config: _time.sleep(0.05)
        )
        for _ in range(4):
            service.submit_graph(community)
        snaps = []
        stop = threading.Event()

        def _poll():
            while not stop.is_set():
                snaps.append(service.stats_snapshot())
                _time.sleep(0.01)

        poller = threading.Thread(target=_poll)
        poller.start()
        try:
            service.run()
        finally:
            stop.set()
            poller.join(5.0)
        assert snaps, "poller never ran"
        totals = [s["jobs"]["total"] for s in snaps]
        assert totals == sorted(totals)  # monotone, never corrupt
        final = service.stats_snapshot()
        assert final["jobs"]["total"] == 4
        assert final["jobs"]["ok"] == 4
