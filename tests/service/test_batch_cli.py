"""``repro batch`` and the solve ``--timeout`` plumbing (in-process)."""

import json

import pytest

from repro.cli import main
from repro.graph import generators as gen
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    write_edge_list(gen.planted_clique(120, 7, avg_degree=3.0, seed=1), path)
    return str(path)


@pytest.fixture
def jobs_file(tmp_path, graph_file):
    """Three jobs; the duplicate of the first must hit the cache."""
    path = tmp_path / "jobs.json"
    path.write_text(
        json.dumps(
            [
                {"id": "first", "graph": graph_file},
                {"id": "again", "graph": graph_file},
                {"id": "other", "graph": "road-grid-60"},
            ]
        )
    )
    return str(path)


class TestBatch:
    def test_text_output(self, jobs_file, capsys):
        assert main(["batch", jobs_file]) == 0
        out = capsys.readouterr().out
        assert "job first" in out and "job again" in out
        assert "3/3 ok" in out
        assert "1 cache hit(s)" in out

    def test_json_payload(self, jobs_file, capsys):
        assert main(["batch", jobs_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        jobs = {j["job_id"]: j for j in payload["jobs"]}
        assert set(jobs) == {"first", "again", "other"}
        assert all(j["status"] == "ok" for j in jobs.values())
        assert jobs["first"]["cache_hit"] is False
        assert jobs["again"]["cache_hit"] is True
        assert jobs["again"]["model_time_s"] == 0.0
        assert jobs["first"]["clique_number"] == 7
        assert jobs["first"]["stage_model_times_s"]  # per-stage breakdown
        assert payload["summary"]["cache_hits"] == 1
        assert payload["summary"]["ok"] == 3
        assert len(payload["devices"]) == 1

    def test_output_file(self, jobs_file, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(["batch", jobs_file, "--output", str(report)]) == 0
        capsys.readouterr()
        assert json.loads(report.read_text())["summary"]["total"] == 3

    def test_devices_and_policy(self, jobs_file, capsys):
        assert main(["batch", jobs_file, "--devices", "2", "--policy", "sef"]) == 0
        assert "2 device(s)" in capsys.readouterr().out

    def test_cache_disabled(self, jobs_file, capsys):
        assert main(["batch", jobs_file, "--cache-size", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["cache_hits"] == 0

    def test_bad_jobs_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"graph": "g", "confg": {}}]))
        assert main(["batch", str(path)]) == 2
        assert "confg" in capsys.readouterr().out

    def test_missing_jobs_file_exits_2(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_failed_job_exits_1(self, tmp_path, graph_file, capsys):
        # an impossible per-job timeout on an un-shortcut config fails
        # that job; the batch reports it and exits 1
        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                [
                    {"id": "doomed", "graph": "soc-comm-10x50",
                     "config": {"heuristic": "none"}},
                    # explicit per-job budget overrides the batch default
                    {"id": "fine", "graph": graph_file, "timeout_s": 60},
                ]
            )
        )
        code = main(["batch", str(path), "--timeout", "1e-6",
                     "--max-attempts", "1", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        jobs = {j["job_id"]: j for j in payload["jobs"]}
        assert jobs["doomed"]["status"] == "failed"
        assert "SolveTimeoutError" in jobs["doomed"]["error"]

    def test_trace_export(self, jobs_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["batch", jobs_file, "--trace", str(trace)]) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text())
        assert payload["counters"]["service.cache.hits"] == 1
        names = {s["name"] for s in payload["spans"]}
        assert "service.job" in names


class TestSolveTimeout:
    def test_timeout_exit_code_3(self, capsys):
        code = main(
            ["solve", "soc-comm-10x50", "--heuristic", "none",
             "--timeout", "1e-6"]
        )
        assert code == 3
        assert "timeout" in capsys.readouterr().out

    def test_timeout_wins_over_time_limit(self, capsys):
        # --timeout takes precedence over --time-limit when both given
        code = main(
            ["solve", "soc-comm-10x50", "--heuristic", "none",
             "--time-limit", "60", "--timeout", "1e-6"]
        )
        assert code == 3
        capsys.readouterr()

    def test_no_timeout_still_solves(self, capsys):
        assert main(["solve", "soc-comm-10x50", "--max-report", "1"]) == 0
        assert "omega=" in capsys.readouterr().out
