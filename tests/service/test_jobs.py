"""Job-file parsing: schema, defaults merging, loud failures."""

import json

import pytest

from repro.errors import JobSpecError
from repro.graph import generators as gen
from repro.graph.io import write_edge_list
from repro.service import load_jobs, parse_jobs, resolve_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    write_edge_list(gen.planted_clique(60, 5, avg_degree=3.0, seed=2), path)
    return str(path)


class TestResolveGraph:
    def test_file_path(self, graph_file):
        assert resolve_graph(graph_file).num_vertices == 60

    def test_dataset_name(self):
        assert resolve_graph("road-grid-60").num_vertices == 3600

    def test_unknown_raises_jobspec(self):
        with pytest.raises(JobSpecError, match="neither"):
            resolve_graph("no-such-graph")


class TestParseJobs:
    def test_bare_list(self, graph_file):
        reqs = parse_jobs([{"graph": graph_file}])
        assert len(reqs) == 1
        assert reqs[0].label == graph_file  # label defaults to graph name
        assert reqs[0].job_id is None  # service assigns later

    def test_full_schema(self, graph_file):
        reqs = parse_jobs(
            {
                "defaults": {"timeout_s": 5.0, "config": {"heuristic": "none"}},
                "jobs": [
                    {
                        "id": "a",
                        "graph": graph_file,
                        "priority": 2,
                        "label": "first",
                        "config": {"window_size": 64, "enumerate_all": False},
                    },
                    {"graph": graph_file, "timeout_s": 1.0},
                ],
            }
        )
        a, b = reqs
        assert (a.job_id, a.priority, a.timeout_s, a.label) == ("a", 2, 5.0, "first")
        # job config merges over defaults.config
        assert a.config.window_size == 64
        assert a.config.heuristic.value == "none"
        assert b.timeout_s == 1.0
        assert b.config.window_size is None

    def test_unknown_job_key(self, graph_file):
        with pytest.raises(JobSpecError, match="confg"):
            parse_jobs([{"graph": graph_file, "confg": {}}])

    def test_unknown_config_key(self, graph_file):
        with pytest.raises(JobSpecError, match="heuristc"):
            parse_jobs([{"graph": graph_file, "config": {"heuristc": "none"}}])

    def test_invalid_config_combination(self, graph_file):
        with pytest.raises(JobSpecError, match="invalid config"):
            parse_jobs(
                [{"graph": graph_file, "config": {"adaptive_windowing": True}}]
            )

    def test_unknown_top_level_key(self):
        with pytest.raises(JobSpecError, match="top-level"):
            parse_jobs({"jobs": [], "extra": 1})

    def test_missing_jobs(self):
        with pytest.raises(JobSpecError, match="jobs"):
            parse_jobs({"defaults": {}})

    def test_empty_jobs_list(self):
        with pytest.raises(JobSpecError, match="non-empty"):
            parse_jobs([])

    def test_graph_required(self):
        with pytest.raises(JobSpecError, match="graph"):
            parse_jobs([{"id": "a"}])


class TestLoadJobs:
    def test_round_trip(self, tmp_path, graph_file):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps([{"graph": graph_file}]))
        assert len(load_jobs(path)) == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(JobSpecError, match="cannot read"):
            load_jobs(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(JobSpecError, match="not valid JSON"):
            load_jobs(path)
