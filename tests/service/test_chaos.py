"""Chaos harness: seeded faults must never change an answer.

A fault plan injects transient kernel faults, flaky allocations, and
device loss into the pool; the service absorbs them through same-config
retries, checkpoint resume, and migration. Every test here asserts the
chaos run is EQUIVALENT to the fault-free run -- same statuses, same
omega, same counts, same witness cliques -- with only the fault/retry/
migration accounting differing.
"""

import numpy as np
import pytest

from repro.core import MaxCliqueSolver, SolverConfig
from repro.errors import DeviceLostError, TransientKernelError
from repro.gpusim import Device, FaultEvent, FaultPlan
from repro.gpusim.spec import DeviceSpec
from repro.graph import generators as gen
from repro.service import DegradationPolicy, DevicePool, SolveService
from repro.service.scheduler import HEALTHY, PROBATION, QUARANTINED
from repro.trace import JsonTracer

MIB = 1 << 20


@pytest.fixture(scope="module")
def community():
    return gen.caveman_social(6, 40, p_in=0.35, seed=3)


@pytest.fixture(scope="module")
def planted():
    return gen.planted_clique(600, 9, avg_degree=5.0, seed=7)


@pytest.fixture(scope="module")
def spec():
    return DeviceSpec(memory_bytes=8 * MIB)


@pytest.fixture(scope="module")
def community_launches(community, spec):
    """Charged launches of the fault-free windowed community solve."""
    device = Device(spec)
    MaxCliqueSolver(community, SolverConfig(window_size=256), device).solve()
    return device.stats().kernel_launches


def _run(jobs, spec, fault_plan=None, devices=2, **svc_kwargs):
    tracer = JsonTracer()
    svc = SolveService(
        devices=devices,
        spec=spec,
        cache_size=0,
        tracer=tracer,
        fault_plan=fault_plan,
        **svc_kwargs,
    )
    for graph, config in jobs:
        svc.submit_graph(graph, config)
    records = svc.run()
    return records, tracer, svc


def _signatures(records):
    """Everything about a run that faults must NOT change."""
    return [
        (
            r.job_id,
            r.status,
            r.clique_number,
            r.num_maximum_cliques,
            r.enumerated_all,
            None if r.result is None else np.asarray(r.result.cliques).tolist(),
        )
        for r in records
    ]


class TestChaosEquivalence:
    def test_device_lost_migrates_and_matches(
        self, community, spec, community_launches
    ):
        jobs = [(community, SolverConfig(window_size=256))]
        clean, _, _ = _run(jobs, spec)
        plan = FaultPlan(
            [FaultEvent(0, "launch", community_launches // 3, "device-lost")]
        )
        chaos, tracer, svc = _run(jobs, spec, fault_plan=plan)

        assert _signatures(chaos) == _signatures(clean)
        assert chaos[0].migrations == 1
        assert chaos[0].device == 1  # landed on the healthy device
        assert tracer.counters["service.faults.device_lost"] == 1
        assert tracer.counters["device.0.faults.device_lost"] == 1
        assert tracer.counters["service.migrations"] == 1
        assert tracer.counters["service.checkpoint.resumes"] >= 1
        spans = [s for s in tracer.spans if s.name == "service.migrations"]
        assert len(spans) == 1
        assert spans[0].attrs["from_device"] == 0
        assert spans[0].attrs["to_device"] == 1
        assert spans[0].attrs["resumed_from_checkpoint"] is True
        # the lost device tripped its breaker
        assert svc.pool.health[0].state == QUARANTINED
        assert svc.summary().migrations == 1

    def test_transient_kernel_resumes_mid_sweep(
        self, community, spec, community_launches
    ):
        jobs = [(community, SolverConfig(window_size=256))]
        clean, _, _ = _run(jobs, spec)
        plan = FaultPlan(
            [
                FaultEvent(
                    0, "launch", community_launches // 2, "transient-kernel"
                )
            ]
        )
        chaos, tracer, svc = _run(jobs, spec, fault_plan=plan)

        assert _signatures(chaos) == _signatures(clean)
        assert chaos[0].transient_retries == 1
        assert chaos[0].migrations == 0
        assert tracer.counters["service.faults.transient_kernel"] == 1
        assert tracer.counters["service.retries.transient"] == 1
        # mid-sweep fault: the retry resumed from a completed window
        # instead of restarting the sweep
        assert tracer.counters["service.checkpoint.resumes"] >= 1
        assert tracer.counters["search.checkpoint.resumed"] >= 1
        # one transient fault must not trip the breaker
        assert svc.pool.health[0].state == HEALTHY

    def test_flaky_alloc_retries_and_matches(self, community, spec):
        jobs = [(community, SolverConfig(window_size=256))]
        clean, _, _ = _run(jobs, spec)
        plan = FaultPlan([FaultEvent(0, "alloc", 4, "flaky-alloc")])
        chaos, tracer, _ = _run(jobs, spec, fault_plan=plan)

        assert _signatures(chaos) == _signatures(clean)
        assert chaos[0].transient_retries == 1
        assert not chaos[0].degraded  # flaky alloc is not an OOM rung
        assert tracer.counters["service.faults.flaky_alloc"] == 1
        assert tracer.counters["device.0.faults.flaky_alloc"] == 1

    def test_mixed_plan_multi_job(
        self, community, planted, spec, community_launches
    ):
        jobs = [
            (community, SolverConfig(window_size=256)),
            (planted, SolverConfig(window_size=512)),
            (planted, SolverConfig(enumerate_all=False)),
        ]
        clean, _, _ = _run(jobs, spec)
        plan = FaultPlan(
            [
                FaultEvent(0, "launch", community_launches // 3, "device-lost"),
                FaultEvent(1, "launch", 5, "transient-kernel"),
                FaultEvent(1, "alloc", 9, "flaky-alloc"),
            ]
        )
        chaos, tracer, svc = _run(jobs, spec, fault_plan=plan)

        assert all(r.status == "ok" for r in chaos)
        assert _signatures(chaos) == _signatures(clean)
        summary = svc.summary()
        assert summary.migrations >= 1
        assert summary.transient_retries >= 2
        assert summary.device_faults == 3
        assert tracer.counters["service.migrations"] >= 1
        assert tracer.counters["service.checkpoint.resumes"] >= 1

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_seeded_rate_plans_match(self, community, planted, spec, seed):
        jobs = [
            (community, SolverConfig(window_size=256)),
            (planted, SolverConfig(window_size=512)),
        ]
        clean, _, _ = _run(jobs, spec)
        plan = FaultPlan.from_rates(
            seed,
            devices=2,
            horizon=2000,
            transient_kernel=0.01,
            flaky_alloc=0.02,
            device_lost=0.002,
        )
        # generous budgets: the harness asserts the service can absorb
        # every injected fault, not that the budgets are tight
        chaos, _, svc = _run(
            jobs,
            spec,
            fault_plan=plan,
            degradation=DegradationPolicy(
                max_transient_retries=64, max_migrations=16
            ),
        )

        assert _signatures(chaos) == _signatures(clean)
        # the plan must actually have fired, or this test proves nothing
        assert svc.summary().device_faults >= 1

    def test_fault_free_plan_is_invisible(self, community, spec):
        jobs = [(community, SolverConfig(window_size=256))]
        clean, _, clean_svc = _run(jobs, spec)
        # faults far beyond the run's ordinal range: never fire
        plan = FaultPlan([FaultEvent(0, "launch", 10**9, "device-lost")])
        chaos, tracer, svc = _run(jobs, spec, fault_plan=plan)

        assert _signatures(chaos) == _signatures(clean)
        assert chaos[0].model_time_s == clean[0].model_time_s
        assert svc.summary().device_faults == 0
        assert "service.faults.device_lost" not in tracer.counters


class TestChaosBudgets:
    def test_transient_budget_exhaustion_fails_job(self, community, spec):
        # four faults on successive launches against a budget of three
        plan = FaultPlan(
            [
                FaultEvent(0, "launch", k, "transient-kernel")
                for k in (5, 6, 7, 8)
            ]
        )
        chaos, _, _ = _run(
            jobs=[(community, SolverConfig(window_size=256))],
            spec=spec,
            devices=1,
            fault_plan=plan,
            degradation=DegradationPolicy(max_transient_retries=3),
        )
        assert chaos[0].status == "failed"
        assert chaos[0].transient_retries == 3
        assert "TransientKernelError" in chaos[0].error

    def test_migration_budget_exhaustion_fails_job(self, community, spec):
        plan = FaultPlan(
            [
                FaultEvent(0, "launch", 5, "device-lost"),
                FaultEvent(1, "launch", 5, "device-lost"),
            ]
        )
        chaos, _, _ = _run(
            jobs=[(community, SolverConfig(window_size=256))],
            spec=spec,
            fault_plan=plan,
            degradation=DegradationPolicy(max_migrations=1),
        )
        assert chaos[0].status == "failed"
        assert chaos[0].migrations == 1
        assert "DeviceLostError" in chaos[0].error


class TestThreadedChaosParity:
    """Chaos runs under ``executor="threaded"`` are byte-equivalent to serial.

    Installed fault injectors (and the recording tracer) force the
    threaded executor onto its ordered hand-off path, so every retry,
    migration, and breaker transition must land identically -- only
    host wall time may differ.
    """

    @staticmethod
    def _strip_wall(record):
        d = record.to_dict()
        d.pop("wall_time_s", None)
        return d

    def _run_pair(self, jobs, spec, fault_plan, **svc_kwargs):
        serial = _run(jobs, spec, fault_plan=fault_plan, **svc_kwargs)
        threaded = _run(
            jobs,
            spec,
            fault_plan=fault_plan,
            executor="threaded",
            workers=2,
            **svc_kwargs,
        )
        s_recs, s_tracer, s_svc = serial
        t_recs, t_tracer, t_svc = threaded
        assert [self._strip_wall(r) for r in t_recs] == [
            self._strip_wall(r) for r in s_recs
        ]
        assert t_tracer.counters == s_tracer.counters
        assert [s.name for s in t_tracer.spans] == [s.name for s in s_tracer.spans]
        assert [h.state for h in t_svc.pool.health] == [
            h.state for h in s_svc.pool.health
        ]
        t_sum, s_sum = t_svc.summary().to_dict(), s_svc.summary().to_dict()
        t_sum.pop("wall_time_s", None)
        s_sum.pop("wall_time_s", None)
        assert t_sum == s_sum
        return s_recs, t_recs, t_svc

    def test_device_lost_migration_parity(
        self, community, spec, community_launches
    ):
        jobs = [(community, SolverConfig(window_size=256))]
        plan = FaultPlan(
            [FaultEvent(0, "launch", community_launches // 3, "device-lost")]
        )
        _s, chaos, svc = self._run_pair(jobs, spec, plan)
        assert chaos[0].migrations == 1
        assert svc.pool.health[0].state == QUARANTINED

    def test_mixed_fault_plan_parity(
        self, community, planted, spec, community_launches
    ):
        jobs = [
            (community, SolverConfig(window_size=256)),
            (planted, SolverConfig(window_size=512)),
            (planted, SolverConfig(enumerate_all=False)),
        ]
        plan = FaultPlan(
            [
                FaultEvent(0, "launch", community_launches // 3, "device-lost"),
                FaultEvent(1, "launch", 5, "transient-kernel"),
                FaultEvent(1, "alloc", 9, "flaky-alloc"),
            ]
        )
        _s, chaos, svc = self._run_pair(jobs, spec, plan)
        assert all(r.status == "ok" for r in chaos)
        assert svc.summary().device_faults == 3

    def test_seeded_rate_plan_parity(self, community, planted, spec):
        jobs = [
            (community, SolverConfig(window_size=256)),
            (planted, SolverConfig(window_size=512)),
        ]
        plan = FaultPlan.from_rates(
            17,
            devices=2,
            horizon=2000,
            transient_kernel=0.01,
            flaky_alloc=0.02,
            device_lost=0.002,
        )
        _s, _t, svc = self._run_pair(
            jobs,
            spec,
            plan,
            degradation=DegradationPolicy(
                max_transient_retries=64, max_migrations=16
            ),
        )
        assert svc.summary().device_faults >= 1

    def test_budget_exhaustion_parity(self, community, spec):
        plan = FaultPlan(
            [
                FaultEvent(0, "launch", k, "transient-kernel")
                for k in (5, 6, 7, 8)
            ]
        )
        _s, chaos, _svc = self._run_pair(
            [(community, SolverConfig(window_size=256))],
            spec,
            plan,
            devices=1,
            degradation=DegradationPolicy(max_transient_retries=3),
        )
        assert chaos[0].status == "failed"
        assert chaos[0].transient_retries == 3


class TestPoolHealth:
    """The circuit-breaker state machine, driven directly."""

    def test_quarantine_after_consecutive_threshold(self):
        pool = DevicePool(2, fault_threshold=3)
        err = TransientKernelError("glitch")
        pool.note_fault(0, err)
        pool.note_fault(0, err)
        assert pool.health[0].state == HEALTHY
        pool.note_fault(0, err)
        assert pool.health[0].state == QUARANTINED
        assert pool.health[0].backoff == pool.backoff_base
        assert pool.health[0].total_faults == 3

    def test_success_resets_consecutive_count(self):
        pool = DevicePool(1, fault_threshold=3)
        err = TransientKernelError("glitch")
        pool.note_fault(0, err)
        pool.note_fault(0, err)
        pool.note_success(0)
        pool.note_fault(0, err)
        pool.note_fault(0, err)
        assert pool.health[0].state == HEALTHY

    def test_device_lost_quarantines_immediately(self):
        pool = DevicePool(2, fault_threshold=3)
        pool.note_fault(0, DeviceLostError())
        assert pool.health[0].state == QUARANTINED

    def test_quarantined_device_not_placed_during_backoff(self):
        pool = DevicePool(2)
        pool.note_fault(0, DeviceLostError())
        for _ in range(pool.health[0].backoff):
            i, _dev = pool.least_loaded()
            pool.note_dispatch(i)
            assert i == 1

    def test_backoff_lapses_into_probation(self):
        pool = DevicePool(2, backoff_base=2)
        pool.note_fault(0, TransientKernelError("g"))
        pool.note_fault(0, TransientKernelError("g"))
        pool.note_fault(0, TransientKernelError("g"))
        assert pool.health[0].state == QUARANTINED
        for _ in range(pool.health[0].backoff):
            i, _dev = pool.least_loaded()
            pool.note_dispatch(i)
        # backoff expired: the device is eligible again, on probation
        assert pool._eligible(0)
        assert pool.health[0].state == PROBATION

    def test_probation_success_restores_health(self):
        pool = DevicePool(1, fault_threshold=1)
        pool.note_fault(0, TransientKernelError("g"))
        i, _dev = pool.least_loaded()  # force-revive: single device
        assert pool.health[0].state == PROBATION
        pool.note_success(0)
        assert pool.health[0].state == HEALTHY

    def test_probation_fault_doubles_backoff(self):
        pool = DevicePool(1, fault_threshold=1, backoff_base=2)
        pool.note_fault(0, TransientKernelError("g"))
        first_backoff = pool.health[0].backoff
        pool.least_loaded()  # lapse into probation
        pool.note_fault(0, TransientKernelError("g"))  # probation fault
        assert pool.health[0].state == QUARANTINED
        assert pool.health[0].backoff == 2 * first_backoff
        assert pool.health[0].quarantines == 2

    def test_single_device_pool_cannot_starve(self):
        pool = DevicePool(1)
        pool.devices[0].mark_lost()
        pool.note_fault(0, DeviceLostError())
        assert pool.health[0].state == QUARANTINED
        i, device = pool.least_loaded()
        assert i == 0
        assert not device.lost  # lost device was replaced on revival
        assert pool.health[0].replacements == 1

    def test_replacement_inherits_model_clock_and_injector(self):
        pool = DevicePool(1)
        plan = FaultPlan([FaultEvent(0, "launch", 10**9, "device-lost")])
        pool.install_fault_plan(plan)
        injector = pool.devices[0].fault_injector
        pool.devices[0].charge_time(1.25)
        pool.devices[0].mark_lost()
        pool.note_fault(0, DeviceLostError())
        _i, fresh = pool.least_loaded()
        assert fresh.model_time_s == pytest.approx(1.25)
        assert fresh.fault_injector is injector

    def test_pool_summary_reports_health(self):
        pool = DevicePool(2)
        pool.note_fault(1, DeviceLostError())
        report = pool.summary()
        assert report[0]["health"]["state"] == HEALTHY
        assert report[1]["health"]["state"] == QUARANTINED
        assert report[1]["health"]["total_faults"] == 1
