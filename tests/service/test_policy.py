"""Degradation ladder: every rung, and where it ends."""

import pytest

from repro.core.config import SolverConfig
from repro.errors import DeviceOOMError, GraphFormatError, SolveTimeoutError
from repro.service import DegradationPolicy

OOM = DeviceOOMError(requested=1024, in_use=0, budget=512)
TIMEOUT = SolveTimeoutError("slow")


@pytest.fixture
def policy():
    return DegradationPolicy(max_attempts=3, min_window=64)


class TestOOMLadder:
    def test_full_falls_back_to_windowed(self, policy):
        nxt = policy.next_config(SolverConfig(), OOM)
        assert nxt is not None
        assert nxt.window_size == "auto"
        assert nxt.adaptive_windowing
        assert not nxt.enumerate_all

    def test_auto_window_falls_back_to_fixed(self, policy):
        cfg = SolverConfig(window_size="auto")
        nxt = policy.next_config(cfg, OOM)
        assert isinstance(nxt.window_size, int)
        assert nxt.window_size >= policy.min_window
        assert nxt.adaptive_windowing

    def test_fixed_window_halves(self, policy):
        cfg = SolverConfig(window_size=4096)
        nxt = policy.next_config(cfg, OOM)
        assert nxt.window_size == 2048

    def test_halving_floors_at_min_window(self, policy):
        cfg = SolverConfig(window_size=100)
        nxt = policy.next_config(cfg, OOM)
        assert nxt.window_size == policy.min_window

    def test_ladder_exhausts_at_min_window(self, policy):
        cfg = SolverConfig(window_size=64, adaptive_windowing=True)
        assert policy.next_config(cfg, OOM) is None

    def test_fanout_reset_for_adaptive_retry(self, policy):
        cfg = SolverConfig(window_size=1024, window_fanout=4)
        nxt = policy.next_config(cfg, OOM)
        assert nxt.window_fanout == 1
        assert nxt.adaptive_windowing


class TestTimeoutLadder:
    def test_enumeration_degrades_to_early_exit(self, policy):
        nxt = policy.next_config(SolverConfig(), TIMEOUT)
        assert nxt is not None
        assert not nxt.enumerate_all
        assert nxt.early_exit_heuristic
        assert nxt.window_size == "auto"

    def test_single_clique_gains_early_exit(self, policy):
        cfg = SolverConfig(window_size=256, enumerate_all=False)
        nxt = policy.next_config(cfg, TIMEOUT)
        assert nxt.early_exit_heuristic
        assert nxt.window_size == 256

    def test_cheapest_mode_gives_up(self, policy):
        cfg = SolverConfig(
            window_size=256, enumerate_all=False, early_exit_heuristic=True
        )
        assert policy.next_config(cfg, TIMEOUT) is None

    def test_configs_stay_valid_down_the_ladder(self, policy):
        # every rung must produce a SolverConfig that passes validation
        # (replace() re-runs __post_init__); walking until exhaustion
        # proves no rung emits an inconsistent combination
        cfg = SolverConfig()
        for error in (TIMEOUT, OOM, OOM, OOM, OOM, OOM, OOM):
            nxt = policy.next_config(cfg, error)
            if nxt is None:
                break
            cfg = nxt


class TestPolicyEdges:
    def test_non_retryable_error(self, policy):
        assert policy.next_config(SolverConfig(), GraphFormatError("bad")) is None

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            DegradationPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            DegradationPolicy(min_window=0)
        with pytest.raises(ValueError):
            DegradationPolicy(max_transient_retries=-1)
        with pytest.raises(ValueError):
            DegradationPolicy(max_migrations=-1)

    def test_at_min_window_without_adaptive_gains_adaptive(self, policy):
        # exactly at the floor but not yet adaptive: one more rung
        # exists (same window, adaptive splitting turned on)
        cfg = SolverConfig(window_size=64)
        nxt = policy.next_config(cfg, OOM)
        assert nxt is not None
        assert nxt.window_size == policy.min_window
        assert nxt.adaptive_windowing

    def test_below_min_window_adaptive_exhausts(self, policy):
        cfg = SolverConfig(window_size=32, adaptive_windowing=True)
        assert policy.next_config(cfg, OOM) is None

    def test_below_min_window_never_grows(self, policy):
        # a sub-floor window without adaptive gains adaptive but must
        # not be grown back up past what the caller asked for
        cfg = SolverConfig(window_size=32)
        nxt = policy.next_config(cfg, OOM)
        assert nxt is not None
        assert nxt.window_size <= policy.min_window
        assert nxt.adaptive_windowing

    def test_transient_errors_are_not_ladder_rungs(self, policy):
        from repro.errors import (
            DeviceLostError,
            FlakyAllocError,
            TransientKernelError,
        )

        # transient faults and device loss must never change the
        # config: the service retries/migrates with the same one
        for error in (
            TransientKernelError("glitch"),
            FlakyAllocError("glitch"),
            DeviceLostError(),
        ):
            assert policy.next_config(SolverConfig(), error) is None

    def test_transient_budgets_default_sane(self):
        policy = DegradationPolicy()
        assert policy.max_transient_retries >= 1
        assert policy.max_migrations >= 1
