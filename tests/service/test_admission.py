"""Admission control: memory estimates and launch-mode decisions."""

import pytest

from repro.core.config import SolverConfig
from repro.graph import generators as gen
from repro.service import (
    AdmissionController,
    estimate_memory,
    windowed_variant,
)
from repro.service.admission import ADMIT_FULL, ADMIT_WINDOWED, REJECT

MIB = 1 << 20


@pytest.fixture(scope="module")
def sparse():
    """Large-n, low-degree: tiny Moon-Moser expansion."""
    return gen.road_grid(30, 30)


@pytest.fixture(scope="module")
def dense():
    """Community graph with heavy tails: huge projected expansion."""
    return gen.caveman_social(20, 130, p_in=0.48, seed=11)


class TestEstimate:
    def test_components_positive(self, sparse):
        est = estimate_memory(sparse)
        assert est.csr_bytes > 0
        assert est.working_bytes == 16 * sparse.num_vertices
        assert est.two_clique_bytes == 8 * sparse.num_edges
        assert est.expansion_factor >= 1.0
        assert est.full_total_bytes >= est.windowed_floor_bytes > 0

    def test_denser_graph_larger_expansion(self, sparse, dense):
        assert (
            estimate_memory(dense).expansion_factor
            > estimate_memory(sparse).expansion_factor
        )

    def test_expansion_capped(self):
        g = gen.planted_clique(300, 200, avg_degree=150.0, seed=1)
        est = estimate_memory(g)
        assert est.expansion_factor <= 3.0 ** (48.0 / 3.0)


class TestDecide:
    def test_sparse_graph_admitted_full(self, sparse):
        decision = AdmissionController().decide(sparse, SolverConfig(), 192 * MIB)
        assert decision.decision == ADMIT_FULL
        assert decision.admitted
        assert decision.config == SolverConfig()

    def test_over_budget_rewritten_windowed(self, dense):
        decision = AdmissionController().decide(dense, SolverConfig(), 8 * MIB)
        assert decision.decision == ADMIT_WINDOWED
        assert decision.admitted
        assert decision.config.windowed
        assert decision.config.window_size == "auto"
        assert decision.config.adaptive_windowing
        assert "Moon-Moser" in decision.reason

    def test_below_floor_rejected(self, dense):
        floor = estimate_memory(dense).windowed_floor_bytes
        decision = AdmissionController().decide(dense, SolverConfig(), floor - 1)
        assert decision.decision == REJECT
        assert not decision.admitted
        assert "exceeds" in decision.reason
        # the original config comes back untouched
        assert decision.config == SolverConfig()

    def test_requested_windowing_preserved(self, sparse):
        config = SolverConfig(window_size=256)
        decision = AdmissionController().decide(sparse, config, 192 * MIB)
        assert decision.decision == ADMIT_WINDOWED
        assert decision.config.window_size == 256  # user's choice kept

    def test_unbounded_budget_never_rejects(self, dense):
        decision = AdmissionController().decide(dense, SolverConfig(), None)
        assert decision.decision == ADMIT_FULL
        assert decision.budget_bytes is None

    def test_safety_factor_tightens_full(self, sparse):
        est = estimate_memory(sparse)
        budget = est.full_total_bytes + 1  # fits outright, not with headroom
        loose = AdmissionController(safety_factor=1.0).decide(
            sparse, SolverConfig(), budget
        )
        tight = AdmissionController(safety_factor=0.5).decide(
            sparse, SolverConfig(), budget
        )
        assert loose.decision == ADMIT_FULL
        assert tight.decision == ADMIT_WINDOWED

    def test_bad_safety_factor(self):
        with pytest.raises(ValueError):
            AdmissionController(safety_factor=0.0)
        with pytest.raises(ValueError):
            AdmissionController(safety_factor=1.5)


class TestWindowedVariant:
    def test_defaults_to_auto_adaptive(self):
        rewritten = windowed_variant(SolverConfig())
        assert rewritten.window_size == "auto"
        assert rewritten.adaptive_windowing
        assert not rewritten.enumerate_all  # windowed implies single-clique

    def test_existing_window_size_kept(self):
        rewritten = windowed_variant(SolverConfig(window_size=128))
        assert rewritten.window_size == 128
        assert rewritten.adaptive_windowing

    def test_fanout_blocks_adaptive(self):
        rewritten = windowed_variant(
            SolverConfig(window_size=128, window_fanout=4)
        )
        assert rewritten.window_fanout == 4
        assert not rewritten.adaptive_windowing
