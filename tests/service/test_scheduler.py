"""Job ordering policies and the device pool."""

import pytest

from repro.graph import generators as gen
from repro.gpusim import DeviceSpec
from repro.service import DevicePool, Scheduler, SolveRequest, expected_cost

MIB = 1 << 20


def _req(graph, seq, priority=0):
    r = SolveRequest(graph=graph, priority=priority)
    r.seq = seq
    r.job_id = f"job-{seq}"
    return r


@pytest.fixture(scope="module")
def small():
    return gen.road_grid(10, 10)


@pytest.fixture(scope="module")
def big():
    return gen.caveman_social(10, 50, p_in=0.45, seed=5)


class TestExpectedCost:
    def test_denser_costs_more(self, small, big):
        assert expected_cost(big) > expected_cost(small)

    def test_cost_is_pure(self, big):
        assert expected_cost(big) == expected_cost(big)

    def test_empty_graph(self):
        assert expected_cost(gen.erdos_renyi(5, 0.0)) == 0.0


class TestScheduler:
    def test_fifo_preserves_submission_order(self, small, big):
        reqs = [_req(big, 0), _req(small, 1), _req(big, 2)]
        assert [r.seq for r in Scheduler("fifo").order(reqs)] == [0, 1, 2]

    def test_sef_puts_cheap_jobs_first(self, small, big):
        reqs = [_req(big, 0), _req(small, 1)]
        assert [r.seq for r in Scheduler("sef").order(reqs)] == [1, 0]

    def test_priority_dominates_both_policies(self, small, big):
        reqs = [_req(small, 0), _req(big, 1, priority=5)]
        for policy in ("fifo", "sef"):
            assert [r.seq for r in Scheduler(policy).order(reqs)] == [1, 0]

    def test_sef_ties_break_by_submission(self, small):
        reqs = [_req(small, 0), _req(small, 1), _req(small, 2)]
        assert [r.seq for r in Scheduler("sef").order(reqs)] == [0, 1, 2]

    def test_order_does_not_mutate_input(self, small, big):
        reqs = [_req(big, 0), _req(small, 1)]
        Scheduler("sef").order(reqs)
        assert [r.seq for r in reqs] == [0, 1]

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Scheduler("lifo")


class TestDevicePool:
    def test_least_loaded_prefers_idle_device(self):
        pool = DevicePool(2, DeviceSpec(memory_bytes=MIB))
        i, device = pool.least_loaded()
        assert i == 0  # tie broken by lowest index
        device.charge_time(1e-3)
        assert pool.least_loaded()[0] == 1

    def test_makespan_and_total(self):
        pool = DevicePool(2, DeviceSpec(memory_bytes=MIB))
        pool.devices[0].charge_time(3e-3)
        pool.devices[1].charge_time(1e-3)
        assert pool.makespan_model_s == pytest.approx(3e-3)
        assert pool.total_model_s == pytest.approx(4e-3)

    def test_summary_shape(self):
        pool = DevicePool(2, DeviceSpec(memory_bytes=MIB))
        pool.note_dispatch(1)
        summary = pool.summary()
        assert [d["device"] for d in summary] == [0, 1]
        assert [d["jobs"] for d in summary] == [0, 1]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DevicePool(0)
