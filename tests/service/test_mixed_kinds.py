"""Mixed problem kinds through the solve service.

One service run may interleave max-clique, k-clique-count, and
maximal-enum jobs: records must carry the right per-kind figures, the
result cache must key kinds apart, the threaded executor must stay
byte-identical to the serial one, and the chaos harness must hold for
non-default kinds (faults change accounting, never answers).
"""

import pytest

from repro.baselines import count_k_cliques_reference, maximal_clique_set
from repro.core import MaxCliqueSolver, SolverConfig
from repro.core.config import config_fingerprint
from repro.errors import JobSpecError
from repro.gpusim import Device, FaultEvent, FaultPlan
from repro.gpusim.spec import DeviceSpec
from repro.graph import generators as gen
from repro.service import SolveService
from repro.service.jobs import parse_jobs

MIB = 1 << 20


@pytest.fixture(scope="module")
def community():
    return gen.caveman_social(5, 30, p_in=0.35, seed=3)


@pytest.fixture(scope="module")
def spec():
    return DeviceSpec(memory_bytes=32 * MIB)


def _mixed_jobs(graph):
    return [
        (graph, SolverConfig()),
        (graph, SolverConfig(problem="k-clique-count", k=3)),
        (graph, SolverConfig(problem="k-clique-count", k=4, window_size=128)),
        (graph, SolverConfig(problem="maximal-enum")),
        (graph, SolverConfig(problem="maximal-enum", window_size=128)),
    ]


def _run(jobs, spec, devices=2, **svc_kwargs):
    svc = SolveService(devices=devices, spec=spec, **svc_kwargs)
    for graph, config in jobs:
        svc.submit_graph(graph, config)
    return svc.run(), svc


def _signatures(records):
    """Everything about a mixed run that executors/faults must not change."""
    return [
        (
            r.job_id,
            r.status,
            r.problem,
            r.k,
            r.clique_number,
            r.num_maximum_cliques,
            r.k_clique_count,
            r.num_maximal_cliques,
            r.enumerated_all,
            r.cache_hit,
        )
        for r in records
    ]


class TestMixedBatch:
    def test_records_carry_kind_figures(self, community, spec):
        records, _ = _run(_mixed_jobs(community), spec)
        assert all(r.ok for r in records)
        mc, kc3, kc4, me, mew = records

        assert mc.problem == "max-clique" and mc.k is None
        assert mc.k_clique_count is None and mc.num_maximal_cliques is None

        assert kc3.problem == "k-clique-count" and kc3.k == 3
        assert kc3.k_clique_count == count_k_cliques_reference(community, 3)
        assert kc3.clique_number is None
        assert kc4.k_clique_count == count_k_cliques_reference(community, 4)

        oracle = maximal_clique_set(community)
        assert me.problem == "maximal-enum"
        assert me.num_maximal_cliques == len(oracle)
        assert me.clique_number == len(oracle[-1])  # ω via largest maximal
        assert mew.num_maximal_cliques == len(oracle)

    def test_to_dict_round_trips_kind_fields(self, community, spec):
        records, _ = _run(_mixed_jobs(community), spec)
        d = records[1].to_dict()
        assert d["problem"] == "k-clique-count" and d["k"] == 3
        assert d["k_clique_count"] == records[1].k_clique_count
        d = records[3].to_dict()
        assert d["problem"] == "maximal-enum"
        assert d["num_maximal_cliques"] == records[3].num_maximal_cliques

    def test_threaded_executor_matches_serial(self, community, spec):
        serial, _ = _run(_mixed_jobs(community), spec, executor="serial")
        threaded, _ = _run(
            _mixed_jobs(community), spec, executor="threaded", workers=4
        )
        assert _signatures(serial) == _signatures(threaded)
        assert [r.model_time_s for r in serial] == [
            r.model_time_s for r in threaded
        ]

    def test_kinds_have_distinct_cache_keys(self, community, spec):
        jobs = [
            (community, SolverConfig()),
            (community, SolverConfig(problem="k-clique-count", k=3)),
            (community, SolverConfig(problem="k-clique-count", k=4)),
            (community, SolverConfig(problem="maximal-enum")),
            # repeats: must all hit, each on its own kind's entry
            (community, SolverConfig(problem="k-clique-count", k=3)),
            (community, SolverConfig(problem="maximal-enum")),
            (community, SolverConfig()),
        ]
        records, svc = _run(jobs, spec)
        assert [r.cache_hit for r in records] == [False] * 4 + [True] * 3
        hit_kc, hit_me, hit_mc = records[4:]
        assert hit_kc.k_clique_count == records[1].k_clique_count
        assert hit_kc.problem == "k-clique-count" and hit_kc.k == 3
        assert hit_me.num_maximal_cliques == records[3].num_maximal_cliques
        assert hit_mc.clique_number == records[0].clique_number
        assert svc.summary().cache_hits == 3


class TestJobsFileKinds:
    def _parse(self, payload, graph):
        import repro.service.jobs as jobs_mod

        original = jobs_mod.resolve_graph
        jobs_mod.resolve_graph = lambda name: graph
        try:
            return parse_jobs(payload)
        finally:
            jobs_mod.resolve_graph = original

    def test_problem_alias_and_defaults(self, community):
        payload = {
            "defaults": {"problem": "maximal-enum"},
            "jobs": [
                {"graph": "g"},
                {"graph": "g", "problem": "k-clique-count", "config": {"k": 5}},
                {"graph": "g", "config": {"problem": "max-clique"}},
            ],
        }
        reqs = self._parse(payload, community)
        assert reqs[0].config.problem == "maximal-enum"
        assert reqs[1].config.problem == "k-clique-count"
        assert reqs[1].config.k == 5
        assert reqs[2].config.problem == "max-clique"

    def test_problem_alias_conflicts_with_config_key(self, community):
        payload = [
            {
                "graph": "g",
                "problem": "maximal-enum",
                "config": {"problem": "max-clique"},
            }
        ]
        with pytest.raises(JobSpecError, match="both"):
            self._parse(payload, community)

    def test_matching_v2_fingerprint_accepted(self, community):
        config = SolverConfig(problem="k-clique-count", k=3)
        payload = [
            {
                "graph": "g",
                "problem": "k-clique-count",
                "config": {"k": 3},
                "fingerprint": config_fingerprint(config),
            }
        ]
        reqs = self._parse(payload, community)
        assert reqs[0].config.k == 3

    def test_kindless_v1_fingerprint_rejected(self, community):
        """Regression: pre-problem-kind fingerprints must fail loudly."""
        legacy = (
            "adaptive_windowing=False;coloring_preprune=False;"
            "heuristic='multi-degree';window_size=None"
        )
        payload = [{"graph": "g", "fingerprint": legacy}]
        with pytest.raises(JobSpecError, match="kind-less"):
            self._parse(payload, community)

    def test_mismatched_fingerprint_rejected(self, community):
        other = config_fingerprint(SolverConfig(problem="maximal-enum"))
        payload = [{"graph": "g", "fingerprint": other}]
        with pytest.raises(JobSpecError, match="does not match"):
            self._parse(payload, community)


class TestChaosWithKinds:
    """Faults must not change non-default-kind answers either."""

    @pytest.fixture(scope="class")
    def enum_launches(self, community, spec):
        device = Device(spec)
        MaxCliqueSolver(
            community,
            SolverConfig(problem="maximal-enum", window_size=128),
            device,
        ).solve()
        return device.stats().kernel_launches

    def _chaos_run(self, jobs, spec, fault_plan=None):
        svc = SolveService(
            devices=2, spec=spec, cache_size=0, fault_plan=fault_plan
        )
        for graph, config in jobs:
            svc.submit_graph(graph, config)
        return svc.run(), svc

    def test_device_lost_mid_enum_matches_fault_free(
        self, community, spec, enum_launches
    ):
        jobs = [
            (community, SolverConfig(problem="maximal-enum", window_size=128))
        ]
        clean, _ = self._chaos_run(jobs, spec)
        plan = FaultPlan(
            [FaultEvent(0, "launch", enum_launches // 3, "device-lost")]
        )
        chaos, svc = self._chaos_run(jobs, spec, fault_plan=plan)

        assert _signatures(chaos) == _signatures(clean)
        assert list(chaos[0].result.cliques) == list(clean[0].result.cliques)
        assert chaos[0].migrations == 1
        assert svc.summary().device_faults == 1

    def test_transient_fault_mid_count_matches_fault_free(
        self, community, spec
    ):
        jobs = [(community, SolverConfig(problem="k-clique-count", k=4))]
        clean, _ = self._chaos_run(jobs, spec)
        plan = FaultPlan([FaultEvent(0, "launch", 5, "transient-kernel")])
        chaos, _ = self._chaos_run(jobs, spec, fault_plan=plan)

        assert _signatures(chaos) == _signatures(clean)
        assert chaos[0].k_clique_count == clean[0].k_clique_count
        assert chaos[0].transient_retries == 1
