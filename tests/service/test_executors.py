"""Serial vs threaded batch execution: byte-equivalent, only faster.

The threaded executor must be invisible in everything the service
reports -- JobRecords (modulo host wall time), the result cache,
``service.*`` counters, per-device load -- across cache hits,
degradation, eviction pressure, and tracing. Wall-clock is *not*
asserted here (it depends on host cores); the throughput benchmark
reports it.
"""

import pytest

from repro.core import SolverConfig
from repro.engine.executor import SerialExecutor, ThreadedExecutor
from repro.gpusim.spec import DeviceSpec
from repro.graph import generators as gen
from repro.service import SolveService
from repro.trace import JsonTracer

MIB = 1 << 20

TIMING_FIELDS = {"wall_time_s"}


def record_sig(record):
    """Everything in a record except host wall time."""
    d = record.to_dict()
    for f in TIMING_FIELDS:
        d.pop(f, None)
    return d


def summary_sig(service):
    d = service.summary().to_dict()
    for f in TIMING_FIELDS:
        d.pop(f, None)
    return d


@pytest.fixture(scope="module")
def graphs():
    return [
        gen.erdos_renyi(120, 0.25, seed=1),
        gen.planted_clique(200, 8, avg_degree=4.0, seed=2),
        gen.caveman_social(4, 25, p_in=0.4, seed=3),
        gen.erdos_renyi(90, 0.3, seed=4),
    ]


def run_batch(jobs, executor, workers=None, **svc_kwargs):
    svc = SolveService(executor=executor, workers=workers, **svc_kwargs)
    for graph, config in jobs:
        svc.submit_graph(graph, config)
    return svc.run(), svc


def assert_equivalent(jobs, workers=2, **svc_kwargs):
    serial_recs, serial_svc = run_batch(jobs, "serial", **svc_kwargs)
    threaded_recs, threaded_svc = run_batch(
        jobs, "threaded", workers=workers, **svc_kwargs
    )
    assert [record_sig(r) for r in threaded_recs] == [
        record_sig(r) for r in serial_recs
    ]
    assert summary_sig(threaded_svc) == summary_sig(serial_svc)
    assert threaded_svc.cache.hits == serial_svc.cache.hits
    assert threaded_svc.cache.misses == serial_svc.cache.misses
    assert threaded_svc.cache.evictions == serial_svc.cache.evictions
    assert threaded_svc.pool.jobs_dispatched == serial_svc.pool.jobs_dispatched
    for ts, ss in zip(threaded_svc.pool.summary(), serial_svc.pool.summary()):
        assert ts == ss
    return serial_recs, threaded_recs


class TestThreadedEquivalence:
    def test_distinct_jobs(self, graphs):
        jobs = [(g, SolverConfig()) for g in graphs]
        assert_equivalent(jobs, devices=2)

    def test_duplicates_hit_cache_identically(self, graphs):
        jobs = [(g, SolverConfig()) for g in graphs for _ in range(2)]
        serial, threaded = assert_equivalent(jobs, devices=3, workers=3)
        assert sum(r.cache_hit for r in threaded) == len(graphs)

    def test_windowed_and_mixed_configs(self, graphs):
        jobs = [
            (graphs[0], SolverConfig(window_size=64)),
            (graphs[1], SolverConfig()),
            (graphs[2], SolverConfig(window_size=32, window_fanout=2)),
            (graphs[0], SolverConfig(window_size=64)),
        ]
        assert_equivalent(jobs, devices=2)

    def test_eviction_pressure_forces_serial_order(self, graphs):
        # cache smaller than the batch: threaded must take the ordered
        # path and still match serial eviction-for-eviction
        jobs = [(g, SolverConfig()) for g in graphs for _ in range(2)]
        serial_recs, serial_svc = run_batch(jobs, "serial", devices=2, cache_size=2)
        threaded_recs, threaded_svc = run_batch(
            jobs, "threaded", workers=2, devices=2, cache_size=2
        )
        assert [record_sig(r) for r in threaded_recs] == [
            record_sig(r) for r in serial_recs
        ]
        assert threaded_svc.cache.evictions == serial_svc.cache.evictions
        assert threaded_svc.cache.evictions > 0

    def test_degradation_ladder_matches(self, graphs):
        # tiny memory budget: jobs degrade down the ladder identically
        spec = DeviceSpec(memory_bytes=2 * MIB)
        jobs = [(g, SolverConfig()) for g in graphs]
        serial, threaded = assert_equivalent(jobs, devices=2, spec=spec)
        assert any(r.degraded or r.status != "ok" for r in serial)

    def test_cache_disabled(self, graphs):
        jobs = [(g, SolverConfig()) for g in graphs for _ in range(2)]
        assert_equivalent(jobs, devices=2, cache_size=0)

    def test_more_workers_than_devices(self, graphs):
        jobs = [(g, SolverConfig()) for g in graphs]
        assert_equivalent(jobs, devices=2, workers=16)

    def test_single_device(self, graphs):
        jobs = [(g, SolverConfig()) for g in graphs]
        assert_equivalent(jobs, devices=1, workers=4)

    def test_tracer_runs_match_serial(self, graphs):
        jobs = [(g, SolverConfig()) for g in graphs[:3]]
        s_tracer, t_tracer = JsonTracer(), JsonTracer()
        serial_recs, _ = run_batch(jobs, "serial", devices=2, tracer=s_tracer)
        threaded_recs, _ = run_batch(
            jobs, "threaded", workers=2, devices=2, tracer=t_tracer
        )  # tracer forces the threaded executor onto its ordered path
        assert [record_sig(r) for r in threaded_recs] == [
            record_sig(r) for r in serial_recs
        ]
        assert t_tracer.counters == s_tracer.counters
        assert [s.name for s in t_tracer.spans] == [s.name for s in s_tracer.spans]


class TestExecutorWiring:
    def test_default_is_serial(self):
        assert isinstance(SolveService().executor, SerialExecutor)

    def test_named_executors(self):
        assert isinstance(
            SolveService(executor="threaded", workers=3).executor,
            ThreadedExecutor,
        )
        assert isinstance(SolveService(executor="serial").executor, SerialExecutor)

    def test_instance_passthrough(self):
        ex = ThreadedExecutor(workers=2)
        assert SolveService(executor=ex).executor is ex

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            SolveService(executor="warp-drive")

    def test_records_land_in_scheduled_order(self, graphs):
        svc = SolveService(devices=2, executor="threaded", workers=2)
        ids = [
            svc.submit_graph(g, SolverConfig(), job_id=f"j{i}")
            for i, g in enumerate(graphs)
        ]
        records = svc.run()
        assert [r.job_id for r in records] == ids
        assert [r.job_id for r in svc.records] == ids
