"""Shared fixtures for the network chaos tests.

Every test assembles a real wire stack -- ``ServerThread`` (and where
needed ``RouterThread``) on ephemeral ports with a ``ChaosProxyThread``
in front -- so a fault plan damages genuine ``repro-wire/1`` bytes.
Services run with ``cache_size=0`` throughout: the dedup assertions
count *executions* via ``service.jobs.total``, and a result cache
would hide a duplicated execution the dedup table failed to stop.
"""

import pytest

from repro.graph import generators as gen
from repro.netchaos import ChaosProxyThread
from repro.server import ServerConfig, ServerThread, SolveClient
from repro.service import SolveService
from repro.trace import CounterTracer

from tests.server.conftest import RawConn  # noqa: F401 (fixture dep)


@pytest.fixture(scope="module")
def community():
    """Small community graph solved comfortably at any sane budget."""
    return gen.caveman_social(5, 30, p_in=0.35, seed=3)


@pytest.fixture
def make_server():
    """Factory for backend servers with a counters tracer, no cache."""
    handles = []

    def _make(config=None, server_config=None, **service_kwargs):
        service_kwargs.setdefault("cache_size", 0)
        service_kwargs.setdefault("tracer", CounterTracer())
        service = SolveService(**service_kwargs)
        cfg = server_config or config or ServerConfig(port=0)
        handle = ServerThread(service, cfg)
        handles.append(handle)
        return handle.start()

    yield _make
    for handle in handles:
        handle.stop(timeout_s=10.0)


@pytest.fixture
def make_proxy():
    """Factory for chaos proxies; every proxy is stopped at teardown."""
    handles = []

    def _make(upstream, plan=None, **kwargs):
        port = getattr(upstream, "port", None)
        if port is not None:
            upstream = ("127.0.0.1", port)
        handle = ChaosProxyThread(upstream, plan=plan, **kwargs)
        handles.append(handle)
        return handle.start()

    yield _make
    for handle in handles:
        handle.stop(timeout_s=10.0)


@pytest.fixture
def make_client():
    """Factory for clients with fast, seeded-jitter retry timings."""
    clients = []

    def _make(handle_or_port, **kwargs):
        port = getattr(handle_or_port, "port", handle_or_port)
        kwargs.setdefault("retries", 5)
        kwargs.setdefault("timeout_s", 60.0)
        kwargs.setdefault("backoff_s", 0.05)
        kwargs.setdefault("jitter_seed", 0)
        client = SolveClient(port=port, **kwargs)
        clients.append(client)
        return client

    yield _make
    for client in clients:
        client.close()


@pytest.fixture
def raw_conn():
    """RawConn factory (same contract as the server suite's fixture)."""
    conns = []

    def _make(handle_or_port, **kwargs):
        port = getattr(handle_or_port, "port", handle_or_port)
        conn = RawConn(port, **kwargs)
        conns.append(conn)
        return conn

    yield _make
    for conn in conns:
        conn.close()


def normalized(record, drop_model_times=False):
    """A record dict with the host-wall-clock fields stripped.

    ``wall_time_s`` is host time and ``job_id`` encodes the server's
    connection ordinal -- both legitimately differ between a fault-free
    run and a chaos run that reconnects; everything else (the actual
    answer and the model-time accounting) must match byte for byte.

    ``drop_model_times`` additionally strips the model-time fields:
    cross-*placement* comparisons (a failover replays the job on a
    device whose simulated clock sits at a different absolute instant)
    see ULP-level rounding drift in ``end - start`` even though the
    simulated work is identical. The answer fields always stay exact.
    """
    out = dict(record)
    out.pop("wall_time_s", None)
    out.pop("job_id", None)
    if drop_model_times:
        out.pop("model_time_s", None)
        out.pop("stage_model_times_s", None)
    return out
