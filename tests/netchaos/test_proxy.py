"""The chaos proxy's mechanics: pass-through, each fault kind, partitions."""

import time

import pytest

from repro.errors import ServerError
from repro.netchaos import NetFaultEvent, NetFaultPlan, Partition

from .conftest import normalized


class TestPassThrough:
    def test_transparent_relay_parity(self, make_server, make_proxy,
                                      make_client, community):
        """An empty plan is a byte pipe: same reply as the direct path.

        Each path gets its own fresh server so both jobs start at the
        same simulated device-clock instant -- the comparison is then
        byte-exact, not merely answer-exact.
        """
        direct_srv, proxied_srv = make_server(), make_server()
        proxy = make_proxy(proxied_srv)
        direct = make_client(direct_srv).solve(community, label="g")
        proxied = make_client(proxy).solve(community, label="g")
        assert normalized(proxied["record"]) == normalized(direct["record"])
        assert proxied["cliques"] == direct["cliques"]
        counters = proxy.counters
        assert counters.get("injected.total", 0) == 0
        assert counters["frames.c2s"] >= 2  # hello + solve
        assert counters["frames.s2c"] >= 2

    def test_upstream_refused_aborts_client(self, make_proxy, make_client):
        from tests.cluster.conftest import free_port

        proxy = make_proxy(("127.0.0.1", free_port()))
        client = make_client(proxy, retries=1, backoff_s=0.01)
        with pytest.raises(ServerError, match="connect|failed"):
            client.connect()
        assert proxy.counters.get("conns.upstream_refused", 0) >= 1


class TestFaultKinds:
    def test_delay_holds_the_frame(self, make_server, make_proxy, make_client):
        server = make_server()
        plan = NetFaultPlan([
            NetFaultEvent(conn=0, direction="c2s", frame=0, kind="delay",
                          delay_s=0.3),
        ])
        proxy = make_proxy(server, plan)
        client = make_client(proxy)
        t0 = time.perf_counter()
        client.connect()
        assert time.perf_counter() - t0 >= 0.3
        assert proxy.counters.get("injected.delay") == 1

    def test_stall_splits_but_delivers(self, make_server, make_proxy,
                                       make_client, community):
        server = make_server()
        plan = NetFaultPlan([
            NetFaultEvent(conn=0, direction="s2c", frame=1, kind="stall",
                          delay_s=0.2, at_byte=7),
        ])
        proxy = make_proxy(server, plan)
        reply = make_client(proxy).solve(community)
        assert reply["record"]["status"] == "ok"
        assert proxy.counters.get("injected.stall") == 1

    def test_duplicate_is_absorbed(self, make_server, make_proxy,
                                   make_client, community):
        """A duplicated reply must not confuse the next round trip."""
        server = make_server()
        plan = NetFaultPlan([
            NetFaultEvent(conn=0, direction="s2c", frame=1, kind="duplicate"),
        ])
        proxy = make_proxy(server, plan)
        client = make_client(proxy)
        first = client.solve(community)
        # the duplicated result frame is still buffered on this socket;
        # the stale-reply skip must discard it, not return it here
        second = client.solve(community)
        assert first["record"]["status"] == "ok"
        assert second["record"]["status"] == "ok"
        assert second["id"] != first["id"]
        assert proxy.counters.get("injected.duplicate") == 1

    def test_truncate_breaks_the_reply_then_retry_recovers(
            self, make_server, make_proxy, make_client, community):
        server = make_server()
        plan = NetFaultPlan([
            NetFaultEvent(conn=0, direction="s2c", frame=1, kind="truncate",
                          at_byte=25),
        ])
        proxy = make_proxy(server, plan)
        reply = make_client(proxy).solve(community)
        assert reply["record"]["status"] == "ok"
        assert proxy.counters.get("injected.truncate") == 1

    def test_cut_resets_then_retry_recovers(self, make_server, make_proxy,
                                            make_client, community):
        server = make_server()
        plan = NetFaultPlan([
            NetFaultEvent(conn=0, direction="c2s", frame=1, kind="cut",
                          at_byte=40),
        ])
        proxy = make_proxy(server, plan)
        reply = make_client(proxy).solve(community)
        assert reply["record"]["status"] == "ok"
        assert proxy.counters.get("injected.cut") == 1


class TestPartitions:
    def test_partition_refuses_and_severs(self, make_server, make_proxy,
                                          make_client, community):
        server = make_server()
        plan = NetFaultPlan(partitions=[Partition(start_s=0.0,
                                                  duration_s=0.6)])
        proxy = make_proxy(server, plan)
        client = make_client(proxy, retries=0)
        with pytest.raises(ServerError):
            client.solve(community)
        counters = proxy.counters
        assert (counters.get("partitions.refused_conns", 0)
                + counters.get("partitions.dropped_frames", 0)
                + counters.get("partitions.dropped_conns", 0)) >= 1
        # after the window closes the same proxy carries traffic again
        time.sleep(0.7)
        healed = make_client(proxy)
        assert healed.solve(community)["record"]["status"] == "ok"
