"""Streaming sessions under wire chaos: same answers, applied once.

A fixed-seed fault plan (duplicated frames + mid-byte cuts) sits
between the client and the server while a session absorbs a scripted
mutation stream. Mutate frames carry ``request_id`` and dedup exactly
like solves, so the chaos run's view at every epoch -- and the final
resident graph fingerprint -- must be byte-identical to the fault-free
run, with the backend having applied each batch exactly once. A
subscriber keeps re-attaching through the same damaged wire and must
converge on the same final view.
"""

import time

import pytest

from repro.errors import ProtocolError, ServerError
from repro.graph import generators as gen
from repro.netchaos import NetFaultPlan
from repro.server import SolveClient

#: cut+duplicate heavy: every few frames one copy or one torn reply
CHAOS_RATES = dict(duplicate=0.15, cut=0.08, truncate=0.04)

N_BATCHES = 10


def base_graph():
    return gen.caveman_social(4, 24, p_in=0.4, seed=1)


def mutation_script():
    """Deterministic batches over the base graph's vertex universe."""
    batches = []
    for i in range(N_BATCHES):
        if i % 3 == 2:
            batches.append(((), ((0, 10 + i - 1),)))
        else:
            batches.append((((0, 10 + i), (1, 10 + i)), ()))
    return batches


def view_fields(frame):
    """The answer-bearing fields of a session frame (wire ids vary)."""
    return {
        key: frame[key]
        for key in ("epoch", "omega", "num_maximum_cliques", "witness",
                    "fingerprint", "num_vertices", "num_edges")
    }


def run_stream(make_client, target, sid):
    """Open, mutate through the script, and return the per-epoch views."""
    client = make_client(target, retries=8)
    views = [view_fields(client.open_session(base_graph(), session=sid))]
    for ins, dels in mutation_script():
        frame = client.mutate(sid, insert=ins, delete=dels, deadline_s=60.0)
        views.append(view_fields(frame))
    return views


def watch_until(port, sid, final_epoch, attempts=40):
    """Re-subscribing watcher that rides out cuts; returns the view it
    converged on (epoch == final_epoch)."""
    last = None
    for _ in range(attempts):
        watcher = SolveClient(port=port, timeout_s=30.0, retries=0)
        try:
            for frame in watcher.subscribe(sid):
                last = view_fields(frame)
                if last["epoch"] >= final_epoch:
                    return last
        except (ServerError, ProtocolError, OSError):
            time.sleep(0.05)
        finally:
            watcher.close()
    raise AssertionError(f"subscriber never reached epoch {final_epoch}")


class TestStreamingChaosParity:
    @pytest.mark.parametrize("seed", [13, 41])
    def test_chaos_stream_matches_fault_free_stream(self, seed, make_server,
                                                    make_proxy, make_client):
        baseline_srv = make_server()
        baseline = run_stream(make_client, baseline_srv, "base")

        chaos_srv = make_server()
        plan = NetFaultPlan.from_rates(seed=seed, conns=16, frames=64,
                                       **CHAOS_RATES)
        proxy = make_proxy(chaos_srv, plan)
        chaos = run_stream(make_client, proxy, "chaos")

        assert proxy.counters.get("injected.total", 0) > 0, \
            "plan injected nothing; rates too low"
        assert len(chaos) == len(baseline)
        for base_view, chaos_view in zip(baseline, chaos):
            assert chaos_view == base_view
        # exactly-once application: the resident session advanced one
        # epoch per scripted batch despite duplicated/resent frames
        session = chaos_srv.server.sessions.get("chaos")
        assert session.epoch == N_BATCHES
        # any replay the dedup table absorbed is visible in the tracer
        counters = chaos_srv.server.service.tracer.counters_snapshot()
        assert counters.get("stream.replays", 0) >= 0

    def test_subscriber_converges_through_chaos(self, make_server,
                                                make_proxy, make_client):
        server = make_server()
        # fault-free reference run on a separate server
        reference_srv = make_server()
        reference = run_stream(make_client, reference_srv, "ref")

        plan = NetFaultPlan.from_rates(seed=99, conns=16, frames=48,
                                       **CHAOS_RATES)
        proxy = make_proxy(server, plan)
        views = run_stream(make_client, proxy, "watched")
        final = watch_until(proxy.port, "watched", final_epoch=N_BATCHES)
        assert final == views[-1] == reference[-1]

    def test_duplicated_mutate_frame_applies_once(self, make_server,
                                                  make_proxy, make_client,
                                                  raw_conn):
        """Both copies of a mutate in one segment: one epoch, one apply."""
        from repro.server import protocol

        server = make_server()
        client = make_client(server)
        client.open_session(base_graph(), session="dup")

        conn = raw_conn(server)
        conn.hello()
        encoded = protocol.encode_frame(
            {"type": "mutate", "id": "m-1", "request_id": "m-1",
             "session": "dup", "insert": [[0, 50], [1, 50]]}
        )
        conn.send_bytes(encoded + encoded)
        first, second = conn.recv(), conn.recv()
        assert first["type"] == second["type"] == "mutated"
        assert first["epoch"] == second["epoch"] == 1
        assert {first["replayed"], second["replayed"]} == {False, True}
        assert server.server.sessions.get("dup").epoch == 1
