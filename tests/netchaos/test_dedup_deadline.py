"""Idempotent retries (``request_id`` dedup) and deadline propagation.

The wire-level halves of the retry-safety story: duplicated or resent
solves never execute twice (``service.jobs.total`` is the ground
truth), and an expired ``deadline_s`` budget is rejected retriable at
every layer instead of being computed for nobody.
"""

import time

import pytest

from repro.core.deadline import Deadline
from repro.errors import ServerError
from repro.server import ServerConfig, SolveClient, protocol
from repro.service import SolveService
from repro.service.request import SolveRequest
from tests.cluster.conftest import FakeBackend


def solve_frame(graph, wire_id, request_id=None, **extra):
    frame = {"type": "solve", "id": wire_id,
             "graph": protocol.encode_graph(graph)}
    if request_id is not None:
        frame["request_id"] = request_id
    frame.update(extra)
    return frame


def jobs_total(handle):
    return handle.server.service.stats_snapshot()["jobs"]["total"]


class TestDedup:
    def test_duplicate_in_flight_joins(self, make_server, raw_conn,
                                       community):
        """Two deliveries of one solve: one execution, two replies."""
        server = make_server()
        conn = raw_conn(server)
        conn.hello()
        frame = solve_frame(community, "w1", request_id="rq-join")
        conn.send(frame)
        conn.send(frame)  # the duplicate, racing the first
        first, second = conn.recv(), conn.recv()
        assert first["type"] == "result" and second["type"] == "result"
        assert first["record"]["clique_number"] == \
            second["record"]["clique_number"]
        assert jobs_total(server) == 1
        stats = server.server.stats
        joins = stats.get("dedup.joins")
        replays = stats.get("dedup.replays")
        assert joins + replays == 1  # dup landed in-flight or after
        assert stats.get("solves.accepted") == 1

    def test_resend_after_completion_replays(self, make_server, raw_conn,
                                             community):
        """A resend on a *fresh* connection replays the cached reply."""
        server = make_server()
        first_conn = raw_conn(server)
        first_conn.hello()
        first_conn.send(solve_frame(community, "w1", request_id="rq-replay"))
        first = first_conn.recv()
        first_conn.close()
        retry_conn = raw_conn(server)
        retry_conn.hello()
        retry_conn.send(solve_frame(community, "w9", request_id="rq-replay"))
        replayed = retry_conn.recv()
        assert replayed["type"] == "result"
        assert replayed["id"] == "w9"  # replay answers the *new* wire id
        assert replayed["record"] == first["record"]
        assert jobs_total(server) == 1
        assert server.server.stats.get("dedup.replays") == 1
        counters = server.server.service.tracer.counters_snapshot()
        assert counters.get("service.dedup.replays") == 1

    def test_distinct_request_ids_execute_separately(self, make_server,
                                                     raw_conn, community):
        server = make_server()
        conn = raw_conn(server)
        conn.hello()
        conn.send(solve_frame(community, "w1", request_id="rq-a"))
        conn.recv()
        conn.send(solve_frame(community, "w2", request_id="rq-b"))
        conn.recv()
        assert jobs_total(server) == 2

    def test_no_request_id_no_dedup(self, make_server, raw_conn, community):
        """Bare solves (no request_id) keep the old semantics."""
        server = make_server()
        conn = raw_conn(server)
        conn.hello()
        conn.send(solve_frame(community, "w1"))
        conn.recv()
        conn.send(solve_frame(community, "w2"))
        conn.recv()
        assert jobs_total(server) == 2
        assert len(server.server._dedup) == 0

    def test_table_is_bounded_lru(self, make_server, raw_conn, community):
        """Past capacity the oldest completed entry re-executes."""
        server = make_server(
            server_config=ServerConfig(port=0, dedup_capacity=2)
        )
        conn = raw_conn(server)
        conn.hello()
        for i in range(3):
            conn.send(solve_frame(community, f"w{i}", request_id=f"rq-{i}"))
            assert conn.recv()["type"] == "result"
        assert jobs_total(server) == 3
        # rq-0 was evicted when rq-2 arrived: a resend executes again
        conn.send(solve_frame(community, "w-again0", request_id="rq-0"))
        assert conn.recv()["type"] == "result"
        assert jobs_total(server) == 4
        # rq-2 is still resident: a resend replays
        conn.send(solve_frame(community, "w-again2", request_id="rq-2"))
        assert conn.recv()["type"] == "result"
        assert jobs_total(server) == 4
        assert server.server.stats.get("dedup.replays") == 1
        assert len(server.server._dedup) <= 2

    def test_bad_request_id_rejected(self, make_server, raw_conn, community):
        server = make_server()
        conn = raw_conn(server)
        conn.hello()
        conn.send(solve_frame(community, "w1", request_id=""))
        reply = conn.recv()
        assert reply["type"] == "error" and reply["code"] == "bad_request"
        conn.send(solve_frame(community, "w2", request_id="x" * 300))
        reply = conn.recv()
        assert reply["type"] == "error" and reply["code"] == "bad_request"
        assert jobs_total(server) == 0


class TestDeadline:
    def test_expired_deadline_rejected_before_dispatch(self, make_server,
                                                       raw_conn, community):
        server = make_server()
        conn = raw_conn(server)
        conn.hello()
        conn.send(solve_frame(community, "w1", request_id="rq-dead",
                              deadline_s=1e-9))
        reply = conn.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "deadline_exceeded"
        assert reply["retriable"] is True
        assert reply["exit_code"] == 3
        assert jobs_total(server) == 0  # never reached a device
        assert server.server.stats.get("rejects.deadline_exceeded") == 1
        counters = server.server.service.tracer.counters_snapshot()
        assert counters.get("service.deadline.rejected") == 1

    def test_live_deadline_still_solves(self, make_server, raw_conn,
                                        community):
        server = make_server()
        conn = raw_conn(server)
        conn.hello()
        conn.send(solve_frame(community, "w1", deadline_s=60.0))
        reply = conn.recv()
        assert reply["type"] == "result"
        assert reply["record"]["status"] == "ok"

    def test_invalid_deadline_is_bad_request(self, make_server, raw_conn,
                                             community):
        server = make_server()
        conn = raw_conn(server)
        conn.hello()
        conn.send(solve_frame(community, "w1", deadline_s="soon"))
        reply = conn.recv()
        assert reply["type"] == "error" and reply["code"] == "bad_request"

    def test_deadline_folds_into_solver_time_limit(self, community):
        """The service turns remaining budget into the solver's limit."""
        service = SolveService(cache_size=0, max_attempts=1)
        request = SolveRequest(
            graph=community,
            deadline=Deadline.from_limit(1e-5, label="tiny budget"),
        )
        time.sleep(0.01)  # not yet checked, but essentially exhausted
        service.submit(request)
        record = service.run()[0]
        assert record.status == "failed"
        assert "SolveTimeoutError" in record.error

    def test_client_budget_propagates_and_expires(self, community):
        """Remaining budget shrinks per attempt; spent budget fails fast."""
        seen = []

        def busy(frame):
            seen.append(frame.get("deadline_s"))
            return protocol.error_frame(
                "server_busy", "scripted busy",
                request_id=frame.get("id"), retry_after_s=0.05,
            )

        fake = FakeBackend(solve_reply=busy)
        try:
            client = SolveClient(port=fake.port, retries=100,
                                 backoff_s=0.02, backoff_max_s=0.1,
                                 jitter_seed=1)
            t0 = time.perf_counter()
            with pytest.raises(ServerError) as excinfo:
                client.solve(community, deadline_s=0.5)
            elapsed = time.perf_counter() - t0
            client.close()
        finally:
            fake.close()
        assert excinfo.value.code == "deadline_exceeded"
        assert excinfo.value.retriable is True
        assert excinfo.value.exit_code == 3
        assert elapsed < 5.0  # fails at ~0.5s, not after 100 retries
        assert len(seen) >= 2
        budgets = [b for b in seen if b is not None]
        assert budgets == sorted(budgets, reverse=True)
        assert all(0 < b <= 0.5 for b in budgets)


class TestBackoffDiscipline:
    def test_retry_after_is_clamped(self, community):
        """A server asking for a 60s pause gets backoff_max_s at most."""
        def busy(frame):
            return protocol.error_frame(
                "server_busy", "scripted busy",
                request_id=frame.get("id"), retry_after_s=60.0,
            )

        fake = FakeBackend(solve_reply=busy)
        try:
            client = SolveClient(port=fake.port, retries=2, backoff_s=0.05,
                                 backoff_max_s=0.2, jitter_seed=7)
            t0 = time.perf_counter()
            with pytest.raises(ServerError, match="busy"):
                client.solve(community)
            elapsed = time.perf_counter() - t0
            client.close()
        finally:
            fake.close()
        # two retries at exactly 0.2s each (clamped), nowhere near 120s
        assert elapsed < 5.0

    def test_jitter_is_seeded_and_bounded(self):
        a = SolveClient(jitter_seed=42)
        b = SolveClient(jitter_seed=42)
        c = SolveClient(jitter_seed=43)
        seq_a = [a._jitter(1.0) for _ in range(16)]
        seq_b = [b._jitter(1.0) for _ in range(16)]
        seq_c = [c._jitter(1.0) for _ in range(16)]
        assert seq_a == seq_b
        assert seq_a != seq_c
        assert all(0.5 <= v < 1.0 for v in seq_a)

    def test_request_id_stable_across_retries(self, community):
        """Every resend of one solve carries the same request_id."""
        seen = []
        replies = iter(["draining", "ok"])

        def flaky(frame):
            seen.append(frame.get("request_id"))
            if next(replies) == "draining":
                return protocol.error_frame(
                    "draining", "scripted drain",
                    request_id=frame.get("id"), retry_after_s=0.01,
                )
            return {"type": "result", "id": frame.get("id"),
                    "record": {"status": "ok", "clique_number": 1},
                    "exit_code": 0}

        fake = FakeBackend(solve_reply=flaky)
        try:
            client = SolveClient(port=fake.port, retries=3, backoff_s=0.01,
                                 jitter_seed=0)
            reply = client.solve(community)
            client.close()
        finally:
            fake.close()
        assert reply["record"]["status"] == "ok"
        assert len(seen) == 2
        assert seen[0] == seen[1]
        assert seen[0]  # non-empty
