"""The chaos parity harness: chaos runs answer byte-identically.

The PR-3 device chaos suite proved fault-free and fault-laden *device*
runs produce identical results; this is the same claim one layer out.
A fixed-seed :class:`NetFaultPlan` damages the wire under a real
client/server (and client/router/backends) stack, and every record
must equal the fault-free run's -- with the dedup counters proving no
solve executed twice along the way.
"""

import pytest

from repro.graph import generators as gen
from repro.netchaos import NetFaultPlan, Partition
from repro.server import protocol
from repro.service import SolveService
from repro.trace import CounterTracer

from .conftest import normalized

#: per-frame fault rates aggressive enough that a workload of a few
#: solves is guaranteed several injections, yet survivable within the
#: client's retry budget (one connection suffers at most a few cuts
#: before its ordinal outruns the plan horizon)
CHAOS_RATES = dict(duplicate=0.12, truncate=0.04, cut=0.04, stall=0.06,
                   delay=0.06, delay_s=0.01)


def workload():
    """A small, varied batch of graphs (deterministic seeds)."""
    return [
        gen.caveman_social(4, 24, p_in=0.4, seed=1),
        gen.erdos_renyi(40, 0.3, seed=2),
        gen.planted_clique(36, 7, avg_degree=4.0, seed=3),
    ]


def run_workload(make_client, target, **solve_kwargs):
    client = make_client(target, retries=8)
    replies = []
    for i, graph in enumerate(workload()):
        replies.append(
            client.solve(graph, label=f"job-{i}", **solve_kwargs)
        )
    return replies


class TestServerParity:
    @pytest.mark.parametrize("seed", [11, 29])
    def test_chaos_run_matches_fault_free_run(self, seed, make_server,
                                              make_proxy, make_client):
        baseline_srv = make_server()
        baseline = run_workload(make_client, baseline_srv)

        chaos_srv = make_server()
        plan = NetFaultPlan.from_rates(seed=seed, conns=12, frames=64,
                                       **CHAOS_RATES)
        proxy = make_proxy(chaos_srv, plan)
        chaos = run_workload(make_client, proxy, deadline_s=120.0)

        assert len(chaos) == len(baseline)
        for base_reply, chaos_reply in zip(baseline, chaos):
            assert normalized(chaos_reply["record"]) == \
                normalized(base_reply["record"])
            assert chaos_reply.get("cliques") == base_reply.get("cliques")

        # at-most-once execution: every job ran exactly once even when
        # frames were duplicated or replies torn mid-byte
        jobs = chaos_srv.server.service.stats_snapshot()["jobs"]
        assert jobs["total"] == len(workload())
        stats = chaos_srv.server.stats
        resends = stats.get("dedup.replays") + stats.get("dedup.joins")
        injected = proxy.counters.get("injected.total", 0)
        assert injected > 0, "plan injected nothing; rates too low"
        # any torn reply forced a resend; dedup must have absorbed it
        torn = (proxy.counters.get("injected.cut", 0)
                + proxy.counters.get("injected.truncate", 0))
        assert resends >= stats.get("dedup.replays")  # sanity
        if torn == 0:
            assert resends == stats.get("dedup.joins") + \
                stats.get("dedup.replays")

    def test_two_chaos_runs_inject_identically(self, make_server,
                                               make_proxy, make_client):
        """Same plan, same traffic: the proxy damages the same frames."""
        tallies = []
        for _ in range(2):
            srv = make_server()
            plan = NetFaultPlan.from_rates(seed=77, conns=12, frames=64,
                                           **CHAOS_RATES)
            proxy = make_proxy(srv, plan)
            run_workload(make_client, proxy)
            tallies.append({
                k: v for k, v in proxy.counters.items()
                if k.startswith("injected.")
            })
        assert tallies[0] == tallies[1]
        assert tallies[0].get("injected.total", 0) > 0


class TestClusterParity:
    def test_partition_between_router_and_backend_fails_over(
            self, make_client, make_proxy):
        """A timed partition re-routes to the replica; answers match."""
        from repro.cluster import RouterConfig, RouterThread
        from repro.server import ServerConfig, ServerThread
        from tests.cluster.conftest import FAST, wait_until

        graphs = workload()

        def service():
            return SolveService(cache_size=0, tracer=CounterTracer())

        # baseline: a healthy two-backend cluster
        b1 = ServerThread(service(), ServerConfig(port=0)).start()
        b2 = ServerThread(service(), ServerConfig(port=0)).start()
        router = RouterThread(RouterConfig(
            backends=[("127.0.0.1", b1.port), ("127.0.0.1", b2.port)],
            port=0, jitter_seed=0, **FAST,
        )).start()
        try:
            baseline = [
                make_client(router, retries=8).solve(g, label=f"job-{i}")
                for i, g in enumerate(graphs)
            ]
        finally:
            router.stop(); b1.stop(); b2.stop()

        # chaos: backend 1 sits behind a proxy that partitions early on
        c1 = ServerThread(service(), ServerConfig(port=0)).start()
        c2 = ServerThread(service(), ServerConfig(port=0)).start()
        plan = NetFaultPlan(partitions=[Partition(start_s=0.0,
                                                  duration_s=1.5)])
        proxy = make_proxy(c1, plan)
        chaos_router = RouterThread(RouterConfig(
            backends=[("127.0.0.1", proxy.port), ("127.0.0.1", c2.port)],
            port=0, jitter_seed=0, **FAST,
        )).start()
        try:
            client = make_client(chaos_router, retries=8, timeout_s=60.0)
            chaos = [
                client.solve(g, label=f"job-{i}", deadline_s=60.0)
                for i, g in enumerate(graphs)
            ]
            for base_reply, chaos_reply in zip(baseline, chaos):
                # failover moves jobs across device-clock positions, so
                # compare modulo model-time rounding; answers stay exact
                assert normalized(chaos_reply["record"],
                                  drop_model_times=True) == \
                    normalized(base_reply["record"], drop_model_times=True)
                assert chaos_reply.get("cliques") == base_reply.get("cliques")
            # all traffic went to the reachable replica during the cut
            jobs_c2 = c2.server.service.stats_snapshot()["jobs"]["total"]
            assert jobs_c2 >= 1
            # once the partition lifts, the proxied backend recovers
            wait_until(
                lambda: chaos_router.router.health[
                    f"127.0.0.1:{proxy.port}"].available,
                timeout_s=20.0, message="partitioned backend recovery",
            )
        finally:
            chaos_router.stop(); c1.stop(); c2.stop()

    def test_router_drops_duplicate_solve_frames(self, make_client,
                                                 make_proxy, raw_conn,
                                                 community):
        """A duplicated c2s solve at the router answers exactly once."""
        from repro.cluster import RouterConfig, RouterThread
        from repro.server import ServerConfig, ServerThread
        from tests.cluster.conftest import FAST

        backend = ServerThread(
            SolveService(cache_size=0, tracer=CounterTracer()),
            ServerConfig(port=0),
        ).start()
        router = RouterThread(RouterConfig(
            backends=[("127.0.0.1", backend.port)], port=0,
            jitter_seed=0, **FAST,
        )).start()
        try:
            conn = raw_conn(router)
            conn.hello()
            frame = {"type": "solve", "id": "w1", "request_id": "rq-dup",
                     "graph": protocol.encode_graph(community)}
            # both copies in ONE write, exactly as the chaos proxy's
            # duplicate fault emits them -- back-to-back in one segment,
            # so the second is read while the first is still in flight
            encoded = protocol.encode_frame(frame)
            conn.send_bytes(encoded + encoded)
            reply = conn.recv()
            assert reply["type"] == "result" and reply["id"] == "w1"
            # the duplicate was dropped, not answered nor bad_request'd:
            # the next round trip sees the stats frame, nothing stale
            conn.send({"type": "stats"})
            follow_up = conn.recv()
            assert follow_up["type"] == "stats"
            assert follow_up["router"]["dedup.dropped_duplicates"] == 1
            assert backend.server.service.stats_snapshot()[
                "jobs"]["total"] == 1
        finally:
            router.stop(); backend.stop()
