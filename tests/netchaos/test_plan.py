"""Schema, validation, and determinism of ``repro-net-fault-plan/1``."""

import json

import pytest

from repro.errors import NetFaultPlanError
from repro.netchaos import (
    DIRECTIONS,
    NET_FAULT_KINDS,
    NET_FAULT_PLAN_SCHEMA,
    NetFaultEvent,
    NetFaultPlan,
    Partition,
    load_net_fault_plan,
)


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(NetFaultPlanError, match="unknown net fault kind"):
            NetFaultEvent(conn=0, direction="c2s", frame=0, kind="gremlin")

    def test_unknown_direction_rejected(self):
        with pytest.raises(NetFaultPlanError, match="unknown direction"):
            NetFaultEvent(conn=0, direction="up", frame=0, kind="delay")

    def test_negative_address_rejected(self):
        with pytest.raises(NetFaultPlanError, match="non-negative"):
            NetFaultEvent(conn=-1, direction="c2s", frame=0, kind="cut")

    @pytest.mark.parametrize("kind", ["delay", "stall"])
    def test_timed_kinds_need_positive_delay(self, kind):
        with pytest.raises(NetFaultPlanError, match="positive delay_s"):
            NetFaultEvent(conn=0, direction="c2s", frame=0, kind=kind)

    def test_cut_needs_no_delay(self):
        event = NetFaultEvent(conn=0, direction="s2c", frame=3, kind="cut",
                              at_byte=10)
        assert event.at_byte == 10

    def test_partition_validation(self):
        with pytest.raises(NetFaultPlanError, match="duration_s"):
            Partition(start_s=1.0, duration_s=0.0)
        with pytest.raises(NetFaultPlanError, match="start_s"):
            Partition(start_s=-1.0, duration_s=1.0)
        assert Partition(start_s=1.0, duration_s=2.0).end_s == 3.0


class TestPlanConstruction:
    def test_duplicate_address_rejected(self):
        events = [
            NetFaultEvent(conn=0, direction="c2s", frame=1, kind="duplicate"),
            NetFaultEvent(conn=0, direction="c2s", frame=1, kind="cut"),
        ]
        with pytest.raises(NetFaultPlanError, match="duplicate net fault"):
            NetFaultPlan(events)

    def test_event_lookup(self):
        plan = NetFaultPlan([
            NetFaultEvent(conn=1, direction="s2c", frame=2, kind="cut"),
        ])
        assert plan.event_for(1, "s2c", 2).kind == "cut"
        assert plan.event_for(1, "c2s", 2) is None
        assert plan.event_for(0, "s2c", 2) is None
        assert len(plan) == 1

    def test_partition_lookup_sorted_windows(self):
        plan = NetFaultPlan(partitions=[
            {"start_s": 5.0, "duration_s": 1.0},
            {"start_s": 1.0, "duration_s": 0.5},
        ])
        assert plan.partition_at(1.2).start_s == 1.0
        assert plan.partition_at(1.5) is None  # half-open window
        assert plan.partition_at(5.9).start_s == 5.0
        assert plan.partition_at(0.0) is None

    def test_events_accept_dicts(self):
        plan = NetFaultPlan([
            {"conn": 0, "direction": "c2s", "frame": 0, "kind": "delay",
             "delay_s": 0.1},
        ])
        assert plan.events[0].delay_s == 0.1


class TestFromRates:
    def test_same_seed_same_plan(self):
        kwargs = dict(conns=3, frames=128, delay=0.1, stall=0.05,
                      duplicate=0.1, truncate=0.02, cut=0.02)
        a = NetFaultPlan.from_rates(seed=11, **kwargs)
        b = NetFaultPlan.from_rates(seed=11, **kwargs)
        assert [e.to_dict() for e in a.events] == [e.to_dict() for e in b.events]
        c = NetFaultPlan.from_rates(seed=12, **kwargs)
        assert [e.to_dict() for e in a.events] != [e.to_dict() for e in c.events]

    def test_substreams_are_independent_per_conn(self):
        """Adding a connection never reshuffles existing streams."""
        small = NetFaultPlan.from_rates(seed=5, conns=2, frames=256,
                                        duplicate=0.2, cut=0.05)
        large = NetFaultPlan.from_rates(seed=5, conns=4, frames=256,
                                        duplicate=0.2, cut=0.05)
        small_events = [e.to_dict() for e in small.events]
        large_prefix = [e.to_dict() for e in large.events if e.conn < 2]
        assert small_events == large_prefix

    def test_one_fault_per_frame_and_rate_sanity(self):
        plan = NetFaultPlan.from_rates(seed=3, conns=2, frames=512,
                                       delay=0.3, stall=0.3, duplicate=0.3,
                                       truncate=0.3, cut=0.3)
        seen = set()
        for e in plan.events:
            key = (e.conn, e.direction, e.frame)
            assert key not in seen
            seen.add(key)
            assert e.kind in NET_FAULT_KINDS
            assert e.direction in DIRECTIONS
        # at ~79% combined hit rate the streams must carry plenty
        assert len(plan.events) > 1000

    def test_rate_validation(self):
        with pytest.raises(NetFaultPlanError, match="rate must be in"):
            NetFaultPlan.from_rates(seed=0, cut=1.5)
        with pytest.raises(NetFaultPlanError, match="conns"):
            NetFaultPlan.from_rates(seed=0, conns=0)
        with pytest.raises(NetFaultPlanError, match="delay_s"):
            NetFaultPlan.from_rates(seed=0, delay_s=0.0)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        plan = NetFaultPlan.from_rates(
            seed=9, conns=2, frames=64, duplicate=0.2, cut=0.1,
            partitions=[{"start_s": 0.5, "duration_s": 0.25}],
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = load_net_fault_plan(path)
        assert loaded.to_dict() == plan.to_dict()
        assert loaded.to_dict()["schema"] == NET_FAULT_PLAN_SCHEMA

    def test_rates_key_materializes(self, tmp_path):
        path = tmp_path / "rates.json"
        path.write_text(json.dumps({
            "schema": NET_FAULT_PLAN_SCHEMA,
            "seed": 7,
            "rates": {"conns": 2, "frames": 64, "duplicate": 0.2},
        }))
        loaded = load_net_fault_plan(path)
        direct = NetFaultPlan.from_rates(seed=7, conns=2, frames=64,
                                         duplicate=0.2)
        assert [e.to_dict() for e in loaded.events] == \
            [e.to_dict() for e in direct.events]

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro-net-fault-plan/999"}))
        with pytest.raises(NetFaultPlanError, match="unsupported schema"):
            load_net_fault_plan(path)

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": NET_FAULT_PLAN_SCHEMA,
                                    "chaos": True}))
        with pytest.raises(NetFaultPlanError, match="unknown key"):
            load_net_fault_plan(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(NetFaultPlanError, match="not valid JSON"):
            load_net_fault_plan(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(NetFaultPlanError, match="cannot read"):
            load_net_fault_plan(tmp_path / "absent.json")
