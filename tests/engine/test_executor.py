"""Executor coordination tests against an instrumented fake plan.

The fake plan models exactly what the executors rely on: monotonic
per-device clocks that only advance while a job runs, a cache keyed
by request key, and hooks that record their call order. Each threaded
test cross-checks the full observable outcome (commit order, device
assignment, cache behaviour) against the serial reference run.
"""

import threading
import time

import pytest

from repro.engine.executor import (
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)


class FakePlan:
    """BatchPlan double: jobs with fixed model costs on fake devices.

    ``jobs`` is a list of ``(key, cost)``; a repeated key is served
    "from cache" by the prologue once an identical job has committed
    (mirroring the service's result cache). ``run`` busy-waits a tiny
    real delay so threaded runs genuinely overlap, and advances the
    assigned device's clock by ``cost`` at completion (coarse but
    monotonic-in-flight, like the simulated device's model clock).
    """

    def __init__(self, jobs, num_devices=2, sequential_required=False, delay=0.0):
        self.jobs = jobs
        self.n = len(jobs)
        self.num_devices = num_devices
        self.sequential_required = sequential_required
        self.delay = delay
        self.clocks = [0.0] * num_devices
        self.committed = []
        self.placed = {}  # ticket -> device
        self.calls = []  # (hook, ticket) in call order
        self.cache = set()
        self._lock = threading.Lock()

    def key(self, ticket):
        return self.jobs[ticket][0]

    def device_clock(self, device_index):
        return self.clocks[device_index]

    def prologue(self, ticket):
        self.calls.append(("prologue", ticket))
        key = self.jobs[ticket][0]
        if key in self.cache:
            return {"ticket": ticket, "cached": True}
        return None

    def place(self, ticket, device_index):
        self.calls.append(("place", ticket))
        if device_index is None:
            device_index = min(
                range(self.num_devices), key=lambda d: (self.clocks[d], d)
            )
        self.placed[ticket] = device_index
        return device_index

    def run(self, ticket, device_index):
        if self.delay:
            time.sleep(self.delay)
        with self._lock:
            self.clocks[device_index] += self.jobs[ticket][1]
        return {"ticket": ticket, "cached": False, "device": device_index}

    def commit(self, ticket, record):
        self.calls.append(("commit", ticket))
        self.cache.add(self.jobs[ticket][0])
        self.committed.append(record)


def run_both(jobs, num_devices=2, workers=None, delay=0.0):
    serial = FakePlan(jobs, num_devices)
    SerialExecutor().run_batch(serial)
    threaded = FakePlan(jobs, num_devices, delay=delay)
    ThreadedExecutor(workers=workers).run_batch(threaded)
    return serial, threaded


class TestSerialExecutor:
    def test_hooks_run_in_strict_ticket_order(self):
        plan = FakePlan([("a", 1.0), ("b", 2.0), ("a", 1.0)])
        records = SerialExecutor().run_batch(plan)
        assert [r["ticket"] for r in records] == [0, 1, 2]
        assert plan.calls == [
            ("prologue", 0), ("place", 0), ("commit", 0),
            ("prologue", 1), ("place", 1), ("commit", 1),
            ("prologue", 2), ("commit", 2),  # cache hit: no placement
        ]
        assert records[2]["cached"] is True

    def test_least_loaded_placement(self):
        plan = FakePlan([("a", 3.0), ("b", 1.0), ("c", 1.0), ("d", 1.0)])
        SerialExecutor().run_batch(plan)
        # ticket 0 loads device 0 (3.0); 1 goes to idle device 1; 2 and
        # 3 keep returning to the lighter device 1 (1.0 then 2.0)
        assert plan.placed == {0: 0, 1: 1, 2: 1, 3: 1}

    def test_empty_batch(self):
        assert SerialExecutor().run_batch(FakePlan([])) == []


class TestThreadedExecutor:
    def test_matches_serial_placement_and_commit_order(self):
        jobs = [("a", 3.0), ("b", 1.0), ("c", 2.0), ("d", 1.0), ("e", 4.0)]
        serial, threaded = run_both(jobs, num_devices=2, workers=2, delay=0.002)
        assert threaded.placed == serial.placed
        assert threaded.clocks == serial.clocks
        assert [r["ticket"] for r in threaded.committed] == [0, 1, 2, 3, 4]

    def test_duplicate_keys_hit_like_serial(self):
        jobs = [("a", 2.0), ("a", 2.0), ("b", 1.0), ("a", 2.0), ("b", 1.0)]
        serial, threaded = run_both(jobs, num_devices=3, workers=3, delay=0.002)
        s_hits = [r["ticket"] for r in serial.committed if r["cached"]]
        t_hits = [r["ticket"] for r in threaded.committed if r["cached"]]
        assert t_hits == s_hits == [1, 3, 4]
        assert threaded.placed == serial.placed

    def test_returns_records_in_ticket_order(self):
        jobs = [(f"k{i}", float(1 + i % 3)) for i in range(12)]
        plan = FakePlan(jobs, num_devices=4, delay=0.001)
        records = ThreadedExecutor(workers=4).run_batch(plan)
        assert [r["ticket"] for r in records] == list(range(12))
        assert [r["ticket"] for r in plan.committed] == list(range(12))

    def test_sequential_required_falls_back_to_serial_order(self):
        jobs = [("a", 1.0), ("b", 2.0), ("a", 1.0)]
        reference = FakePlan(jobs)
        SerialExecutor().run_batch(reference)
        gated = FakePlan(jobs, sequential_required=True)
        ThreadedExecutor(workers=2).run_batch(gated)
        assert gated.calls == reference.calls
        assert gated.placed == reference.placed

    def test_single_device_pool_degrades_gracefully(self):
        jobs = [("a", 1.0), ("b", 2.0)]
        serial, threaded = run_both(jobs, num_devices=1, workers=4)
        assert threaded.placed == serial.placed == {0: 0, 1: 0}

    def test_worker_exception_propagates(self):
        class ExplodingPlan(FakePlan):
            def run(self, ticket, device_index):
                if ticket == 1:
                    raise RuntimeError("boom on ticket 1")
                return super().run(ticket, device_index)

        plan = ExplodingPlan([("a", 1.0), ("b", 1.0), ("c", 1.0)])
        with pytest.raises(RuntimeError, match="boom on ticket 1"):
            ThreadedExecutor(workers=2).run_batch(plan)
        # ticket 0 still committed before the failure surfaced
        assert [r["ticket"] for r in plan.committed] == [0]

    def test_empty_batch(self):
        assert ThreadedExecutor().run_batch(FakePlan([])) == []

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(workers=0)


class TestResolveExecutor:
    def test_default_and_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_threaded_with_workers(self):
        ex = resolve_executor("threaded", workers=3)
        assert isinstance(ex, ThreadedExecutor)
        assert ex.workers == 3

    def test_instance_passthrough(self):
        ex = ThreadedExecutor(workers=2)
        assert resolve_executor(ex) is ex

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("process")
