"""Unit tests for GraphSession / SessionManager semantics."""

import pytest

from repro.core.config import SolverConfig
from repro.errors import SessionError
from repro.graph import from_edge_list
from repro.stream import GraphSession, SessionManager, local_solve_batch
from repro.trace import CounterTracer

TRIANGLE = [(0, 1), (1, 2), (0, 2), (2, 3)]


def make_session(sid="s1", edges=TRIANGLE, **kwargs):
    return GraphSession(sid, from_edge_list(edges), **kwargs)


class TestGraphSession:
    def test_open_view_is_epoch_zero_full_answer(self):
        session = make_session()
        view = session.view
        assert view.epoch == 0
        assert view.omega == 3
        assert view.witness == (0, 1, 2)
        assert view.path == "open"
        assert not view.replayed
        assert view.session == "s1"

    def test_apply_advances_epoch_and_answer(self):
        session = make_session()
        view = session.apply(inserts=[(0, 3), (1, 3)])
        assert view.epoch == 1
        assert view.omega == 4
        assert view.witness == (0, 1, 2, 3)
        assert view.session == "s1"
        assert session.view is view

    def test_view_to_dict_round_trips_json_types(self):
        view = make_session().view
        doc = view.to_dict()
        assert doc["witness"] == [0, 1, 2]
        assert all(isinstance(v, int) for v in doc["witness"])
        assert set(doc) == {
            "session", "epoch", "omega", "num_maximum_cliques", "witness",
            "fingerprint", "num_vertices", "num_edges", "path", "replayed",
        }

    def test_duplicate_request_id_replays_without_mutating(self):
        tracer = CounterTracer()
        session = make_session(tracer=tracer)
        first = session.apply(inserts=[(0, 3)], request_id="rq-1")
        replay = session.apply(inserts=[(0, 3)], request_id="rq-1")
        assert session.epoch == 1
        assert replay.replayed and not first.replayed
        assert replay.epoch == first.epoch
        assert replay.fingerprint == first.fingerprint
        assert tracer.counters_snapshot().get("stream.replays") == 1

    def test_distinct_request_ids_apply_separately(self):
        session = make_session()
        session.apply(inserts=[(0, 3)], request_id="rq-1")
        session.apply(deletes=[(0, 3)], request_id="rq-2")
        assert session.epoch == 2

    def test_dedup_table_is_bounded(self):
        session = make_session(dedup_capacity=2)
        for i in range(4):
            session.apply(inserts=[(0, 4 + i)], request_id=f"rq-{i}")
        # rq-0 evicted: replaying it applies as a fresh (no-op) batch
        view = session.apply(inserts=[(0, 4)], request_id="rq-0")
        assert not view.replayed
        assert session.epoch == 5

    def test_failed_solve_rolls_back_graph_delta(self):
        calls = []

        def flaky(jobs):
            calls.append(len(jobs))
            if len(calls) == 2:  # bootstrap succeeds, first apply fails
                raise RuntimeError("backend exploded")
            return local_solve_batch(jobs)

        session = make_session(solve_batch=flaky, dirty_threshold=50.0)
        before = session.view
        with pytest.raises(RuntimeError, match="backend exploded"):
            session.apply(inserts=[(0, 3), (1, 3)], request_id="rq-x")
        assert session.epoch == 0
        assert session.view is before
        assert not session.mutable.has_edge(0, 3)
        # the failed request_id was not recorded: the retry executes
        retry = session.apply(inserts=[(0, 3), (1, 3)], request_id="rq-x")
        assert retry.epoch == 1 and retry.omega == 4 and not retry.replayed

    def test_bad_mutation_is_a_session_error(self):
        session = make_session()
        with pytest.raises(SessionError, match="bad mutation batch"):
            session.apply(inserts=[(0, 0)])
        assert session.epoch == 0

    def test_closed_session_rejects_mutations(self):
        session = make_session()
        session.close()
        with pytest.raises(SessionError) as exc_info:
            session.apply(inserts=[(0, 3)])
        assert exc_info.value.code == "unknown_session"

    def test_non_max_clique_config_rejected(self):
        with pytest.raises(SessionError, match="not streamable"):
            make_session(config=SolverConfig(problem="k-clique-count", k=3))

    def test_preset_omega_floor_rejected(self):
        with pytest.raises(SessionError, match="omega_floor"):
            make_session(config=SolverConfig(omega_floor=2))

    def test_stats_counters(self):
        session = make_session()
        session.apply(inserts=[(0, 3)])
        stats = session.stats()
        assert stats["epoch"] == 1
        assert stats["incremental_batches"] + stats["full_solves"] >= 1
        assert stats["tracking"] is True


class TestSessionManager:
    def test_create_get_close_lifecycle(self):
        manager = SessionManager()
        session = manager.create(make_session("a"))
        assert len(manager) == 1 and "a" in manager
        assert manager.get("a") is session
        closed = manager.close("a")
        assert closed is session and session.closed
        assert len(manager) == 0

    def test_duplicate_create_is_session_exists(self):
        manager = SessionManager()
        manager.create(make_session("a"))
        with pytest.raises(SessionError) as exc_info:
            manager.create(make_session("a"))
        assert exc_info.value.code == "session_exists"

    def test_cap_is_too_many_sessions(self):
        manager = SessionManager(max_sessions=1)
        manager.create(make_session("a"))
        with pytest.raises(SessionError) as exc_info:
            manager.create(make_session("b"))
        assert exc_info.value.code == "too_many_sessions"
        # closing frees the slot
        manager.close("a")
        manager.create(make_session("b"))

    def test_unknown_session_code(self):
        manager = SessionManager()
        with pytest.raises(SessionError) as exc_info:
            manager.get("nope")
        assert exc_info.value.code == "unknown_session"

    def test_ids_sorted(self):
        manager = SessionManager()
        for sid in ("z", "a", "m"):
            manager.create(make_session(sid))
        assert manager.ids() == ["a", "m", "z"]
