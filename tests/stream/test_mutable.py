"""Unit tests for the resident mutable graph (base CSR + deltas)."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.graph.build import from_edge_array
from repro.stream.mutable import MutableGraph, MutationDelta

TRIANGLE = [(0, 1), (1, 2), (0, 2)]


def fresh(edges, n=None):
    return from_edge_list(edges, num_vertices=n)


def materialized_fingerprint(mg):
    return mg.materialize().fingerprint()


class TestApply:
    def test_insert_bumps_epoch_and_edge_count(self):
        mg = MutableGraph(fresh(TRIANGLE))
        delta = mg.apply(inserts=[(1, 3)])
        assert mg.epoch == 1
        assert delta.epoch == 1
        assert delta.inserted == ((1, 3),)
        assert mg.num_edges == 4
        assert mg.has_edge(1, 3) and mg.has_edge(3, 1)

    def test_canonicalizes_and_dedups_within_batch(self):
        mg = MutableGraph(fresh(TRIANGLE))
        delta = mg.apply(inserts=[(3, 1), (1, 3), [1, 3]])
        assert delta.inserted == ((1, 3),)
        assert mg.num_edges == 4

    def test_inserting_present_edge_is_noop_but_spends_epoch(self):
        mg = MutableGraph(fresh(TRIANGLE))
        delta = mg.apply(inserts=[(0, 1)])
        assert delta.inserted == ()
        assert mg.epoch == 1
        assert mg.num_edges == 3

    def test_deleting_absent_edge_is_noop(self):
        mg = MutableGraph(fresh(TRIANGLE))
        delta = mg.apply(deletes=[(0, 3)])
        assert delta.deleted == ()
        assert mg.num_edges == 3

    def test_delete_then_reinsert_round_trips(self):
        mg = MutableGraph(fresh(TRIANGLE))
        before = materialized_fingerprint(mg)
        mg.apply(deletes=[(0, 1)])
        assert not mg.has_edge(0, 1)
        mg.apply(inserts=[(0, 1)])
        assert materialized_fingerprint(mg) == before
        assert mg.epoch == 2

    def test_insert_and_delete_same_edge_rejected_atomically(self):
        mg = MutableGraph(fresh(TRIANGLE))
        with pytest.raises(ValueError, match="both insert and delete"):
            mg.apply(inserts=[(0, 3)], deletes=[(3, 0)])
        assert mg.epoch == 0
        assert not mg.has_edge(0, 3)

    @pytest.mark.parametrize(
        "bad", [[(0, 0)], [(-1, 2)], [(0,)], [("a", "b")], [(True, 1)]]
    )
    def test_bad_pairs_rejected(self, bad):
        mg = MutableGraph(fresh(TRIANGLE))
        with pytest.raises(ValueError):
            mg.apply(inserts=bad)
        assert mg.epoch == 0

    def test_universe_grows_monotonically(self):
        mg = MutableGraph(fresh(TRIANGLE))
        assert mg.num_vertices == 3
        mg.apply(inserts=[(2, 9)])
        assert mg.num_vertices == 10
        mg.apply(deletes=[(2, 9)])
        # the slot survives the deletion: epochs stay comparable
        assert mg.num_vertices == 10
        assert mg.materialize().num_vertices == 10


class TestMaterialize:
    def test_matches_fresh_build_at_every_epoch(self):
        mg = MutableGraph(fresh(TRIANGLE))
        script = [
            (((1, 3), (2, 3)), ()),
            ((), ((0, 1),)),
            (((0, 4), (3, 4)), ((2, 3),)),
        ]
        edges = set(TRIANGLE)
        for ins, dels in script:
            mg.apply(ins, dels)
            edges |= set(ins)
            edges -= set(dels)
            src, dst = np.asarray(sorted(edges)).T
            want = from_edge_array(src, dst, num_vertices=mg.num_vertices)
            assert mg.materialize().fingerprint() == want.fingerprint()

    def test_materialization_is_cached_until_a_real_change(self):
        mg = MutableGraph(fresh(TRIANGLE))
        first = mg.materialize()
        assert mg.materialize() is first
        mg.apply(inserts=[(0, 1)])  # no-op batch: cache survives
        assert mg.materialize() is first
        mg.apply(inserts=[(1, 3)])
        assert mg.materialize() is not first

    def test_compaction_folds_deltas_into_base(self):
        mg = MutableGraph(fresh(TRIANGLE), compact_every=2)
        mg.apply(inserts=[(1, 3), (2, 3)])
        fp = materialized_fingerprint(mg)
        assert mg.compactions == 1
        assert mg.delta_size == 0
        assert mg.base.num_edges == 5
        # compaction is invisible to the canonical view
        assert materialized_fingerprint(mg) == fp


class TestRevert:
    def test_revert_restores_graph_epoch_and_universe(self):
        mg = MutableGraph(fresh(TRIANGLE))
        before = materialized_fingerprint(mg)
        delta = mg.apply(inserts=[(0, 7)], deletes=[(1, 2)])
        mg.revert(delta)
        assert mg.epoch == 0
        assert mg.num_vertices == 3
        assert materialized_fingerprint(mg) == before

    def test_only_newest_epoch_reverts(self):
        mg = MutableGraph(fresh(TRIANGLE))
        old = mg.apply(inserts=[(1, 3)])
        mg.apply(inserts=[(2, 3)])
        with pytest.raises(ValueError, match="newest epoch"):
            mg.revert(old)

    def test_revert_of_noop_delta(self):
        mg = MutableGraph(fresh(TRIANGLE))
        delta = mg.apply(inserts=[(0, 1)])  # already present
        mg.revert(delta)
        assert mg.epoch == 0
        assert mg.num_edges == 3


def test_delta_size_property():
    delta = MutationDelta(epoch=1, inserted=((0, 1),), deleted=((1, 2), (2, 3)))
    assert delta.size == 3


def test_compact_every_validated():
    with pytest.raises(ValueError):
        MutableGraph(fresh(TRIANGLE), compact_every=0)
