"""The streaming invariant: every epoch equals a from-scratch solve.

The session's maintained answer (ω, the maximum-clique count, the
lexicographically smallest witness, the graph fingerprint) must be
byte-identical to bootstrapping a fresh solver on the same epoch's
graph -- after any sequence of insert/delete batches, on the serial
in-process backend and on a threaded one. Hypothesis drives random
sequences; the seeded long-run test additionally pins down that the
*incremental* path (not the full-solve fallback) carries the majority
of the batches, which is the subsystem's whole reason to exist.
"""

import concurrent.futures

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SolverConfig
from repro.graph import from_edge_list
from repro.graph import generators as gen
from repro.stream import GraphSession, IncrementalSolver, local_solve_batch
from repro.trace import CounterTracer

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def threaded_solve_batch(jobs):
    """Localized solves of one batch fanned across real threads."""
    if len(jobs) <= 1:
        return local_solve_batch(jobs)
    with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(local_solve_batch, [job]) for job in jobs]
        return [f.result()[0] for f in futures]


def assert_view_matches_scratch(session, config):
    """session.view == a fresh bootstrap of the same epoch's graph."""
    graph = session.mutable.materialize()
    fresh = IncrementalSolver(config, local_solve_batch)
    state = fresh.bootstrap(graph)
    view = session.view
    assert view.omega == state.omega, (view.epoch, view.omega, state.omega)
    assert view.num_maximum_cliques == state.num_maximum_cliques
    assert view.witness == state.witness
    assert view.fingerprint == graph.fingerprint()
    # and the tracked sets agree entirely, not just their summaries
    if session.solver.tracking and fresh.tracking:
        assert session.solver.state.cliques == fresh.state.cliques


@st.composite
def mutation_scripts(draw, max_n=12, max_batches=6, max_edges=3):
    """(base graph, [(inserts, deletes), ...]) with ids in range."""
    n = draw(st.integers(3, max_n))
    density = draw(st.floats(0.1, 0.6))
    seed = draw(st.integers(0, 2**31 - 1))
    graph = gen.erdos_renyi(n, density, seed=seed)
    pair = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
        lambda e: e[0] != e[1]
    )
    batches = draw(
        st.lists(
            st.tuples(
                st.lists(pair, max_size=max_edges),
                st.lists(pair, max_size=max_edges),
            ),
            min_size=1,
            max_size=max_batches,
        )
    )
    # an edge in both lists of one batch is rejected by design; keep
    # the scripts inside the valid space
    cleaned = []
    for ins, dels in batches:
        canon_ins = {tuple(sorted(e)) for e in ins}
        dels = [e for e in dels if tuple(sorted(e)) not in canon_ins]
        cleaned.append((ins, dels))
    return graph, cleaned


@given(script=mutation_scripts())
@settings(**SETTINGS)
def test_random_scripts_hold_parity_at_every_epoch(script):
    graph, batches = script
    config = SolverConfig()
    session = GraphSession("prop", graph, config)
    assert_view_matches_scratch(session, config)
    for i, (ins, dels) in enumerate(batches):
        session.apply(ins, dels, request_id=f"rq-{i}")
        assert_view_matches_scratch(session, config)
    assert session.epoch == len(batches)


def seeded_script(graph, n_batches, seed, edges_per_batch=3, delete_every=4):
    """A deterministic long mutation stream over the graph's universe."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    src, dst = graph.to_edge_list()
    present = {tuple(sorted(e)) for e in zip(src.tolist(), dst.tolist())}
    pool = []
    batches = []
    for i in range(n_batches):
        if i % delete_every == delete_every - 1 and len(pool) >= 2:
            picks = sorted(rng.choice(len(pool), size=2, replace=False))
            dels = [pool[int(p)] for p in picks]
            for e in dels:
                pool.remove(e)
                present.discard(e)
            batches.append(((), tuple(dels)))
            continue
        ins = []
        while len(ins) < edges_per_batch:
            u, v = (int(x) for x in rng.integers(0, n, size=2))
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in present:
                continue
            present.add(e)
            pool.append(e)
            ins.append(e)
        batches.append((tuple(ins), ()))
    return batches


@pytest.mark.parametrize(
    "backend", [local_solve_batch, threaded_solve_batch],
    ids=["serial", "threaded"],
)
def test_fifty_mutation_stream_is_incremental_and_exact(backend):
    """>= 50 seeded mutations: parity at every epoch, incremental majority."""
    graph = gen.caveman_social(6, 40, p_in=0.3, seed=11)
    config = SolverConfig()
    tracer = CounterTracer()
    session = GraphSession(
        "soak", graph, config, solve_batch=backend, tracer=tracer
    )
    batches = seeded_script(graph, n_batches=50, seed=20260808)
    views = []
    for i, (ins, dels) in enumerate(batches):
        views.append(session.apply(ins, dels, request_id=f"soak-{i}"))
        assert_view_matches_scratch(session, config)
    assert session.epoch == 50
    stats = session.stats()
    # the localized path must have absorbed the majority of the batches
    assert stats["incremental_batches"] > len(batches) / 2, stats
    assert tracer.counters_snapshot().get("stream.incremental") == \
        stats["incremental_batches"]
    # executors must not change a single view: pin the trajectory shape
    assert [v.epoch for v in views] == list(range(1, 51))


def test_serial_and_threaded_backends_agree_view_for_view():
    graph = gen.caveman_social(4, 30, p_in=0.3, seed=5)
    config = SolverConfig()
    batches = seeded_script(graph, n_batches=30, seed=7)

    def run(backend):
        session = GraphSession("x", graph, config, solve_batch=backend)
        return [session.apply(ins, dels) for ins, dels in batches]

    serial = run(local_solve_batch)
    threaded = run(threaded_solve_batch)
    for a, b in zip(serial, threaded):
        assert a.to_dict() == b.to_dict()


def test_witness_destroyed_falls_back_and_recovers():
    """Deleting every maximum clique's edge forces one full re-solve."""
    edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
    config = SolverConfig()
    tracer = CounterTracer()
    session = GraphSession(
        "w", from_edge_list(edges), config, tracer=tracer,
        dirty_threshold=1.0,  # tiny graph: keep re-inserts localized
    )
    assert session.view.omega == 3
    view = session.apply(deletes=[(0, 1)])  # the only triangle dies
    assert view.path == "full"
    assert view.omega == 2
    assert tracer.counters_snapshot().get("stream.full.witness_destroyed") == 1
    assert_view_matches_scratch(session, config)
    # and the session keeps tracking afterwards
    view = session.apply(inserts=[(0, 1)])
    assert view.omega == 3 and view.path == "incremental"
    assert_view_matches_scratch(session, config)


def test_dirty_region_fallback_on_dense_batch():
    """A batch whose neighborhoods span the graph full-solves."""
    graph = gen.erdos_renyi(30, 0.5, seed=3)
    config = SolverConfig()
    tracer = CounterTracer()
    session = GraphSession(
        "d", graph, config, dirty_threshold=0.05, tracer=tracer
    )
    missing = []
    for u in range(30):
        for v in range(u + 1, 30):
            if not session.mutable.has_edge(u, v):
                missing.append((u, v))
            if len(missing) >= 8:
                break
        if len(missing) >= 8:
            break
    view = session.apply(inserts=missing)
    assert view.path == "full"
    assert tracer.counters_snapshot().get("stream.full.dirty") == 1
    assert_view_matches_scratch(session, config)
