"""Structured tracing for the solve pipeline (see docs/OBSERVABILITY.md).

Spans, per-kernel events, and counters on the deterministic model
clock, with JSON and Chrome-trace (``chrome://tracing``) exports. The
default :data:`NULL_TRACER` records nothing, so untraced runs are
bit-identical to the pre-tracing implementation.
"""

from .tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    CounterTracer,
    JsonTracer,
    KernelEventRecord,
    NullTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "CounterTracer",
    "JsonTracer",
    "SpanRecord",
    "KernelEventRecord",
    "NULL_TRACER",
    "TRACE_SCHEMA",
]
