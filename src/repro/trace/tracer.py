"""Span-based structured tracing over the model clock.

The tracer records three event kinds, all timestamped on the
*deterministic model clock* (device model seconds), so a trace is as
reproducible as the solve it observes:

* **spans** -- named intervals (pipeline stages, baseline phases) with
  nesting tracked through a span stack;
* **kernel events** -- one per :meth:`repro.gpusim.device.Device`
  kernel charge, fed through the device's trace hook and attributed to
  the innermost open span;
* **counters** -- monotonically accumulated named integers (candidates
  generated, pruned, sublists kept, ...).

:class:`NullTracer` is the default everywhere and does nothing, so
tracing is strictly opt-in: a run without a recording tracer performs
the exact same device charges and produces the exact same model-time
numbers. :class:`JsonTracer` records everything and exports either the
native JSON schema (see docs/OBSERVABILITY.md) or the Chrome trace
event format for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..log import get_logger

__all__ = [
    "SpanRecord",
    "KernelEventRecord",
    "Tracer",
    "NullTracer",
    "JsonTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA",
]

log = get_logger("trace")

#: Schema identifier stamped into every exported trace.
TRACE_SCHEMA = "repro-trace/1"


@dataclass
class SpanRecord:
    """One named interval on the model-clock timeline."""

    name: str
    category: str
    start_model_s: float
    end_model_s: float = 0.0
    start_wall_s: float = 0.0
    end_wall_s: float = 0.0
    depth: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def model_time_s(self) -> float:
        return self.end_model_s - self.start_model_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "start_model_s": self.start_model_s,
            "end_model_s": self.end_model_s,
            "model_time_s": self.model_time_s,
            "wall_time_s": self.end_wall_s - self.start_wall_s,
            "depth": self.depth,
            "attrs": self.attrs,
        }


@dataclass
class KernelEventRecord:
    """One device kernel charge, attributed to the enclosing span."""

    name: str
    span: str  # innermost open span name ("" outside any span)
    threads: int
    useful_ops: float
    effective_ops: float
    model_time_s: float
    end_model_s: float

    @property
    def start_model_s(self) -> float:
        return self.end_model_s - self.model_time_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span": self.span,
            "threads": self.threads,
            "useful_ops": self.useful_ops,
            "effective_ops": self.effective_ops,
            "model_time_s": self.model_time_s,
            "start_model_s": self.start_model_s,
            "end_model_s": self.end_model_s,
        }


class Tracer:
    """No-op tracing interface (also the base class of real tracers).

    ``enabled`` is False on the base class; hot paths may check it to
    skip building event payloads entirely.
    """

    enabled: bool = False

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "stage",
        model_clock: Optional[Callable[[], float]] = None,
        **attrs: Any,
    ):
        """Open a named span; a context manager closing it on exit.

        ``model_clock`` supplies model-seconds timestamps (e.g.
        ``lambda: device.model_time_s``); spans without one are
        timestamped 0 on the model axis but still record wall time.
        """
        yield self

    def on_kernel(
        self,
        name: str,
        threads: int,
        useful_ops: float,
        effective_ops: float,
        model_time_s: float,
        end_model_s: float,
    ) -> None:
        """Device trace-hook entry point (one call per kernel charge)."""

    def counter(self, name: str, value: int = 1) -> None:
        """Accumulate ``value`` into the named counter."""


class NullTracer(Tracer):
    """Explicitly-named alias of the no-op base tracer."""


#: Shared default tracer instance (stateless, safe to share).
NULL_TRACER = NullTracer()


class CounterTracer(Tracer):
    """Thread-safe counters-only tracer for long-lived processes.

    The solve server runs for hours and serves overlapping requests
    from worker threads, which rules out :class:`JsonTracer` there: it
    accumulates every span and kernel event forever, and its
    ``enabled`` flag makes the threaded batch executor fall back to
    the ordered path (interleaved span streams would be observable).
    This tracer keeps only the counter map -- exactly what the server's
    ``stats`` frame reports -- behind a lock, and leaves ``enabled``
    False so span/kernel hot paths and executor parallelism are
    untouched.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}

    def counter(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def counters_snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of every accumulated counter."""
        with self._lock:
            return dict(self._counters)


class JsonTracer(Tracer):
    """Recording tracer with JSON and Chrome-trace exports."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self.kernels: List[KernelEventRecord] = []
        self.counters: Dict[str, int] = {}
        self._stack: List[SpanRecord] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        category: str = "stage",
        model_clock: Optional[Callable[[], float]] = None,
        **attrs: Any,
    ):
        clock = model_clock if model_clock is not None else (lambda: 0.0)
        rec = SpanRecord(
            name=name,
            category=category,
            start_model_s=clock(),
            start_wall_s=time.perf_counter(),
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._stack.append(rec)
        try:
            yield self
        finally:
            self._stack.pop()
            rec.end_model_s = clock()
            rec.end_wall_s = time.perf_counter()
            self.spans.append(rec)
            log.debug(
                "span %s (%s): %.3f ms model",
                rec.name, rec.category, rec.model_time_s * 1e3,
            )

    def on_kernel(
        self,
        name: str,
        threads: int,
        useful_ops: float,
        effective_ops: float,
        model_time_s: float,
        end_model_s: float,
    ) -> None:
        self.kernels.append(
            KernelEventRecord(
                name=name,
                span=self._stack[-1].name if self._stack else "",
                threads=threads,
                useful_ops=useful_ops,
                effective_ops=effective_ops,
                model_time_s=model_time_s,
                end_model_s=end_model_s,
            )
        )

    def counter(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(value)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def span_names(self) -> List[str]:
        """Names of completed spans in completion order."""
        return [s.name for s in self.spans]

    def stage_spans(self) -> List[SpanRecord]:
        """Completed spans with category ``"stage"``."""
        return [s for s in self.spans if s.category == "stage"]

    def kernel_totals(self) -> Dict[str, float]:
        """Model seconds per kernel name (like the device breakdown)."""
        totals: Dict[str, float] = {}
        for k in self.kernels:
            totals[k.name] = totals.get(k.name, 0.0) + k.model_time_s
        return totals

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The native trace schema (see docs/OBSERVABILITY.md)."""
        return {
            "schema": TRACE_SCHEMA,
            "spans": [s.to_dict() for s in self.spans],
            "kernels": [k.to_dict() for k in self.kernels],
            "counters": dict(self.counters),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        log.debug("wrote JSON trace to %s", path)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome trace event format (``chrome://tracing`` / Perfetto).

        Model seconds map to microseconds of trace time; spans land on
        tid 0, kernel events on tid 1 of the same process.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro model timeline"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "stages"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": 1,
                "args": {"name": "kernels"},
            },
        ]
        for s in self.spans:
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": s.start_model_s * 1e6,
                    "dur": s.model_time_s * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": dict(s.attrs),
                }
            )
        for k in self.kernels:
            events.append(
                {
                    "name": k.name,
                    "cat": "kernel",
                    "ph": "X",
                    "ts": k.start_model_s * 1e6,
                    "dur": k.model_time_s * 1e6,
                    "pid": 0,
                    "tid": 1,
                    "args": {
                        "span": k.span,
                        "threads": k.threads,
                        "useful_ops": k.useful_ops,
                        "effective_ops": k.effective_ops,
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=2)
        log.debug("wrote Chrome trace to %s", path)
