"""Host-side kernel passes of the breadth-first level loop.

These are the vectorised bodies of the paper's two per-level kernels
(CountCliques and OutputNewCliques, Algorithm 2) plus the pair-chunk
machinery that bounds host memory while materialising the per-thread
inner loops. They contain *no* device accounting -- the
:class:`~repro.engine.driver.LevelDriver` charges the launches --
which is what lets one pass implementation serve both the isolated
(one search) and fused (merged concurrent-window) launch schedules.

Moved here from ``repro.core.bfs`` (which re-exports them under their
historical underscore names) so the search adapters no longer reach
into each other's private helpers.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "chunk_slices",
    "expand_pairs",
    "count_pass",
    "output_pass",
    "run_boundaries_host",
]


def chunk_slices(tail: np.ndarray, chunk_pairs: int):
    """Split thread ranges so each slice covers <= chunk_pairs pairs."""
    csum = np.cumsum(tail)
    total = int(csum[-1]) if csum.size else 0
    if total == 0:
        return
    start = 0
    n = tail.size
    while start < n:
        base = int(csum[start - 1]) if start else 0
        # furthest thread whose cumulative pair count stays in budget
        stop = int(np.searchsorted(csum, base + chunk_pairs, side="right"))
        if stop <= start:  # single thread exceeding the budget: take it alone
            stop = start + 1
        yield start, stop
        start = stop


def expand_pairs(tail_slice: np.ndarray, start: int):
    """Flat (idx1, idx2) pair arrays for threads [start, start+len)."""
    total = int(tail_slice.sum())
    reps = tail_slice.astype(np.int64)
    idx1 = start + np.repeat(np.arange(tail_slice.size, dtype=np.int64), reps)
    ends = np.cumsum(reps)
    starts = ends - reps
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, reps)
    idx2 = idx1 + 1 + within
    return idx1, idx2


def count_pass(
    graph: CSRGraph, vertex: np.ndarray, tail: np.ndarray, chunk_pairs: int
) -> np.ndarray:
    """Per-thread successful-lookup counts (CountCliques)."""
    n = tail.size
    counts = np.zeros(n, dtype=np.int64)
    for start, stop in chunk_slices(tail, chunk_pairs):
        idx1, idx2 = expand_pairs(tail[start:stop], start)
        found = graph.batch_has_edge(vertex[idx1], vertex[idx2])
        if found.any():
            counts[start:stop] += np.bincount(
                idx1[found] - start, minlength=stop - start
            )
    return counts


def output_pass(
    graph: CSRGraph,
    vertex: np.ndarray,
    tail: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    new_vertex: np.ndarray,
    new_sublist: np.ndarray,
    chunk_pairs: int,
) -> None:
    """Write surviving candidates into the new node (OutputNewCliques)."""
    live = counts > 0
    for start, stop in chunk_slices(tail, chunk_pairs):
        idx1, idx2 = expand_pairs(tail[start:stop], start)
        # pruned threads (count zeroed) write nothing
        keep = live[idx1]
        idx1, idx2 = idx1[keep], idx2[keep]
        if idx1.size == 0:
            continue
        found = graph.batch_has_edge(vertex[idx1], vertex[idx2])
        f1 = idx1[found]
        f2 = idx2[found]
        # output position: thread offset + rank among the thread's hits
        # (f1 is non-decreasing, so ranks come from run starts)
        if f1.size:
            run_start = np.flatnonzero(
                np.concatenate(([True], f1[1:] != f1[:-1]))
            )
            run_len = np.diff(np.concatenate([run_start, [f1.size]]))
            rank = np.arange(f1.size, dtype=np.int64) - np.repeat(
                run_start, run_len
            )
            pos = offsets[f1] + rank
            new_vertex[pos] = vertex[f2]
            new_sublist[pos] = f1.astype(np.int32)


def run_boundaries_host(values: np.ndarray) -> np.ndarray:
    """Run boundaries without device accounting (charged by the driver)."""
    n = values.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    starts = np.flatnonzero(np.concatenate(([True], values[1:] != values[:-1])))
    return np.concatenate([starts, [n]]).astype(np.int64)
