"""Pluggable batch executors: how a scheduled batch of jobs runs.

The solve service orders a batch of jobs (tickets ``0..n-1``) and
hands the executor a :class:`BatchPlan` -- four hooks covering one
job's lifecycle, split exactly where the serial loop's side effects
live:

* :meth:`BatchPlan.prologue` -- cache probe + admission decision
  (host-side, cheap; may finish the ticket outright);
* :meth:`BatchPlan.place` -- device placement + dispatch accounting;
* :meth:`BatchPlan.run` -- the actual solve (the heavy, device-bound
  part);
* :meth:`BatchPlan.commit` -- result bookkeeping (record list, result
  cache, outcome counters).

:class:`SerialExecutor` runs the four hooks back-to-back per ticket --
the reference order every other executor must be indistinguishable
from. :class:`ThreadedExecutor` overlaps :meth:`~BatchPlan.run` calls
across host threads (one in-flight job per pooled device) while
keeping every other hook in strict ticket order, and only places a
ticket on a device when no still-running job could change what the
serial placement would have chosen. Records, cache contents, and
counters are therefore byte-identical to serial -- only host wall
clock differs. When the plan reports that overlap could be observable
(``sequential_required``: fault injection, a recording tracer, or
possible cache eviction), the threaded executor degrades to the
serial order while still routing work through its worker thread.

The determinism argument, hook by hook:

* placement -- a device's model clock only grows while it runs a job.
  An idle device ``d`` (settled clock ``s``) is the serial choice for
  the next ticket iff every busy device ``e`` already shows a clock
  beyond ``s`` (or ties with ``d`` losing the index tie-break):
  whatever ``e``'s final clock turns out to be, it cannot undercut
  ``d``. The coordinator waits otherwise, so the device sequence --
  and with it each device's job subsequence and every per-job model
  time -- matches serial exactly.
* cache -- ``prologue``/``commit`` run in ticket order on the
  coordinator thread. A ticket whose request key matches an earlier,
  not-yet-committed ticket waits for that commit (serially it would
  have seen the earlier result in the cache). Probes of *distinct*
  keys commute with other tickets' inserts as long as nothing is
  evicted; when eviction is possible the plan requests the serial
  order instead.
* health -- fault paths mutate pool health with dispatch-clock
  ordinals that cannot be replayed concurrently, so any fault source
  (plan or hook) also forces the serial order.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from typing import Any, List, Optional, Protocol, Union, runtime_checkable

__all__ = [
    "BatchPlan",
    "Executor",
    "SerialExecutor",
    "ThreadedExecutor",
    "resolve_executor",
]

#: how long the coordinator naps when no ticket can advance (seconds);
#: wake-ups also arrive eagerly whenever a worker finishes
_POLL_S = 0.002


@runtime_checkable
class BatchPlan(Protocol):
    """One scheduled batch, presented to an executor as hooks.

    ``n`` tickets are processed in ascending order; the executor calls
    ``prologue``/``place``/``commit`` from a single thread in strict
    ticket order and may call ``run`` from worker threads (at most one
    in-flight ticket per device).
    """

    #: number of tickets in the batch
    n: int
    #: size of the device pool (max concurrent ``run`` calls)
    num_devices: int
    #: True when overlapping execution could change observable state
    sequential_required: bool

    def key(self, ticket: int) -> Any:
        """Dependency key: tickets with equal keys must not overlap."""
        ...

    def prologue(self, ticket: int) -> Optional[Any]:
        """Probe cache/admission; a non-None record finishes the ticket."""
        ...

    def place(self, ticket: int, device_index: Optional[int]) -> Any:
        """Dispatch the ticket onto a device; returns the launch state.

        ``device_index`` is the executor's (safety-checked) choice;
        ``None`` asks the plan to place serially itself.
        """
        ...

    def device_clock(self, device_index: int) -> float:
        """Current model clock of one device (monotonic during a job)."""
        ...

    def run(self, ticket: int, state: Any) -> Any:
        """Execute the placed ticket; returns its finished record."""
        ...

    def commit(self, ticket: int, record: Any) -> None:
        """Publish a finished ticket's record (ticket order)."""
        ...


class Executor(Protocol):
    """Drains one scheduled batch; returns records in ticket order."""

    name: str

    def run_batch(self, plan: BatchPlan) -> List[Any]: ...


class SerialExecutor:
    """The reference executor: one ticket at a time, in order.

    Byte-for-byte the historical ``SolveService.run`` loop -- every
    side effect happens at the same point in the same order.
    """

    name = "serial"

    def run_batch(self, plan: BatchPlan) -> List[Any]:
        records: List[Any] = []
        for ticket in range(plan.n):
            record = plan.prologue(ticket)
            if record is None:
                state = plan.place(ticket, None)
                record = plan.run(ticket, state)
            plan.commit(ticket, record)
            records.append(record)
        return records


class ThreadedExecutor:
    """One worker per pooled device; deterministic ticket-order commits.

    Parameters
    ----------
    workers:
        Host threads executing jobs; clamped to the pool size (a
        device runs one job at a time, so extra workers cannot help).
        ``None`` means one per device.
    """

    name = "threaded"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers

    def run_batch(self, plan: BatchPlan) -> List[Any]:
        if plan.n == 0:
            return []
        workers = self.workers if self.workers is not None else plan.num_devices
        workers = max(1, min(workers, plan.num_devices))
        if plan.sequential_required or workers == 1 or plan.n == 1:
            return self._run_handoff(plan)
        return self._run_parallel(plan, workers)

    # ------------------------------------------------------------------
    def _run_handoff(self, plan: BatchPlan) -> List[Any]:
        """Serial order with execution handed to one worker thread.

        Used whenever overlap could be observed (faults, tracing,
        cache eviction) so results stay byte-identical to
        :class:`SerialExecutor` while the batch still flows through
        the threaded machinery.
        """
        records: List[Any] = []
        with _ThreadPool(max_workers=1) as tp:
            for ticket in range(plan.n):
                record = plan.prologue(ticket)
                if record is None:
                    state = plan.place(ticket, None)
                    record = tp.submit(plan.run, ticket, state).result()
                plan.commit(ticket, record)
                records.append(record)
        return records

    def _run_parallel(self, plan: BatchPlan, workers: int) -> List[Any]:
        n = plan.n
        keys = [plan.key(i) for i in range(n)]
        results: List[Any] = [None] * n
        failure: List[Optional[BaseException]] = [None] * n
        done = [False] * n
        busy: dict = {}  # device index -> in-flight ticket
        cond = threading.Condition()
        committed = 0
        next_ticket = 0
        probed: Optional[int] = None  # ticket probed but awaiting placement

        def worker(ticket: int, state: Any) -> None:
            try:
                record = plan.run(ticket, state)
            except BaseException as exc:  # surfaced at commit time
                record = None
                err: Optional[BaseException] = exc
            else:
                err = None
            with cond:
                results[ticket] = record
                failure[ticket] = err
                done[ticket] = True
                for d, t in list(busy.items()):
                    if t == ticket:
                        del busy[d]
                cond.notify_all()

        with _ThreadPool(max_workers=workers) as tp:
            with cond:
                while committed < n:
                    progress = False
                    # publish finished tickets, in ticket order only
                    while committed < n and done[committed]:
                        if failure[committed] is not None:
                            raise failure[committed]
                        plan.commit(committed, results[committed])
                        committed += 1
                        progress = True
                    # advance the probe/placement frontier
                    while next_ticket < n and len(busy) < workers:
                        i = next_ticket
                        if probed is None:
                            if any(
                                keys[j] == keys[i]
                                for j in range(committed, i)
                            ):
                                # an uncommitted same-key ticket exists:
                                # serially this probe would see its result
                                break
                            record = plan.prologue(i)
                            if record is not None:
                                results[i] = record
                                done[i] = True
                                next_ticket += 1
                                progress = True
                                continue
                            probed = i
                        d = self._safe_device(plan, busy)
                        if d is None:
                            break  # placement not yet provably serial
                        state = plan.place(i, d)
                        busy[d] = i
                        tp.submit(worker, i, state)
                        probed = None
                        next_ticket += 1
                        progress = True
                    if not progress and committed < n:
                        cond.wait(_POLL_S)
        return list(results)

    @staticmethod
    def _safe_device(plan: BatchPlan, busy: dict) -> Optional[int]:
        """The device serial placement would pick, or None to wait.

        Idle devices have settled clocks; the argmin idle device ``d``
        is safe once every busy device's *current* clock already rules
        it out of the serial argmin (clocks only grow, and a stale
        cross-thread read is only ever too small -- never unsafe).
        """
        idle = [
            (plan.device_clock(d), d)
            for d in range(plan.num_devices)
            if d not in busy
        ]
        if not idle:
            return None
        settled, d = min(idle)
        for e in busy:
            clock_e = plan.device_clock(e)
            if clock_e > settled or (clock_e == settled and d < e):
                continue
            return None
        return d


def resolve_executor(
    executor: Union[str, Executor, None], workers: Optional[int] = None
) -> Executor:
    """Build an executor from a name, pass one through, or default.

    ``None`` and ``"serial"`` yield :class:`SerialExecutor`;
    ``"threaded"`` yields :class:`ThreadedExecutor` with ``workers``.
    """
    if executor is None or executor == "serial":
        return SerialExecutor()
    if executor == "threaded":
        return ThreadedExecutor(workers=workers)
    if isinstance(executor, str):
        raise ValueError(
            f"unknown executor {executor!r}; expected 'serial' or 'threaded'"
        )
    return executor
