"""The window sweep shared by the sequential and concurrent searches.

When the full breadth-first candidate set cannot fit in device memory,
the 2-clique list is split into *windows* and the level loop runs on
one window (or one ``fanout``-sized group of windows) at a time,
solving for a single maximum clique rather than enumerating all of
them (paper Section IV-E). Window boundaries are snapped to sublist
ends (a candidate needs every vertex after it in its sublist), the
best clique found so far raises ω̄ for later windows, and each
window's clique list is freed before the next begins -- peak memory is
set by the largest single-window (or single-group) subtree instead of
the whole search.

:func:`window_sweep` owns everything the two historical copies in
``core/windowed.py`` and ``core/concurrent.py`` used to duplicate:
window splitting and ordering, the ω̄ carry, per-window deadline
checks, peak accounting, adaptive splitting, and checkpoint capture.
The per-level work is delegated to
:class:`~repro.engine.driver.LevelDriver` -- isolated launches for
``fanout=1``, merged (fused) launches for ``fanout>1`` -- so
``fanout=1`` follows the exact sequential schedule and the
concurrent path is the same sweep under a different launch schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple, Union

import numpy as np

from ..errors import DeviceLostError, DeviceOOMError
from ..gpusim.device import Device
from ..graph.csr import CSRGraph
from ..core.checkpoint import SearchCheckpoint
from ..core.config import WindowOrder
from ..core.deadline import Deadline, as_deadline
from ..core.result import LevelStats, WindowStats
from .driver import BFSOutcome, LevelDriver
from .problems import MAX_CLIQUE, ProblemKind, merge_state

__all__ = [
    "WindowedOutcome",
    "window_sweep",
    "auto_window_size",
    "split_windows",
    "order_groups",
    "split_range",
]


@dataclass
class WindowedOutcome:
    """Result of a windowed search (one maximum clique).

    For non-default problem kinds ``state`` carries the kind's merged
    accumulator (every window's counts/cliques folded together); the
    clique fields then describe only the heuristic floor.
    """

    best_clique: np.ndarray
    omega: int
    windows: List[WindowStats] = field(default_factory=list)
    levels: List[LevelStats] = field(default_factory=list)
    candidates_stored: int = 0
    candidates_pruned: int = 0
    peak_window_bytes: int = 0
    stopped_by_heuristic: bool = False
    adaptive_splits: int = 0
    state: Any = None


def auto_window_size(
    graph: CSRGraph, device: Device, num_two_cliques: int
) -> int:
    """Moon-Moser-guided window size (extension).

    Bounds the candidates a window can generate by ``W * 3^(t/3)``
    (Moon & Moser's maximal-clique bound applied to the average
    sublist tail ``t``) and sizes ``W`` so that estimate fits in a
    quarter of the free device budget.
    """
    budget = device.pool.budget_bytes
    if budget is None:
        return max(num_two_cliques, 1)
    free = max(budget - device.pool.in_use_bytes, 1)
    n = max(graph.num_vertices, 1)
    avg_tail = max(num_two_cliques / n - 1.0, 0.0)
    expansion = 3.0 ** (min(avg_tail, 48.0) / 3.0)
    bytes_per_candidate = 8.0  # int32 vertexID + int32 sublistID
    w = int(free / 4.0 / (bytes_per_candidate * expansion))
    return int(np.clip(w, 256, 1 << 20))


def split_windows(
    sublist: np.ndarray, window_size: int
) -> List[Tuple[int, int]]:
    """Split a 2-clique list into windows snapped to sublist boundaries.

    ``sublist`` is the root node's ``sublistID`` array (source
    vertices); a boundary is any index where the value changes. Each
    window ends at the boundary nearest its nominal end, always making
    progress (at least one sublist per window).
    """
    n = sublist.size
    if n == 0:
        return []
    change = np.flatnonzero(sublist[1:] != sublist[:-1]) + 1
    boundaries = np.concatenate([change, [n]])
    windows: List[Tuple[int, int]] = []
    start = 0
    while start < n:
        nominal = start + window_size
        if nominal >= n:
            windows.append((start, n))
            break
        # the boundary closest to the nominal end, but beyond the start
        i = int(np.searchsorted(boundaries, nominal))
        if i == boundaries.size:
            end = n
        elif i > 0 and boundaries[i - 1] > start and (
            nominal - boundaries[i - 1] <= boundaries[i] - nominal
        ):
            end = int(boundaries[i - 1])
        else:
            end = int(boundaries[i])
        windows.append((start, end))
        start = end
    return windows


def order_groups(
    src: np.ndarray,
    dst: np.ndarray,
    degrees: np.ndarray,
    order: WindowOrder,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reorder whole sublists (source groups) for the window sweep."""
    if order is WindowOrder.NATURAL or src.size == 0:
        return src, dst
    counts = np.bincount(src, minlength=degrees.size)
    sources = np.flatnonzero(counts)
    key = degrees[sources]
    perm = np.argsort(key if order is WindowOrder.ASC_DEGREE else -key, kind="stable")
    sources = sources[perm]
    # gather each group's slice in the new source order
    starts = np.zeros(degrees.size + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    reps = counts[sources]
    idx = np.repeat(starts[sources], reps) + _segment_arange(reps)
    return src[idx], dst[idx]


def _segment_arange(counts: np.ndarray) -> np.ndarray:
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def split_range(src: np.ndarray, a: int, b: int):
    """Split [a, b) at the sublist boundary nearest its midpoint.

    Returns ``None`` when the range is a single sublist (cannot be
    split without breaking a candidate's suffix).
    """
    seg = src[a:b]
    change = np.flatnonzero(seg[1:] != seg[:-1]) + 1
    if change.size == 0:
        return None
    mid = seg.size // 2
    cut = int(change[np.argmin(np.abs(change - mid))])
    return [(a, a + cut), (a + cut, b)]


def window_sweep(
    graph: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    omega_bar: int,
    heuristic_clique: np.ndarray,
    device: Device,
    window_size: Union[int, str],
    fanout: int = 1,
    window_order: WindowOrder = WindowOrder.NATURAL,
    chunk_pairs: int = 1 << 22,
    early_exit_heuristic: bool = False,
    deadline: Union[None, float, Deadline] = None,
    adaptive: bool = False,
    checkpoint: Optional[SearchCheckpoint] = None,
    checkpoint_sink: Optional[Callable[[SearchCheckpoint], None]] = None,
    label: str = "windowed search",
    kind: Optional[ProblemKind] = None,
) -> WindowedOutcome:
    """Run the windowed search over a prepared 2-clique list.

    Returns the single best clique found across all windows (at least
    the heuristic clique). ``fanout=1`` sweeps windows one at a time
    on the isolated launch schedule and supports adaptive splitting
    and checkpoint/resume; ``fanout>1`` advances that many windows
    together on the fused schedule (merged kernel launches, shared
    group-start ω̄ bound -- paper Section V-C3), which supports
    neither.

    With ``adaptive=True`` (the recursive-windowing extension), a
    window whose subtree exceeds device memory is split in half at a
    sublist boundary and each half is retried, recursively, down to
    single sublists. Only a single sublist whose own subtree exceeds
    the budget still raises :class:`~repro.errors.DeviceOOMError`.

    Checkpoint/resume: with a ``checkpoint`` the sweep skips its
    completed windows and resumes from the checkpoint's pending ranges
    with its best clique as the ω̄ floor (the caller must have
    verified graph/config identity -- ranges index the *ordered*
    2-clique list). ``checkpoint_sink`` is called with a fresh
    :class:`~repro.core.checkpoint.SearchCheckpoint` after every
    completed window (fingerprints left empty at this layer); a
    :class:`~repro.errors.DeviceLostError` escaping a window carries
    the latest state in its ``checkpoint`` attribute, with the
    interrupted window first in ``pending``.
    """
    if kind is None:
        kind = MAX_CLIQUE
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    if fanout > 1 and (adaptive or checkpoint is not None or checkpoint_sink is not None):
        raise ValueError(
            "adaptive splitting and checkpoint/resume require fanout == 1"
        )
    if not kind.supports_checkpoint and (
        checkpoint is not None or checkpoint_sink is not None
    ):
        # a windows-done checkpoint does not describe the kind's
        # accumulated state; resuming from one would silently drop
        # every count/clique harvested before the interruption
        raise ValueError(
            f"checkpoint/resume is not defined for problem kind {kind.name!r}"
        )
    if isinstance(window_size, str):
        window_size = auto_window_size(graph, device, src.size)
    ddl = as_deadline(deadline, label)

    src, dst = order_groups(src, dst, graph.degrees, window_order)
    driver = LevelDriver(graph, device, chunk_pairs=chunk_pairs, deadline=ddl)

    best_clique = np.asarray(heuristic_clique, dtype=np.int32)
    best = int(best_clique.size) if best_clique.size else max(omega_bar, 0)
    outcome = WindowedOutcome(
        best_clique=best_clique, omega=best, state=kind.new_state()
    )

    if fanout == 1:
        _sequential_sweep(
            driver, src, dst, omega_bar, window_size, best, best_clique,
            outcome, ddl, early_exit_heuristic, adaptive,
            checkpoint, checkpoint_sink, kind,
        )
    else:
        _fused_sweep(
            driver, src, dst, omega_bar, window_size, fanout, best,
            best_clique, outcome, ddl, kind,
        )
    return outcome


def _sequential_sweep(
    driver: LevelDriver,
    src: np.ndarray,
    dst: np.ndarray,
    omega_bar: int,
    window_size: int,
    best: int,
    best_clique: np.ndarray,
    outcome: WindowedOutcome,
    ddl: Deadline,
    early_exit_heuristic: bool,
    adaptive: bool,
    checkpoint: Optional[SearchCheckpoint],
    checkpoint_sink: Optional[Callable[[SearchCheckpoint], None]],
    kind: ProblemKind,
) -> None:
    device = driver.device

    # LIFO work list so adaptive splits are processed depth-first
    if checkpoint is not None:
        pending = list(reversed(checkpoint.pending))
        w_index = checkpoint.windows_done - 1
        total_windows = checkpoint.total_windows
        if checkpoint.omega > best:
            best = checkpoint.omega
            best_clique = np.asarray(checkpoint.best_clique, dtype=np.int32)
    else:
        pending = list(reversed(split_windows(src, window_size)))
        w_index = -1
        total_windows = len(pending)

    def snapshot(interrupted: Optional[Tuple[int, int]] = None) -> SearchCheckpoint:
        remaining = list(reversed(pending))
        if interrupted is not None:
            remaining.insert(0, interrupted)
        return SearchCheckpoint(
            omega=best,
            best_clique=[int(v) for v in np.asarray(best_clique).tolist()],
            pending=remaining,
            windows_done=w_index + 1,
            total_windows=total_windows,
        )

    while pending:
        a, b = pending.pop()
        w_index += 1
        ddl.check(f"window {w_index}")
        device.pool.reset_peak()
        base = device.pool.in_use_bytes
        bar = max(omega_bar, best)
        try:
            result: BFSOutcome = driver.run(
                src[a:b], dst[a:b], bar,
                early_exit_heuristic=early_exit_heuristic,
                kind=kind,
            )
        except DeviceOOMError:
            if not adaptive:
                raise
            halves = split_range(src, a, b)
            if halves is None:
                raise  # a single sublist's subtree exceeds the budget
            outcome.adaptive_splits += 1
            w_index -= 1  # the split window was not completed
            total_windows += 1  # one window became two
            pending.extend(reversed(halves))
            continue
        except DeviceLostError as exc:
            w_index -= 1  # the interrupted window was not completed
            if kind.supports_checkpoint:
                exc.checkpoint = snapshot(interrupted=(a, b))
            raise
        try:
            if result.omega > best and result.clique_list.nodes:
                best = result.omega
                best_clique = result.clique_list.read_cliques(limit=1)[0]
            merge_state(outcome.state, result.state)
            outcome.levels.extend(result.levels)
            outcome.candidates_stored += result.candidates_stored
            outcome.candidates_pruned += result.candidates_pruned
            peak = device.pool.peak_bytes - base
            outcome.peak_window_bytes = max(outcome.peak_window_bytes, peak)
            outcome.windows.append(
                WindowStats(
                    index=w_index,
                    start=a,
                    end=b,
                    peak_bytes=peak,
                    best_clique_size=best,
                    levels=len(result.levels),
                )
            )
            outcome.stopped_by_heuristic |= result.stopped_by_heuristic
        finally:
            result.clique_list.free_all()
        if checkpoint_sink is not None:
            checkpoint_sink(snapshot())

    outcome.best_clique = np.asarray(best_clique, dtype=np.int32)
    outcome.omega = best


def _fused_sweep(
    driver: LevelDriver,
    src: np.ndarray,
    dst: np.ndarray,
    omega_bar: int,
    window_size: int,
    fanout: int,
    best: int,
    best_clique: np.ndarray,
    outcome: WindowedOutcome,
    ddl: Deadline,
    kind: ProblemKind,
) -> None:
    device = driver.device

    def level_sink(stats: LevelStats) -> None:
        outcome.levels.append(stats)
        outcome.candidates_pruned += stats.pruned

    windows = split_windows(src, window_size)
    for g_start in range(0, len(windows), fanout):
        ddl.check(f"window group {g_start // fanout}")
        group = windows[g_start : g_start + fanout]
        device.pool.reset_peak()
        base = device.pool.in_use_bytes
        bar = max(omega_bar, best)  # shared bound, fixed for the group
        lanes = []
        try:
            for i, (a, b) in enumerate(group):
                lanes.append(
                    driver.open_lane(
                        g_start + i, a, b, src[a:b], dst[a:b], kind=kind
                    )
                )
            driver.run_fused(lanes, bar, level_sink=level_sink, kind=kind)
            for la in lanes:
                if la.omega > best and la.clique_list.nodes:
                    best = la.omega
                    best_clique = la.clique_list.read_cliques(limit=1)[0]
                merge_state(outcome.state, la.state)
                outcome.candidates_stored += la.clique_list.total_candidates
            peak = device.pool.peak_bytes - base
            outcome.peak_window_bytes = max(outcome.peak_window_bytes, peak)
            for la in lanes:
                outcome.windows.append(
                    WindowStats(
                        index=la.index,
                        start=la.start,
                        end=la.end,
                        peak_bytes=peak,  # group-level peak (shared)
                        best_clique_size=max(best, bar),
                        levels=len(la.levels),
                    )
                )
        finally:
            for la in lanes:
                la.clique_list.free_all()

    outcome.best_clique = np.asarray(best_clique, dtype=np.int32)
    outcome.omega = best
