"""The breadth-first level driver (paper Algorithm 2, once).

:class:`LevelDriver` is the single implementation of the paper's
count / scan / output level loop. Each iteration expands *every*
candidate of the current level at once:

1. **CountCliques** -- one thread per candidate vertex checks the
   connectivity of each vertex after it in its sublist (a binary
   search per check) and tallies successful lookups; a new sublist
   whose count cannot reach ω̄ (``count + k < ω̄``) is zeroed.
2. **Scan** -- an exclusive scan over counts yields output offsets and
   the size of the next clique-list node.
3. **OutputNewCliques** -- one thread per candidate re-walks its
   sublist tail and writes the surviving vertices, with ``sublistID``
   pointing at the thread's own entry (the shared parent).

The loop ends when no new cliques are generated; every entry of the
deepest node is then a maximum clique of its root (pruning only ever
removes branches that cannot reach ω̄ <= ω, and sublist-order
expansion emits each clique exactly once).

Two launch schedules share this loop:

* **isolated** (:meth:`LevelDriver.run`) -- one search, one lane;
  every kernel is charged for that lane alone. This is the schedule
  of the full enumeration and of each window of the sequential sweep.
* **fused** (:meth:`LevelDriver.run_fused`) -- ``fanout`` windows
  advance their levels together and each level's work across the
  whole group is charged as *one* merged kernel launch (shared launch
  overhead, higher occupancy) -- the concurrent-windows extension of
  paper Section V-C3.

A single-lane fused group charges exactly what the isolated schedule
charges (`run_boundaries` at cost 1/thread, the merged cost array
degenerates to the lane's own, the scan at ``SCAN_OPS``/thread), so
``fanout=1`` degenerates to the sequential sweep by construction.

Host-side vectorisation note: the per-thread inner loops are
materialised as flat pair arrays in chunks of ``chunk_pairs`` to
bound host memory; chunking affects wall time only. Model time
charges each thread ``tail_length * binary_search_cost + 1`` ops for
the count pass and the same again for the output pass, exactly the
two passes the kernels make.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from ..gpusim import primitives as P
from ..gpusim.device import Device
from ..graph.csr import CSRGraph
from ..core.clique_list import CliqueList
from ..core.deadline import Deadline
from ..core.result import LevelStats
from .passes import run_boundaries_host
from .problems import MAX_CLIQUE, ProblemKind

__all__ = ["BFSOutcome", "Lane", "LevelDriver"]


@dataclass
class BFSOutcome:
    """Result of one breadth-first search over a (windowed) root.

    Attributes
    ----------
    clique_list:
        The populated clique list; the head node's entries are the
        deepest cliques found.
    omega:
        Size of the largest clique discovered by this search (the head
        node's level), or 0 when the root was empty.
    levels:
        Per-level candidate statistics.
    stopped_by_heuristic:
        True when the early exit fired: every surviving branch was
        capped at exactly ω̄, so the heuristic clique is a maximum
        clique and ω = ω̄ (the sound form of Algorithm 2 line 36).
    state:
        The :class:`~repro.engine.problems.ProblemKind` accumulator
        for this search (None for the default max-clique kind).
    """

    clique_list: CliqueList
    omega: int
    levels: List[LevelStats] = field(default_factory=list)
    stopped_by_heuristic: bool = False
    state: Any = None

    @property
    def candidates_stored(self) -> int:
        return self.clique_list.total_candidates

    @property
    def candidates_pruned(self) -> int:
        return sum(s.pruned for s in self.levels)


@dataclass
class Lane:
    """One in-flight root of a fused group (a window being searched)."""

    index: int
    start: int
    end: int
    clique_list: CliqueList
    levels: List[LevelStats] = field(default_factory=list)
    done: bool = False
    omega: int = 0
    state: Any = None


class LevelDriver:
    """Owns the count/scan/output level loop for every search path.

    Parameters
    ----------
    graph:
        Input graph (CSR with sorted adjacency); its per-vertex binary
        search cost prices the count/output kernels.
    device:
        Device charged for all kernels; clique-list nodes allocate
        from its memory pool (may raise
        :class:`~repro.errors.DeviceOOMError`).
    chunk_pairs:
        Host-side pair-batch size (wall-time knob only).
    deadline:
        Checked once per level; raises
        :class:`~repro.errors.SolveTimeoutError` with the deadline's
        label when exceeded.
    """

    def __init__(
        self,
        graph: CSRGraph,
        device: Device,
        chunk_pairs: int = 1 << 22,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self.graph = graph
        self.device = device
        self.chunk_pairs = chunk_pairs
        self.deadline = deadline if deadline is not None else Deadline(None)

    # ------------------------------------------------------------------
    # isolated schedule: one lane, per-lane launches
    # ------------------------------------------------------------------
    def run(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        omega_bar: int,
        early_exit_heuristic: bool = False,
        kind: Optional[ProblemKind] = None,
    ) -> BFSOutcome:
        """Run the level loop from a prepared 2-clique list.

        ``kind`` selects the problem being solved (default:
        max-clique); it supplies the kernel bodies, the effective
        pruning bound, the termination rule, and the per-level
        harvest. On any exception (OOM, timeout, device loss) the
        partial clique list is freed so retries see the true free
        budget.
        """
        if kind is None:
            kind = MAX_CLIQUE
        clique_list = CliqueList(self.device)
        levels: List[LevelStats] = []
        state = kind.new_state()
        if src.size == 0:
            return BFSOutcome(
                clique_list=clique_list, omega=0, levels=levels, state=state
            )
        try:
            return self._isolated_loop(
                src, dst, omega_bar, clique_list, levels,
                early_exit_heuristic, kind, state,
            )
        except BaseException:
            clique_list.free_all()
            raise

    def _isolated_loop(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        omega_bar: int,
        clique_list: CliqueList,
        levels: List[LevelStats],
        early_exit_heuristic: bool,
        kind: ProblemKind,
        state: Any,
    ) -> BFSOutcome:
        graph, device = self.graph, self.device
        clique_list.append_root(src, dst)
        lookup_cost = graph.lookup_cost
        # the kind's view of the bound: identity for max-clique, 0 for
        # kinds that must visit every clique (0 disables the prune and
        # the early exit below)
        bar = kind.effective_bar(omega_bar)
        early_exit = early_exit_heuristic and kind.allows_early_exit

        while True:
            self.deadline.check(f"level {clique_list.depth}")
            node = clique_list.head
            k = node.level
            if kind.stop_level is not None and k >= kind.stop_level:
                levels.append(
                    LevelStats(level=k, candidates=node.size, generated=0, pruned=0)
                )
                kind.harvest_stop(clique_list, state)
                return BFSOutcome(
                    clique_list=clique_list, omega=k, levels=levels, state=state
                )
            vertex = node.vertex.a
            sublist = node.sublist.a
            n_threads = vertex.size
            levels.append(
                LevelStats(level=k, candidates=n_threads, generated=0, pruned=0)
            )

            # tail length of each thread within its sublist
            bounds = P.run_boundaries(device, sublist)
            ends = np.repeat(bounds[1:], np.diff(bounds))
            tail = ends - np.arange(n_threads, dtype=np.int64) - 1

            # CountCliques: per-thread cost = tail * binary-search + 1
            thread_cost = tail.astype(np.float64) * lookup_cost[vertex] + 1.0
            device.launch(thread_cost, name="count_cliques")
            counts = kind.count(graph, vertex, tail, self.chunk_pairs)

            # prune new sublists that cannot reach the bound
            generated = int(counts.sum())
            if bar > 0:
                prune_mask = (counts + k) < bar
                pruned = int(counts[prune_mask].sum())
                counts[prune_mask] = 0
            else:
                pruned = 0
            levels[-1].generated = generated
            levels[-1].pruned = pruned

            kind.on_level(graph, device, clique_list, counts, state)

            if (
                early_exit
                and bar >= 2
                and counts.size
                and counts.max() + k <= bar
            ):
                # Sound form of Algorithm 2 line 36: every surviving
                # branch has count + k == omega_bar exactly (smaller
                # ones were pruned), so no branch can beat the
                # heuristic clique -- omega equals omega_bar and the
                # heuristic clique is a maximum clique. Stop before
                # allocating the next node.
                return BFSOutcome(
                    clique_list=clique_list,
                    omega=bar,
                    levels=levels,
                    stopped_by_heuristic=True,
                    state=state,
                )

            offsets, total_new = P.exclusive_scan(device, counts)
            if total_new == 0:
                return BFSOutcome(
                    clique_list=clique_list, omega=k, levels=levels, state=state
                )

            # allocate the next node now (the real implementation's
            # cudaMalloc happens here and is where OOM strikes), then
            # run OutputNewCliques into it
            new_node = clique_list.append_level(
                np.empty(total_new, dtype=np.int32),
                np.empty(total_new, dtype=np.int32),
            )
            device.launch(thread_cost + 1.0, name="output_new_cliques")
            kind.output(
                graph, vertex, tail, counts, offsets,
                new_node.vertex.a, new_node.sublist.a, self.chunk_pairs,
            )

    # ------------------------------------------------------------------
    # fused schedule: a group of lanes, merged launches per level
    # ------------------------------------------------------------------
    def open_lane(
        self,
        index: int,
        start: int,
        end: int,
        src: np.ndarray,
        dst: np.ndarray,
        kind: Optional[ProblemKind] = None,
    ) -> Lane:
        """Open one fused-group lane (allocates its root node)."""
        if kind is None:
            kind = MAX_CLIQUE
        lane = Lane(
            index=index, start=start, end=end,
            clique_list=CliqueList(self.device), state=kind.new_state(),
        )
        if src.size == 0:
            lane.done = True
        else:
            lane.clique_list.append_root(src, dst)
        return lane

    def run_fused(
        self,
        lanes: List[Lane],
        bar: int,
        level_sink: Optional[Callable[[LevelStats], None]] = None,
        kind: Optional[ProblemKind] = None,
    ) -> None:
        """Advance all lanes' levels together with merged launches.

        ``bar`` is the group's shared pruning bound, fixed for the
        whole group (windows in flight cannot see each other's
        improvements -- the staleness the paper predicts for
        concurrent windows). ``level_sink`` receives every lane's
        :class:`~repro.core.result.LevelStats` in level-major order,
        preserving the interleaved timeline of the merged schedule.

        The caller owns the lanes' clique lists (frees them after
        harvesting results); this method only fills them.
        """
        if kind is None:
            kind = MAX_CLIQUE
        graph, device = self.graph, self.device
        lookup_cost = graph.lookup_cost
        bar = kind.effective_bar(bar)
        while True:
            if kind.stop_level is not None:
                for la in lanes:
                    if la.done:
                        continue
                    node = la.clique_list.head
                    if node.level >= kind.stop_level:
                        stats = LevelStats(
                            level=node.level, candidates=node.size,
                            generated=0, pruned=0,
                        )
                        la.levels.append(stats)
                        if level_sink is not None:
                            level_sink(stats)
                        kind.harvest_stop(la.clique_list, la.state)
                        la.done = True
                        la.omega = node.level
            active = [la for la in lanes if not la.done]
            if not active:
                return
            self.deadline.check(f"level {active[0].clique_list.depth}")

            # per-lane tails; run-boundary work merged into one launch
            tails = []
            total_threads = 0
            for la in active:
                sub = la.clique_list.head.sublist.a
                bounds = run_boundaries_host(sub)
                ends = np.repeat(bounds[1:], np.diff(bounds))
                tail = ends - np.arange(sub.size, dtype=np.int64) - 1
                tails.append(tail)
                total_threads += sub.size
            device.launch(1.0, n_threads=total_threads, name="run_boundaries")

            # merged CountCliques launch: one cost array for the group
            cost_arrays = [
                tails[i].astype(np.float64)
                * lookup_cost[active[i].clique_list.head.vertex.a]
                + 1.0
                for i in range(len(active))
            ]
            merged = np.concatenate(cost_arrays) if cost_arrays else np.zeros(0)
            device.launch(merged, name="count_cliques")

            # per-lane counts, pruning, merged scan accounting
            all_counts = []
            for la, tail in zip(active, tails):
                node = la.clique_list.head
                k = node.level
                counts = kind.count(graph, node.vertex.a, tail, self.chunk_pairs)
                generated = int(counts.sum())
                prune_mask = (counts + k) < bar
                pruned = int(counts[prune_mask].sum())
                counts[prune_mask] = 0
                stats = LevelStats(
                    level=k, candidates=node.size,
                    generated=generated, pruned=pruned,
                )
                la.levels.append(stats)
                if level_sink is not None:
                    level_sink(stats)
                kind.on_level(graph, device, la.clique_list, counts, la.state)
                all_counts.append(counts)
            device.launch(
                P.SCAN_OPS, n_threads=total_threads, name="exclusive_scan"
            )

            # merged OutputNewCliques launch, then per-lane output passes
            device.launch(merged + 1.0, name="output_new_cliques")
            for la, tail, counts in zip(active, tails, all_counts):
                node = la.clique_list.head
                offsets = np.zeros(counts.size, dtype=np.int64)
                if counts.size:
                    np.cumsum(counts[:-1], out=offsets[1:])
                total_new = int(counts.sum())
                if total_new == 0:
                    la.done = True
                    la.omega = node.level
                    continue
                new_node = la.clique_list.append_level(
                    np.empty(total_new, dtype=np.int32),
                    np.empty(total_new, dtype=np.int32),
                )
                kind.output(
                    graph, node.vertex.a, tail, counts, offsets,
                    new_node.vertex.a, new_node.sublist.a, self.chunk_pairs,
                )
