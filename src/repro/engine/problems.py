"""Pluggable problem kinds for the level engine.

The paper's count / scan / output level loop is the computational
shape shared by three problems: maximum clique enumeration (this
paper), k-clique counting (Almasri et al.), and maximal clique
enumeration (Almasri/Nagi/Chang) -- see PAPERS.md. A
:class:`ProblemKind` encapsulates everything that differs between
them so :class:`~repro.engine.driver.LevelDriver` and
:func:`~repro.engine.sweep.window_sweep` stay single implementations:

* the **count/output kernel bodies** (``count`` / ``output``; all
  kinds currently share the paper's passes, but a kind may override
  them);
* **ω̄-pruning applicability** (``effective_bar``): max-clique prunes
  sublists that cannot reach the bound; the counting and enumeration
  kinds must visit every clique, so their bar is 0 (the driver's
  pruning block is a no-op at bar 0);
* the **level-termination rule**: ``stop_level`` stops k-clique
  counting at level ``k``; the other kinds run until no new cliques
  are generated;
* the **per-level harvest** (``on_level`` / ``harvest_stop``):
  maximal-enum collects zero-extension entries (after a maximality
  check against the full graph), k-clique counting reads the size of
  the stopping level;
* the **result shape**, via the :class:`KindState` accumulator the
  driver threads through the search and the sweep merges across
  windows.

``MAX_CLIQUE`` is the default kind and is behaviour-identical to the
pre-kind driver: identity bar, no stop level, no harvest, the same
kernels -- the max-clique launch sequence, costs, and results are
byte-for-byte unchanged.

Maximal-enum correctness: the oriented expansion emits every clique
of size >= 2 exactly once (as its rank-sorted vertex sequence), and an
entry whose extension count is 0 has no *forward* extension. Such a
clique may still be contained in a larger clique through a
lower-ranked vertex, so each zero-extension entry is verified against
the full adjacency (a clique is maximal iff no vertex is adjacent to
all of its members). Singleton maximal cliques (isolated vertices)
never enter the 2-clique list and are added by the pipeline stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from ..core.config import PROBLEM_KINDS
from .passes import count_pass, output_pass

__all__ = [
    "KindState",
    "ProblemKind",
    "KCliqueCountKind",
    "MaximalEnumKind",
    "MAX_CLIQUE",
    "resolve_kind",
    "merge_state",
    "PROBLEM_KINDS",
]


@dataclass
class KindState:
    """Mutable per-search accumulator a :class:`ProblemKind` fills.

    ``count`` is the kind's scalar figure (k-cliques counted, maximal
    cliques found); ``cliques`` holds harvested cliques as sorted
    vertex tuples (maximal-enum only).
    """

    count: int = 0
    cliques: List[Tuple[int, ...]] = field(default_factory=list)


class ProblemKind:
    """One problem the level loop can solve (default: max-clique).

    Subclasses override the class attributes and hooks; the base class
    *is* the max-clique kind, and every hook defaults to the behaviour
    the paper's Algorithm 2 specifies.
    """

    #: stable identifier; must be a member of ``PROBLEM_KINDS``
    name = "max-clique"
    #: whether the ω̄ bound may zero sub-bound sublists
    prunes = True
    #: whether the sound early-exit (Algorithm 2 line 36) may fire
    allows_early_exit = True
    #: whether windowed checkpoints describe this kind's state
    supports_checkpoint = True
    #: stop expanding once the head node reaches this level
    stop_level: Optional[int] = None

    # ------------------------------------------------------------------
    # kernel bodies (the paper's passes; kinds may substitute their own)
    # ------------------------------------------------------------------
    def count(self, graph, vertex, tail, chunk_pairs) -> np.ndarray:
        """The CountCliques pass body."""
        return count_pass(graph, vertex, tail, chunk_pairs)

    def output(
        self, graph, vertex, tail, counts, offsets, new_vertex, new_sublist,
        chunk_pairs,
    ) -> None:
        """The OutputNewCliques pass body."""
        output_pass(
            graph, vertex, tail, counts, offsets, new_vertex, new_sublist,
            chunk_pairs,
        )

    # ------------------------------------------------------------------
    # per-search hooks
    # ------------------------------------------------------------------
    def new_state(self) -> Optional[KindState]:
        """Fresh accumulator for one search (None: nothing to collect)."""
        return None

    def effective_bar(self, omega_bar: int) -> int:
        """The pruning bound the driver applies (0 disables pruning)."""
        return omega_bar

    def on_level(self, graph, device, clique_list, counts, state) -> None:
        """Harvest hook, called after the count pass of every level.

        ``clique_list.head`` is the level being expanded and ``counts``
        its per-entry extension counts (un-pruned for non-pruning
        kinds).
        """

    def harvest_stop(self, clique_list, state) -> None:
        """Harvest hook, called when ``stop_level`` ends the search."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class KCliqueCountKind(ProblemKind):
    """Count k-cliques: stop at level ``k``, pruning disabled.

    The clique list's node at level ``k`` holds every k-clique exactly
    once (the same fact :func:`repro.core.clique_counts.clique_profile`
    reads level sizes from), so the count is the stopping node's size.
    """

    name = "k-clique-count"
    prunes = False
    allows_early_exit = False
    supports_checkpoint = False

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.stop_level = int(k)

    def new_state(self) -> KindState:
        return KindState()

    def effective_bar(self, omega_bar: int) -> int:
        return 0

    def harvest_stop(self, clique_list, state) -> None:
        state.count += clique_list.head.size


class MaximalEnumKind(ProblemKind):
    """Enumerate maximal cliques: harvest zero-extension entries.

    Every level's entries with extension count 0 are candidate maximal
    cliques; each is materialised (Figure 1 back-pointer walk) and kept
    iff no vertex of the graph is adjacent to all of its members. The
    verification is charged as one ``check_maximal`` launch with a
    thread per candidate (each thread intersects the members'
    adjacency lists, cost ~ level).
    """

    name = "maximal-enum"
    prunes = False
    allows_early_exit = False
    supports_checkpoint = False

    def new_state(self) -> KindState:
        return KindState()

    def effective_bar(self, omega_bar: int) -> int:
        return 0

    def on_level(self, graph, device, clique_list, counts, state) -> None:
        zero = np.flatnonzero(counts == 0)
        if zero.size == 0:
            return
        level = clique_list.head.level
        device.launch(
            float(level), n_threads=int(zero.size), name="check_maximal"
        )
        rows = clique_list.read_cliques(entries=zero)
        for row in rows:
            members = row.astype(np.int64)
            common = graph.neighbors(int(members[0]))
            for v in members[1:]:
                if common.size == 0:
                    break
                common = np.intersect1d(
                    common, graph.neighbors(int(v)), assume_unique=True
                )
            if common.size == 0:
                state.count += 1
                state.cliques.append(tuple(int(v) for v in np.sort(members)))


#: The default kind: the paper's maximum clique enumeration.
MAX_CLIQUE = ProblemKind()


def resolve_kind(config) -> ProblemKind:
    """The :class:`ProblemKind` for a :class:`~repro.core.config.SolverConfig`."""
    if config.problem == "k-clique-count":
        return KCliqueCountKind(config.k)
    if config.problem == "maximal-enum":
        return MaximalEnumKind()
    if config.problem != "max-clique":  # pragma: no cover - config validates
        raise ValueError(f"unknown problem kind {config.problem!r}")
    return MAX_CLIQUE


def merge_state(acc: Optional[KindState], part: Any) -> None:
    """Fold one window's (or lane's) state into the sweep accumulator."""
    if acc is None or part is None:
        return
    acc.count += part.count
    acc.cliques.extend(part.cliques)
