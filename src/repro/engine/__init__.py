"""The search engine: one level loop, pluggable batch executors.

This layer owns the two mechanisms the rest of the repo configures
rather than reimplements (see docs/ARCHITECTURE.md):

* :mod:`~repro.engine.driver` -- :class:`LevelDriver`, the single
  implementation of the paper's count / scan / output breadth-first
  level loop (Algorithm 2). The sequential, windowed, and
  concurrent-fanout searches in :mod:`repro.core` are thin adapters
  over it; :mod:`~repro.engine.sweep` adds the shared window sweep
  (splitting, ordering, adaptive retry, checkpointing).
* :mod:`~repro.engine.executor` -- the :class:`Executor` protocol the
  solve service drains batches through: :class:`SerialExecutor` (the
  reference order) and :class:`ThreadedExecutor` (one worker per
  pooled device, deterministic ticket-ordered commits, byte-identical
  records to serial).

``engine`` sits between :mod:`repro.gpusim` (which it charges) and
:mod:`repro.core` (which configures it); it must never import from
``core.bfs`` / ``core.windowed`` / ``core.concurrent`` or anything
above them.
"""

from .driver import BFSOutcome, LevelDriver
from .executor import (
    BatchPlan,
    Executor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)
from .passes import chunk_slices, count_pass, expand_pairs, output_pass
from .problems import (
    MAX_CLIQUE,
    KCliqueCountKind,
    KindState,
    MaximalEnumKind,
    ProblemKind,
    merge_state,
    resolve_kind,
)
from .sweep import WindowedOutcome, window_sweep

__all__ = [
    "LevelDriver",
    "BFSOutcome",
    "WindowedOutcome",
    "window_sweep",
    "ProblemKind",
    "KindState",
    "KCliqueCountKind",
    "MaximalEnumKind",
    "MAX_CLIQUE",
    "resolve_kind",
    "merge_state",
    "chunk_slices",
    "expand_pairs",
    "count_pass",
    "output_pass",
    "Executor",
    "BatchPlan",
    "SerialExecutor",
    "ThreadedExecutor",
    "resolve_executor",
]
