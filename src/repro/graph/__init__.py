"""Graph substrate: CSR structure, builders, IO, generators, k-core.

Plays the role of the Gunrock graph stack in the paper's pipeline.
"""

from .build import (
    from_adjacency,
    from_edge_array,
    from_edge_list,
    induced_subgraph,
    relabel_random,
)
from .coloring import (
    coloring_upper_bound,
    degeneracy_order,
    greedy_coloring,
)
from .csr import CSRGraph
from .io import (
    load_graph,
    parse_edge_list_text,
    read_dimacs,
    read_edge_list,
    read_mtx,
    write_dimacs,
    write_edge_list,
    write_mtx,
)
from .kcore import core_numbers, degeneracy, kcore_subgraph_vertices
from .orientation import orient_edges, orientation_rank
from .stats import GraphStats, analyze, degree_histogram, triangle_count
from . import generators

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "from_edge_array",
    "from_adjacency",
    "relabel_random",
    "induced_subgraph",
    "load_graph",
    "parse_edge_list_text",
    "read_edge_list",
    "write_edge_list",
    "read_mtx",
    "write_mtx",
    "read_dimacs",
    "write_dimacs",
    "core_numbers",
    "degeneracy",
    "kcore_subgraph_vertices",
    "greedy_coloring",
    "coloring_upper_bound",
    "degeneracy_order",
    "orient_edges",
    "orientation_rank",
    "GraphStats",
    "analyze",
    "triangle_count",
    "degree_histogram",
    "generators",
]
