"""Data-parallel k-core decomposition on the simulated device.

The paper computes core numbers with Gunrock's k-core app and uses
them two ways: as a tighter per-vertex upper bound than degree
(``core(v) + 1`` bounds the largest clique containing ``v``,
Section II-B2) and as the greedy ordering key of the core-number
heuristics. We implement the standard iterative peeling algorithm as
rounds of data-parallel kernels: each round removes every remaining
vertex of degree <= k at once and decrements its neighbours' degrees
with a scatter-add, exactly the shape a GPU implementation takes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpusim.device import Device
from .csr import CSRGraph

__all__ = ["core_numbers", "degeneracy", "kcore_subgraph_vertices"]


def core_numbers(graph: CSRGraph, device: Optional[Device] = None) -> np.ndarray:
    """Core number of every vertex (``int64``).

    Parameters
    ----------
    graph:
        Input graph.
    device:
        Optional device to charge; each peel round is one kernel with
        per-thread cost equal to the peeled vertex's current degree.
    """
    n = graph.num_vertices
    deg = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    remaining = n
    k = 0
    while remaining > 0:
        alive_deg = deg[alive]
        k = max(k, int(alive_deg.min()))
        while True:
            peel = np.flatnonzero(alive & (deg <= k))
            if peel.size == 0:
                break
            core[peel] = k
            alive[peel] = False
            remaining -= peel.size
            # gather the peeled vertices' neighbour lists (vectorised)
            counts = np.diff(graph.row_offsets)[peel]
            if device is not None:
                device.launch(
                    counts.astype(np.float64) + 1.0, name="kcore_peel"
                )
            total = int(counts.sum())
            if total:
                starts = graph.row_offsets[peel]
                idx = np.repeat(starts, counts) + _segment_arange(counts)
                nbrs = graph.col_indices[idx]
                dec = np.bincount(nbrs[alive[nbrs]], minlength=n)
                deg -= dec
    return core


def _segment_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without a loop."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def degeneracy(graph: CSRGraph, device: Optional[Device] = None) -> int:
    """Graph degeneracy (the maximum core number).

    ``degeneracy + 1`` upper-bounds the clique number.
    """
    if graph.num_vertices == 0:
        return 0
    return int(core_numbers(graph, device).max())


def kcore_subgraph_vertices(
    graph: CSRGraph, k: int, device: Optional[Device] = None
) -> np.ndarray:
    """Vertices of the k-core (may be empty)."""
    core = core_numbers(graph, device)
    return np.flatnonzero(core >= k)
