"""Graph file readers and writers.

Supports the three formats the Network Repository distributes its
datasets in: whitespace edge lists (``.edges``/``.txt``), Matrix Market
coordinate files (``.mtx``), and DIMACS clique-benchmark files
(``.clq``/``.col``). The loader plays the role of Gunrock's graph
loader in the paper's pipeline: parse, normalise to undirected simple
form, and hand back a CSR.

Every reader and writer transparently handles gzip compression when
the path carries a ``.gz`` double extension (``graph.edges.gz``,
``graph.mtx.gz``, ...): the inner extension picks the format, the
outer one the compression. Remote clients of the solve server ship
graphs this way (see docs/SERVER.md), so the compressed path is
first-class, not an afterthought.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .build import from_edge_array
from .csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_mtx",
    "write_mtx",
    "read_dimacs",
    "write_dimacs",
    "load_graph",
    "parse_edge_list_text",
]

PathLike = Union[str, Path]


def _is_gz(path: PathLike) -> bool:
    return Path(path).suffix.lower() == ".gz"


def _read_lines(path: PathLike):
    opener = gzip.open if _is_gz(path) else open
    try:
        with opener(path, "rt", encoding="utf-8") as fh:
            for line in fh:
                yield line
    except (gzip.BadGzipFile, EOFError) as exc:
        raise GraphFormatError(f"{path}: corrupt gzip stream: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise GraphFormatError(f"{path}: not a text graph file: {exc}") from exc


def _open_write(path: PathLike):
    opener = gzip.open if _is_gz(path) else open
    return opener(path, "wt", encoding="utf-8")


def _int(token: str, path: PathLike, lineno: int, what: str) -> int:
    try:
        return int(token)
    except ValueError as exc:
        raise GraphFormatError(
            f"{path}:{lineno}: expected an integer {what}, got {token!r}"
        ) from exc


def _parse_edge_lines(lines, source, comment_chars: str = "#%") -> CSRGraph:
    """Shared edge-list parsing core (files and wire payloads)."""
    src = []
    dst = []
    for lineno, line in enumerate(lines, 1):
        s = line.strip()
        if not s or s[0] in comment_chars:
            continue
        parts = s.split()
        if len(parts) < 2:
            raise GraphFormatError(f"{source}:{lineno}: expected 'u v', got {s!r}")
        try:
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
        except ValueError as exc:
            raise GraphFormatError(
                f"{source}:{lineno}: non-integer vertex id"
            ) from exc
    return from_edge_array(np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64))


def read_edge_list(path: PathLike, comment_chars: str = "#%") -> CSRGraph:
    """Read a whitespace-separated edge list (one ``u v`` pair per line)."""
    return _parse_edge_lines(_read_lines(path), path, comment_chars)


def parse_edge_list_text(text: str, source: str = "<edge-list>") -> CSRGraph:
    """Parse edge-list *text* (the solve server's inline graph payload)."""
    return _parse_edge_lines(text.splitlines(), source)


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write one ``u v`` pair per undirected edge."""
    src, dst = graph.to_edge_list()
    with _open_write(path) as fh:
        fh.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"{u} {v}\n")


def read_mtx(path: PathLike) -> CSRGraph:
    """Read a Matrix Market coordinate file as an undirected graph.

    Entry values (weights) are ignored; only the sparsity pattern is
    used, matching the paper's treatment of weighted inputs.
    """
    lines = _read_lines(path)
    try:
        header = next(lines)
    except StopIteration:
        raise GraphFormatError(f"{path}: empty file") from None
    if not header.startswith("%%MatrixMarket"):
        raise GraphFormatError(f"{path}: missing MatrixMarket header")
    tokens = header.lower().split()
    if "coordinate" not in tokens:
        raise GraphFormatError(f"{path}: only coordinate format is supported")
    dims = None
    src = []
    dst = []
    for lineno, line in enumerate(lines, 2):
        s = line.strip()
        if not s or s.startswith("%"):
            continue
        parts = s.split()
        if dims is None:
            if len(parts) != 3:
                raise GraphFormatError(f"{path}:{lineno}: expected 'rows cols nnz'")
            dims = (
                _int(parts[0], path, lineno, "row count"),
                _int(parts[1], path, lineno, "column count"),
            )
            continue
        if len(parts) < 2:
            raise GraphFormatError(f"{path}:{lineno}: expected 'i j [value]'")
        i = _int(parts[0], path, lineno, "row index")
        j = _int(parts[1], path, lineno, "column index")
        if i < 1 or j < 1:
            raise GraphFormatError(f"{path}:{lineno}: MTX indices are 1-based")
        src.append(i - 1)  # MTX is 1-based
        dst.append(j - 1)
    if dims is None:
        raise GraphFormatError(f"{path}: missing size line")
    n = max(dims)
    return from_edge_array(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_vertices=n,
    )


def write_mtx(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph as a symmetric Matrix Market pattern file."""
    src, dst = graph.to_edge_list()
    with _open_write(path) as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write(f"{graph.num_vertices} {graph.num_vertices} {src.size}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"{u + 1} {v + 1}\n")


def read_dimacs(path: PathLike) -> CSRGraph:
    """Read a DIMACS ``p edge`` file (the clique benchmark format)."""
    n = None
    src = []
    dst = []
    for lineno, line in enumerate(_read_lines(path), 1):
        s = line.strip()
        if not s or s.startswith("c"):
            continue
        parts = s.split()
        if parts[0] == "p":
            if len(parts) < 4 or parts[1] not in ("edge", "col"):
                raise GraphFormatError(f"{path}:{lineno}: malformed problem line")
            n = _int(parts[2], path, lineno, "vertex count")
            if n < 0:
                raise GraphFormatError(f"{path}:{lineno}: negative vertex count")
        elif parts[0] == "e":
            if n is None:
                raise GraphFormatError(f"{path}:{lineno}: edge before problem line")
            if len(parts) < 3:
                raise GraphFormatError(f"{path}:{lineno}: expected 'e u v'")
            u = _int(parts[1], path, lineno, "endpoint")
            v = _int(parts[2], path, lineno, "endpoint")
            if u < 1 or v < 1:
                raise GraphFormatError(f"{path}:{lineno}: DIMACS ids are 1-based")
            src.append(u - 1)  # DIMACS is 1-based
            dst.append(v - 1)
        else:
            raise GraphFormatError(f"{path}:{lineno}: unknown record {parts[0]!r}")
    if n is None:
        raise GraphFormatError(f"{path}: missing problem line")
    return from_edge_array(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_vertices=n,
    )


def write_dimacs(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph in DIMACS ``p edge`` format."""
    src, dst = graph.to_edge_list()
    with _open_write(path) as fh:
        fh.write(f"p edge {graph.num_vertices} {src.size}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"e {u + 1} {v + 1}\n")


def load_graph(path: PathLike) -> CSRGraph:
    """Load a graph, dispatching on file extension.

    A ``.gz`` outer extension selects gzip decompression and the inner
    extension the format: ``graph.edges.gz`` is a compressed edge list.
    """
    p = Path(path)
    suffix = p.suffix.lower()
    if suffix == ".gz":
        inner = Path(p.stem).suffix.lower()
        if not inner:
            raise GraphFormatError(
                f"{p}: compressed graphs need a double extension "
                f"(e.g. .edges.gz, .mtx.gz) to pick the format"
            )
        suffix = inner
    if suffix == ".mtx":
        return read_mtx(p)
    if suffix in (".clq", ".col", ".dimacs"):
        return read_dimacs(p)
    if suffix in (".edges", ".txt", ".el", ".tsv", ".csv"):
        return read_edge_list(p)
    raise GraphFormatError(f"unrecognised graph file extension {suffix!r} for {p}")
