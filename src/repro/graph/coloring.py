"""Greedy graph colouring.

Colouring appears in the paper twice: as the tighter set upper bound
alternative to ``|C| + |P|`` (Section II-B3) and inside the PMC
baseline's branch-and-bound (Rossi et al. use a greedy colouring of
the candidate set to bound the best completion of a branch). The
number of colours used on a vertex set upper-bounds the largest clique
inside it, since a clique needs pairwise-distinct colours.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .csr import CSRGraph
from .kcore import core_numbers

__all__ = ["greedy_coloring", "coloring_upper_bound", "degeneracy_order"]


def degeneracy_order(graph: CSRGraph) -> np.ndarray:
    """Vertices in degeneracy (smallest-last) order.

    Greedy colouring in this order uses at most ``degeneracy + 1``
    colours, matching the k-core clique bound.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    deg = graph.degrees.astype(np.int64).copy()
    # Matula-Beck bucket queue: vertices sorted by degree with O(1)
    # decrease-key via position swaps -- O(V + E) total.
    vert = np.argsort(deg, kind="stable").astype(np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[vert] = np.arange(n)
    md = int(deg.max())
    bin_start = np.zeros(md + 2, dtype=np.int64)
    np.cumsum(np.bincount(deg, minlength=md + 1), out=bin_start[1:])
    cur_bin = bin_start[:-1].copy()
    col = graph.col_indices
    ro = graph.row_offsets
    for i in range(n):
        v = int(vert[i])
        dv = int(deg[v])
        for u in col[ro[v] : ro[v + 1]].tolist():
            du = int(deg[u])
            if du <= dv:  # removed, or already at the peel level
                continue
            pu = int(pos[u])
            pw = int(cur_bin[du])
            w = int(vert[pw])
            if u != w:
                vert[pu], vert[pw] = w, u
                pos[u], pos[w] = pw, pu
            cur_bin[du] = pw + 1
            deg[u] = du - 1
    return vert[::-1].copy()  # highest-core vertices first


def greedy_coloring(
    graph: CSRGraph, order: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, int]:
    """Greedy colouring along ``order`` (default: descending degree).

    Returns ``(colors, num_colors)`` with colours in ``[0,
    num_colors)`` and no two adjacent vertices sharing a colour.
    """
    n = graph.num_vertices
    if order is None:
        order = np.argsort(-graph.degrees, kind="stable")
    colors = np.full(n, -1, dtype=np.int64)
    num_colors = 0
    for v in order.tolist():
        used = colors[graph.neighbors(v)]
        used = used[used >= 0]
        if used.size == 0:
            c = 0
        else:
            seen = np.zeros(num_colors + 1, dtype=bool)
            seen[used] = True
            free = np.flatnonzero(~seen)
            c = int(free[0])
        colors[v] = c
        if c >= num_colors:
            num_colors = c + 1
    return colors, num_colors


def coloring_upper_bound(graph: CSRGraph, use_degeneracy_order: bool = True) -> int:
    """Upper bound on the clique number via greedy colouring."""
    if graph.num_vertices == 0:
        return 0
    order = degeneracy_order(graph) if use_degeneracy_order else None
    _, k = greedy_coloring(graph, order)
    return k


def core_upper_bound(graph: CSRGraph) -> int:
    """Upper bound on the clique number via degeneracy (``max core + 1``)."""
    if graph.num_vertices == 0:
        return 0
    return int(core_numbers(graph).max()) + 1
