"""Structural graph statistics.

The paper's analysis pivots on a handful of structural quantities:
average degree (Figures 2/4), edge count (Figure 3), degeneracy (the
k-core clique bound), and how the heuristic bound compares to the
average degree ("graphs where the average degree is close to or larger
than the maximum clique size are difficult to prune", Section V-B2).
This module computes those diagnostics -- plus triangle counts and
clustering, which predict candidate-set expansion -- in one
vectorised pass, for use by the harness, the auto window sizer, and
anyone triaging a new dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .csr import CSRGraph
from .kcore import core_numbers
from .orientation import orient_edges

__all__ = ["GraphStats", "analyze", "triangle_count", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """One-pass structural summary of a graph.

    Attributes
    ----------
    num_vertices / num_edges / average_degree / max_degree:
        Basic size figures.
    degeneracy:
        Maximum core number; ``degeneracy + 1`` upper-bounds ω.
    triangles:
        Total triangle count.
    global_clustering:
        Transitivity: ``3 * triangles / number of wedges``.
    degree_p90 / degree_p99:
        Degree distribution tail percentiles (hub detection).
    """

    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int
    degeneracy: int
    triangles: int
    global_clustering: float
    degree_p90: float
    degree_p99: float

    @property
    def clique_upper_bound(self) -> int:
        """ω <= degeneracy + 1."""
        return self.degeneracy + 1 if self.num_edges else min(self.num_vertices, 1)

    def hardness_hint(self, omega_estimate: Optional[int] = None) -> str:
        """The paper's prunability triage (Section V-B2).

        A graph is "hard to prune" when the average degree approaches
        or exceeds the (estimated) clique number, because every upper
        bound used in pruning is degree-derived.
        """
        bound = omega_estimate if omega_estimate else self.clique_upper_bound
        if bound <= 0:
            return "trivial"
        ratio = self.average_degree / bound
        if ratio < 0.75:
            return "easy-to-prune"
        if ratio < 2.0:
            return "moderate"
        return "hard-to-prune"


def triangle_count(graph: CSRGraph, chunk_pairs: int = 1 << 22) -> int:
    """Exact triangle count via oriented wedge checks.

    Orients edges by degree and, for every oriented path
    ``u -> v, u -> w`` (v before w in u's list), checks the closing
    edge -- the standard O(E^{3/2})-ish algorithm, vectorised in
    chunks.
    """
    src, dst = orient_edges(graph)
    if src.size == 0:
        return 0
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=graph.num_vertices)
    counts = counts[counts > 0]
    ends = np.cumsum(counts)
    starts = ends - counts
    total = 0
    # pairs within each oriented adjacency group
    tails = np.repeat(ends, counts) - np.arange(src.size) - 1
    csum = np.cumsum(tails)
    pos = 0
    n = src.size
    while pos < n:
        base = int(csum[pos - 1]) if pos else 0
        stop = int(np.searchsorted(csum, base + chunk_pairs, side="right"))
        stop = max(stop, pos + 1)
        t = tails[pos:stop]
        reps = t.astype(np.int64)
        idx1 = pos + np.repeat(np.arange(t.size, dtype=np.int64), reps)
        seg_ends = np.cumsum(reps)
        within = np.arange(int(reps.sum()), dtype=np.int64) - np.repeat(
            seg_ends - reps, reps
        )
        idx2 = idx1 + 1 + within
        found = graph.batch_has_edge(
            dst[idx1].astype(np.int64), dst[idx2].astype(np.int64)
        )
        total += int(found.sum())
        pos = stop
    return total


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    deg = graph.degrees
    if deg.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(deg)


def analyze(graph: CSRGraph, triangles: bool = True) -> GraphStats:
    """Compute the full :class:`GraphStats` summary.

    ``triangles=False`` skips the (comparatively expensive) triangle
    pass, reporting 0 triangles/clustering.
    """
    deg = graph.degrees
    n = graph.num_vertices
    if n == 0:
        return GraphStats(0, 0, 0.0, 0, 0, 0, 0.0, 0.0, 0.0)
    tri = triangle_count(graph) if (triangles and graph.num_edges) else 0
    wedges = float((deg.astype(np.float64) * (deg - 1) / 2).sum())
    clustering = (3.0 * tri / wedges) if wedges > 0 else 0.0
    degen = int(core_numbers(graph).max()) if graph.num_edges else 0
    return GraphStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_degree=graph.max_degree,
        degeneracy=degen,
        triangles=tri,
        global_clustering=clustering,
        degree_p90=float(np.percentile(deg, 90)) if deg.size else 0.0,
        degree_p99=float(np.percentile(deg, 99)) if deg.size else 0.0,
    )
