"""Degree orientation of the edge set.

The 2-clique list keeps exactly one directed edge per undirected edge
(Section IV-C). The paper orients *by degree*: from each reciprocal
pair, keep the direction whose source has lower degree, breaking ties
by index. This makes the initial sublists (one per source vertex)
shorter on average, so more of them fall below the heuristic lower
bound ω̄ and are pruned before the search even starts.

Orientation by a strictly increasing key of ``(rank[v], v)`` is also a
topological order of the resulting DAG, which is what guarantees each
clique is enumerated exactly once (as its sorted vertex sequence).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = ["orient_edges", "orientation_rank"]


def orientation_rank(
    graph: CSRGraph, key: Optional[np.ndarray] = None
) -> np.ndarray:
    """Total-order rank of each vertex used for orientation.

    ``key`` defaults to the degree; ties are broken by vertex index so
    the order is strict. Returns an ``int64`` array where
    ``rank[u] < rank[v]`` means edge (u, v) is kept as u -> v.
    """
    n = graph.num_vertices
    if key is None:
        key = graph.degrees
    key = np.asarray(key)
    if key.shape != (n,):
        raise ValueError(f"key must have shape ({n},)")
    order = np.lexsort((np.arange(n), key))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    return rank


def orient_edges(
    graph: CSRGraph, key: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """One directed edge per undirected edge, low-rank source first.

    Returns ``(src, dst)`` arrays grouped by source vertex (ascending)
    with each group's destinations in ascending vertex id -- the
    natural order in which the 2-clique list is laid out.
    """
    rank = orientation_rank(graph, key)
    n = graph.num_vertices
    rows = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.row_offsets)
    )
    cols = graph.col_indices.astype(np.int64)
    keep = rank[rows] < rank[cols]
    src, dst = rows[keep], cols[keep]
    # group by source (stable: destinations stay ascending per group)
    order = np.argsort(src, kind="stable")
    return src[order].astype(np.int32), dst[order].astype(np.int32)
