"""Build and preprocess CSR graphs from raw edge lists.

Mirrors the paper's preprocessing pipeline (Section V): every input is
made undirected, self loops are removed, duplicate edges are merged,
and vertex indices can be randomised to remove ordering bias before
the index/degree sorting comparisons.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "from_edge_list",
    "from_edge_array",
    "from_adjacency",
    "relabel_random",
    "induced_subgraph",
    "graph_union",
]

EdgePair = Tuple[int, int]


def from_edge_list(
    edges: Sequence[EdgePair],
    num_vertices: Optional[int] = None,
) -> CSRGraph:
    """Build a CSR graph from an iterable of ``(u, v)`` pairs.

    The result is undirected and simple: each pair is mirrored, self
    loops are dropped, duplicates merged.
    """
    arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
    else:
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError("edges must be (u, v) pairs")
        src, dst = arr[:, 0], arr[:, 1]
    return from_edge_array(src, dst, num_vertices)


def from_edge_array(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: Optional[int] = None,
) -> CSRGraph:
    """Build a CSR graph from parallel endpoint arrays (vectorised).

    Parameters
    ----------
    src, dst:
        Equal-length integer arrays; interpreted as undirected edges.
    num_vertices:
        Vertex count; inferred as ``max(id) + 1`` when omitted.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphFormatError("src and dst must have the same length")
    if src.size and (src.min() < 0 or dst.min() < 0):
        raise GraphFormatError("vertex ids must be non-negative")
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    n = int(num_vertices)
    if src.size and max(int(src.max()), int(dst.max())) >= n:
        raise GraphFormatError("vertex id exceeds num_vertices")
    if n > np.iinfo(np.int32).max:
        raise GraphFormatError("graphs beyond int32 vertex ids are unsupported")

    keep = src != dst  # drop self loops
    src, dst = src[keep], dst[keep]
    # mirror, deduplicate via sorted global keys
    a = np.concatenate([src, dst])
    b = np.concatenate([dst, src])
    keys = np.unique(a * n + b)
    rows = (keys // n).astype(np.int64)
    cols = (keys % n).astype(np.int32)
    row_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=row_offsets[1:])
    return CSRGraph(row_offsets, cols, validate=False)


def from_adjacency(adj: Sequence[Sequence[int]]) -> CSRGraph:
    """Build a CSR graph from an adjacency-list-of-lists."""
    src = []
    dst = []
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            src.append(u)
            dst.append(v)
    return from_edge_array(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_vertices=len(adj),
    )


def relabel_random(
    graph: CSRGraph, seed: Union[int, np.random.Generator] = 0
) -> CSRGraph:
    """Randomise vertex indices (paper, Section V).

    Removes any bias from the dataset's original vertex ordering so
    index-vs-degree sorting comparisons are fair.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    perm = rng.permutation(n).astype(np.int64)
    src, dst = graph.to_edge_list()
    return from_edge_array(perm[src], perm[dst], num_vertices=n)


def graph_union(*graphs: CSRGraph) -> CSRGraph:
    """Union of edge sets over a shared vertex id space.

    Used to compose structural regimes -- e.g. an R-MAT hub backbone
    plus embedded team cliques models the clustered link structure of
    real web graphs far better than bare R-MAT (which is almost
    clique-free).
    """
    if not graphs:
        raise ValueError("graph_union needs at least one graph")
    n = max(g.num_vertices for g in graphs)
    srcs = []
    dsts = []
    for g in graphs:
        s, d = g.to_edge_list()
        srcs.append(s.astype(np.int64))
        dsts.append(d.astype(np.int64))
    return from_edge_array(
        np.concatenate(srcs), np.concatenate(dsts), num_vertices=n
    )


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Vertex-induced subgraph with compacted ids.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is
    the input-graph id of subgraph vertex ``i``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    n = graph.num_vertices
    local = np.full(n, -1, dtype=np.int64)
    local[vertices] = np.arange(vertices.size)
    src, dst = graph.to_edge_list()
    mask = (local[src] >= 0) & (local[dst] >= 0)
    sub = from_edge_array(
        local[src[mask]], local[dst[mask]], num_vertices=vertices.size
    )
    return sub, vertices
