"""Compressed sparse row graph with sorted adjacency lists.

The paper stores the input graph in CSR with sorted adjacency lists in
GPU global memory and answers every edge query with a binary search
(Section III-3). We mirror that: :class:`CSRGraph` keeps ``row_offsets``
/ ``col_indices`` with each row sorted, and
:meth:`CSRGraph.batch_has_edge` answers millions of queries per call.

Two lookup strategies are provided:

* ``"keys"`` (default) -- a single vectorised ``searchsorted`` over the
  globally sorted ``row * n + col`` edge-key array. Because rows are
  stored in increasing row order and each row is sorted, the key array
  is globally sorted, so one call resolves an arbitrary batch.
* ``"binary"`` -- an explicit lockstep binary search over per-row
  ranges, iterating ``ceil(log2(max_degree))`` vectorised steps. This
  is the faithful transcription of the device kernel and is used to
  cross-validate the fast path in tests.

Either way, the *cost charged to the device* is the same: one binary
search of the source vertex's adjacency list, i.e.
``ceil(log2(deg(u) + 1)) + 1`` ops per query -- this is the dominant
work term of Algorithm 2 and the reason high-degree graphs run slower
(Section V-A).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from ..gpusim.device import Device

__all__ = ["CSRGraph"]


class CSRGraph:
    """An undirected simple graph in CSR form.

    Both directions of every undirected edge are stored, so
    ``len(col_indices) == 2 * num_edges`` and ``degrees`` are true
    undirected degrees.

    Parameters
    ----------
    row_offsets:
        ``int64`` array of length ``n + 1``.
    col_indices:
        ``int32`` array of neighbor ids, sorted within each row.
    validate:
        When true (default), check structural invariants up front.
    """

    __slots__ = (
        "row_offsets",
        "col_indices",
        "_edge_keys",
        "_lookup_cost",
        "_fingerprint",
    )

    def __init__(
        self,
        row_offsets: np.ndarray,
        col_indices: np.ndarray,
        validate: bool = True,
    ) -> None:
        self.row_offsets = np.ascontiguousarray(row_offsets, dtype=np.int64)
        self.col_indices = np.ascontiguousarray(col_indices, dtype=np.int32)
        self._edge_keys: Optional[np.ndarray] = None
        self._lookup_cost: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.row_offsets.size - 1

    @property
    def num_directed_edges(self) -> int:
        return self.col_indices.size

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.col_indices.size // 2

    @property
    def degrees(self) -> np.ndarray:
        """Undirected vertex degrees (``int64``)."""
        return np.diff(self.row_offsets)

    @property
    def max_degree(self) -> int:
        d = self.degrees
        return int(d.max()) if d.size else 0

    @property
    def average_degree(self) -> float:
        n = self.num_vertices
        return self.num_directed_edges / n if n else 0.0

    @property
    def nbytes(self) -> int:
        """Device-resident size of the CSR structure."""
        return self.row_offsets.nbytes + self.col_indices.nbytes

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor list of ``v`` (a view, do not mutate)."""
        return self.col_indices[self.row_offsets[v] : self.row_offsets[v + 1]]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check CSR invariants; raise :class:`GraphFormatError` if broken."""
        ro, ci = self.row_offsets, self.col_indices
        if ro.size < 1:
            raise GraphFormatError("row_offsets must have at least one entry")
        if ro[0] != 0 or ro[-1] != ci.size:
            raise GraphFormatError(
                f"row_offsets must span [0, {ci.size}]; got [{ro[0]}, {ro[-1]}]"
            )
        if np.any(np.diff(ro) < 0):
            raise GraphFormatError("row_offsets must be non-decreasing")
        n = self.num_vertices
        if ci.size:
            if ci.min() < 0 or ci.max() >= n:
                raise GraphFormatError("col_indices out of vertex range")
            # sorted & duplicate-free within each row
            inner = np.ones(ci.size, dtype=bool)
            starts = ro[1:-1]
            inner[starts[starts < ci.size]] = False  # row boundaries may decrease
            bad = (np.diff(ci) <= 0) & inner[1:]
            if bad.any():
                raise GraphFormatError(
                    "adjacency lists must be strictly increasing within each row"
                )
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(ro))
            if np.any(rows == ci):
                raise GraphFormatError("self loops are not allowed")

    # ------------------------------------------------------------------
    # edge lookup
    # ------------------------------------------------------------------
    @property
    def edge_keys(self) -> np.ndarray:
        """Globally sorted ``row * n + col`` keys (built lazily)."""
        if self._edge_keys is None:
            n = self.num_vertices
            rows = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self.row_offsets)
            )
            self._edge_keys = rows * n + self.col_indices.astype(np.int64)
        return self._edge_keys

    @property
    def lookup_cost(self) -> np.ndarray:
        """Per-vertex op cost of one adjacency binary search."""
        if self._lookup_cost is None:
            d = self.degrees
            self._lookup_cost = np.ceil(np.log2(d + 1.0)).astype(np.int64) + 1
        return self._lookup_cost

    def has_edge(self, u: int, v: int) -> bool:
        """Scalar edge query (binary search of ``u``'s adjacency)."""
        row = self.neighbors(u)
        i = np.searchsorted(row, v)
        return bool(i < row.size and row[i] == v)

    def batch_has_edge(
        self,
        u: np.ndarray,
        v: np.ndarray,
        device: Optional[Device] = None,
        method: str = "keys",
    ) -> np.ndarray:
        """Vectorised edge queries ``(u[i], v[i]) in E``.

        Parameters
        ----------
        u, v:
            Equal-length integer arrays of endpoints.
        device:
            When given, charges the device one kernel with the per-query
            binary-search cost ``ceil(log2(deg(u)+1)) + 1``.
        method:
            ``"keys"`` (fast path) or ``"binary"`` (faithful lockstep
            search used for validation).
        """
        u = np.asarray(u)
        v = np.asarray(v)
        if u.shape != v.shape:
            raise ValueError("u and v must have the same shape")
        if device is not None and u.size:
            device.launch(
                self.lookup_cost[u].astype(np.float64),
                name="batch_has_edge",
            )
        if u.size == 0:
            return np.zeros(0, dtype=bool)
        if method == "keys":
            return self._lookup_keys(u, v)
        if method == "binary":
            return self._lookup_binary(u, v)
        raise ValueError(f"unknown lookup method {method!r}")

    def _lookup_keys(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        n = self.num_vertices
        keys = self.edge_keys
        q = u.astype(np.int64) * n + v.astype(np.int64)
        pos = np.searchsorted(keys, q)
        found = pos < keys.size
        out = np.zeros(u.size, dtype=bool)
        idx = np.flatnonzero(found)
        out[idx] = keys[pos[idx]] == q[idx]
        return out

    def _lookup_binary(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        lo = self.row_offsets[u].copy()
        hi = self.row_offsets[u + 1].copy()
        target = v.astype(np.int32)
        found = np.zeros(u.size, dtype=bool)
        active = lo < hi
        col = self.col_indices
        while active.any():
            idx = np.flatnonzero(active)
            mid = (lo[idx] + hi[idx]) >> 1
            mv = col[mid]
            t = target[idx]
            hit = mv == t
            found[idx[hit]] = True
            less = mv < t
            lo[idx[less]] = mid[less] + 1
            greater = ~less & ~hit
            hi[idx[greater]] = mid[greater]
            active[idx[hit]] = False
            active &= lo < hi
        return found

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of the graph (hex SHA-256).

        Covers the vertex/edge counts and the exact ``row_offsets`` /
        ``col_indices`` contents, so two :class:`CSRGraph` instances
        share a fingerprint iff they encode the same labelled graph.
        Isomorphic graphs with different vertex labels hash
        differently -- the fingerprint identifies the *input*, which is
        what result caching needs (the solve service keys its cache on
        ``fingerprint()`` plus the solver configuration). Computed once
        and memoised; the arrays are immutable by convention.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            h.update(b"repro-csr/1")
            h.update(np.int64(self.num_vertices).tobytes())
            h.update(np.int64(self.num_directed_edges).tobytes())
            h.update(self.row_offsets.tobytes())
            h.update(self.col_indices.tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def to_edge_list(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return one (src < dst) pair per undirected edge."""
        n = self.num_vertices
        rows = np.repeat(np.arange(n, dtype=np.int32), np.diff(self.row_offsets))
        mask = rows < self.col_indices
        return rows[mask], self.col_indices[mask].copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"avg_deg={self.average_degree:.2f})"
        )
