"""Vectorised synthetic graph generators.

The paper evaluates on 58 real-world Network Repository graphs across
six categories (social, web, road, biological, technological,
collaboration). With no network access, :mod:`repro.datasets` builds a
surrogate suite from the generators here, chosen so each category
reproduces the *structural regime* that drives the paper's results:

* ``caveman_social`` -- dense overlapping communities; average degree
  near or above the clique number (the paper's hard-to-prune Facebook
  graphs, Section V-B3c).
* ``rmat`` -- skewed web-like degree distributions with hubs.
* ``road_grid`` -- very low average degree, tiny cliques (the paper's
  best-case inputs).
* ``chung_lu_power_law`` -- heavy-tailed tech/bio topologies.
* ``team_collaboration`` -- unions of author-team cliques; low degree
  but large, easy-to-find maximum cliques.
* ``planted_clique`` / ``erdos_renyi`` -- controlled ω-vs-degree
  experiments and test oracles.

All generators are deterministic given ``seed`` and return undirected
simple :class:`~repro.graph.csr.CSRGraph` objects.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .build import from_edge_array
from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "erdos_renyi_m",
    "chung_lu_power_law",
    "rmat",
    "planted_clique",
    "caveman_social",
    "road_grid",
    "team_collaboration",
    "complete_graph",
    "cycle_graph",
    "star_graph",
]

SeedLike = Union[int, np.random.Generator]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# deterministic small graphs (test fixtures)
# ----------------------------------------------------------------------
def complete_graph(n: int) -> CSRGraph:
    """K_n."""
    iu = np.triu_indices(n, k=1)
    return from_edge_array(iu[0], iu[1], num_vertices=n)


def cycle_graph(n: int) -> CSRGraph:
    """C_n (n >= 3)."""
    if n < 3:
        raise ValueError("cycle_graph requires n >= 3")
    src = np.arange(n, dtype=np.int64)
    return from_edge_array(src, (src + 1) % n, num_vertices=n)


def star_graph(n_leaves: int) -> CSRGraph:
    """A star with one hub and ``n_leaves`` leaves."""
    src = np.zeros(n_leaves, dtype=np.int64)
    dst = np.arange(1, n_leaves + 1, dtype=np.int64)
    return from_edge_array(src, dst, num_vertices=n_leaves + 1)


# ----------------------------------------------------------------------
# random models
# ----------------------------------------------------------------------
def erdos_renyi(n: int, p: float, seed: SeedLike = 0) -> CSRGraph:
    """G(n, p). Dense sampling; intended for n up to a few thousand."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = _rng(seed)
    iu = np.triu_indices(n, k=1)
    mask = rng.random(iu[0].size) < p
    return from_edge_array(iu[0][mask], iu[1][mask], num_vertices=n)


def erdos_renyi_m(n: int, m: int, seed: SeedLike = 0) -> CSRGraph:
    """G(n, m)-style: approximately ``m`` distinct undirected edges."""
    rng = _rng(seed)
    if n < 2:
        return from_edge_array(np.zeros(0, np.int64), np.zeros(0, np.int64), n)
    # oversample to compensate for duplicates / self loops, then dedupe
    k = int(m * 1.15) + 16
    src = rng.integers(0, n, size=k, dtype=np.int64)
    dst = rng.integers(0, n, size=k, dtype=np.int64)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    keys = np.unique(lo * n + hi)[:m]
    return from_edge_array(keys // n, keys % n, num_vertices=n)


def chung_lu_power_law(
    n: int,
    avg_degree: float,
    exponent: float = 2.3,
    seed: SeedLike = 0,
    max_weight_frac: float = 0.1,
) -> CSRGraph:
    """Chung-Lu graph with power-law expected degrees.

    Produces the heavy-tailed degree distributions of tech/bio
    networks. Edge (u, v) appears with probability proportional to
    ``w_u * w_v`` where ``w_i ~ i^{-1/(exponent-1)}``.
    """
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    rng = _rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-1.0 / (exponent - 1.0))
    w *= (avg_degree * n / 2.0) / w.sum()  # expected total weight = |E|
    w = np.minimum(w, max_weight_frac * n)
    total = w.sum()
    m_target = int(total)
    if m_target == 0:
        return from_edge_array(np.zeros(0, np.int64), np.zeros(0, np.int64), n)
    # sample endpoints proportionally to weights (efficient Chung-Lu)
    p = w / w.sum()
    k = int(m_target * 1.2) + 16
    src = rng.choice(n, size=k, p=p)
    dst = rng.choice(n, size=k, p=p)
    perm = rng.permutation(n)  # decorrelate id from weight rank
    return from_edge_array(perm[src], perm[dst], num_vertices=n)


def rmat(
    scale: int,
    edge_factor: int = 8,
    probs: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: SeedLike = 0,
) -> CSRGraph:
    """R-MAT recursive matrix graph (web-like, hub-heavy).

    ``2**scale`` vertices and roughly ``edge_factor * 2**scale``
    undirected edges (duplicates merged).
    """
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("RMAT probabilities must sum to 1")
    rng = _rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        right = (r >= a + c) | ((r >= a) & (r < a + b))  # quadrant b or d
        down = r >= a + b  # quadrant c or d
        src |= (down.astype(np.int64)) << bit
        dst |= (right.astype(np.int64)) << bit
    perm = rng.permutation(n)
    return from_edge_array(perm[src], perm[dst], num_vertices=n)


def planted_clique(
    n: int,
    clique_size: int,
    avg_degree: float,
    seed: SeedLike = 0,
) -> CSRGraph:
    """Sparse background graph with one planted clique.

    The clique members are random vertex ids; with ``avg_degree`` well
    below ``clique_size`` the planted clique is the unique maximum
    clique, giving a controlled ω-vs-degree knob for experiments.
    """
    if clique_size > n:
        raise ValueError("clique_size cannot exceed n")
    rng = _rng(seed)
    bg = int(avg_degree * n / 2)
    src = rng.integers(0, n, size=int(bg * 1.15) + 16, dtype=np.int64)
    dst = rng.integers(0, n, size=src.size, dtype=np.int64)
    members = rng.choice(n, size=clique_size, replace=False).astype(np.int64)
    iu = np.triu_indices(clique_size, k=1)
    src = np.concatenate([src, members[iu[0]]])
    dst = np.concatenate([dst, members[iu[1]]])
    return from_edge_array(src, dst, num_vertices=n)


def caveman_social(
    num_communities: int,
    community_size: int,
    p_in: float = 0.4,
    p_out_degree: float = 2.0,
    seed: SeedLike = 0,
) -> CSRGraph:
    """Relaxed-caveman social network.

    Dense intra-community blocks (edge probability ``p_in``) plus a
    sprinkling of inter-community edges (``p_out_degree`` expected per
    vertex). High average degree with clique number typically *below*
    the average degree -- the paper's hardest-to-prune regime.
    """
    rng = _rng(seed)
    n = num_communities * community_size
    srcs = []
    dsts = []
    iu = np.triu_indices(community_size, k=1)
    for c in range(num_communities):
        mask = rng.random(iu[0].size) < p_in
        base = c * community_size
        srcs.append(iu[0][mask] + base)
        dsts.append(iu[1][mask] + base)
    k = int(p_out_degree * n / 2)
    if k > 0:
        srcs.append(rng.integers(0, n, size=k, dtype=np.int64))
        dsts.append(rng.integers(0, n, size=k, dtype=np.int64))
    perm = rng.permutation(n)
    src = perm[np.concatenate(srcs).astype(np.int64)]
    dst = perm[np.concatenate(dsts).astype(np.int64)]
    return from_edge_array(src, dst, num_vertices=n)


def road_grid(
    width: int,
    height: int,
    diagonal_p: float = 0.05,
    rewire_p: float = 0.02,
    seed: SeedLike = 0,
) -> CSRGraph:
    """Road-network-like grid: average degree < 4, clique number <= 4.

    A ``width x height`` lattice with a small fraction of diagonal
    shortcuts (creating triangles/K4s, like real road intersections)
    and random long-range rewires.
    """
    rng = _rng(seed)
    n = width * height
    idx = np.arange(n, dtype=np.int64).reshape(height, width)
    srcs = [idx[:, :-1].ravel(), idx[:-1, :].ravel()]
    dsts = [idx[:, 1:].ravel(), idx[1:, :].ravel()]
    if diagonal_p > 0:
        cand_s = idx[:-1, :-1].ravel()
        cand_d = idx[1:, 1:].ravel()
        mask = rng.random(cand_s.size) < diagonal_p
        srcs.append(cand_s[mask])
        dsts.append(cand_d[mask])
        # opposite diagonal closes K4s occasionally
        cand_s2 = idx[:-1, 1:].ravel()
        cand_d2 = idx[1:, :-1].ravel()
        mask2 = rng.random(cand_s2.size) < diagonal_p / 2
        srcs.append(cand_s2[mask2])
        dsts.append(cand_d2[mask2])
    k = int(rewire_p * n)
    if k > 0:
        srcs.append(rng.integers(0, n, size=k, dtype=np.int64))
        dsts.append(rng.integers(0, n, size=k, dtype=np.int64))
    return from_edge_array(
        np.concatenate(srcs), np.concatenate(dsts), num_vertices=n
    )


def team_collaboration(
    n: int,
    num_teams: int,
    team_size_range: Tuple[int, int] = (2, 9),
    size_exponent: float = 2.0,
    seed: SeedLike = 0,
) -> CSRGraph:
    """Union of author-team cliques (collaboration networks).

    Each team is a clique over a random vertex subset; team sizes
    follow a truncated power law. Maximum cliques come from the
    largest teams, so ω is well above the (low) average degree -- the
    easy-to-prune regime where the paper's approach shines.
    """
    rng = _rng(seed)
    lo, hi = team_size_range
    if lo < 2 or hi < lo:
        raise ValueError("team_size_range must satisfy 2 <= lo <= hi")
    sizes = np.arange(lo, hi + 1, dtype=np.float64)
    p = sizes ** (-size_exponent)
    p /= p.sum()
    team_sizes = rng.choice(np.arange(lo, hi + 1), size=num_teams, p=p)
    srcs = []
    dsts = []
    for size in team_sizes.tolist():
        members = rng.choice(n, size=size, replace=False).astype(np.int64)
        iu = np.triu_indices(size, k=1)
        srcs.append(members[iu[0]])
        dsts.append(members[iu[1]])
    if not srcs:
        return from_edge_array(np.zeros(0, np.int64), np.zeros(0, np.int64), n)
    return from_edge_array(
        np.concatenate(srcs), np.concatenate(dsts), num_vertices=n
    )
