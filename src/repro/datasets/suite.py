"""The 58-graph surrogate evaluation suite.

The paper evaluates on the 58 largest real-world datasets of Rossi et
al.'s study (Network Repository; 10k-106M edges) spanning six
categories. Offline, we substitute a deterministic synthetic suite
with the same categorical mix and -- crucially -- the same *regime
diversity* the paper's findings hinge on:

========== ===== ==========================================================
category   count regime reproduced
========== ===== ==========================================================
road          8  very low average degree, tiny ω  (paper's best case)
collab       10  low degree, ω from team cliques well above degree
bio           8  heavy-tailed moderate degree, planted complexes
tech          8  heavy-tailed low degree
web          10  hub-dominated skewed degrees (R-MAT)
social       14  dense communities, average degree near/above ω
                 (paper's hard-to-prune Facebook regime; includes two
                 "monster" entries expected to OOM even windowed,
                 mirroring friendster/flickr in the paper)
========== ===== ==========================================================

Sizes are scaled down ~1000x from the paper (≈3k-300k edges) together
with the evaluation device's memory budget (40 GB -> 32 MiB), so
memory behaviour (Table I OOM rates, Figure 6 reductions) reproduces
in shape. Every graph gets its vertex ids randomised, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..graph.build import graph_union, relabel_random
from ..graph.csr import CSRGraph
from ..graph import generators as gen

__all__ = ["DatasetSpec", "SUITE", "load", "names", "iter_suite", "categories"]


@dataclass(frozen=True)
class DatasetSpec:
    """One suite entry: a named, seeded synthetic graph."""

    name: str
    category: str
    builder: Callable[[], CSRGraph]
    seed: int
    notes: str = ""

    def build(self) -> CSRGraph:
        """Generate (deterministic) and randomise vertex ids."""
        return relabel_random(self.builder(), seed=self.seed + 7919)


def _road(name: str, w: int, h: int, seed: int, **kw) -> DatasetSpec:
    return DatasetSpec(
        name, "road", lambda: gen.road_grid(w, h, seed=seed, **kw), seed,
        notes=f"{w}x{h} grid",
    )


def _collab(name: str, n: int, teams: int, hi: int, seed: int) -> DatasetSpec:
    return DatasetSpec(
        name,
        "collab",
        lambda: gen.team_collaboration(n, teams, team_size_range=(2, hi), seed=seed),
        seed,
        notes=f"n={n}, {teams} teams, max team {hi}",
    )


def _bio(name: str, n: int, avg: float, hi: int, seed: int, planted: int = 0) -> DatasetSpec:
    """Heavy-tailed backbone + protein-complex cliques (team overlay)."""
    if planted:
        return DatasetSpec(
            name, "bio",
            lambda: gen.planted_clique(n, planted, avg_degree=avg, seed=seed),
            seed, notes=f"n={n}, planted K{planted}",
        )
    return DatasetSpec(
        name, "bio",
        lambda: graph_union(
            gen.chung_lu_power_law(n, avg, exponent=2.2, seed=seed),
            gen.team_collaboration(n, n // 8, team_size_range=(3, hi), seed=seed + 1),
        ),
        seed, notes=f"n={n}, Chung-Lu 2.2 + complexes<= {hi}",
    )


def _tech(name: str, n: int, avg: float, hi: int, seed: int) -> DatasetSpec:
    """Heavy-tailed backbone + small motif cliques."""
    return DatasetSpec(
        name, "tech",
        lambda: graph_union(
            gen.chung_lu_power_law(n, avg, exponent=2.5, seed=seed),
            gen.team_collaboration(n, n // 10, team_size_range=(3, hi), seed=seed + 1),
        ),
        seed, notes=f"n={n}, Chung-Lu 2.5 + motifs<= {hi}",
    )


def _web(name: str, scale: int, ef: int, hi: int, seed: int) -> DatasetSpec:
    """R-MAT hub backbone + link-farm cliques.

    Bare R-MAT is nearly clique-free; real web graphs are heavily
    clustered. The overlay also separates degree from core number
    (hubs have huge degree but low core), which is what makes the
    single-run core heuristic much more accurate than the single-run
    degree heuristic here, as in the paper's Table I.
    """
    n = 1 << scale
    return DatasetSpec(
        name, "web",
        lambda: graph_union(
            gen.rmat(scale, ef, seed=seed),
            gen.team_collaboration(n, n // 6, team_size_range=(3, hi), seed=seed + 1),
        ),
        seed, notes=f"RMAT scale {scale}, ef {ef} + farms<= {hi}",
    )


def _soc(
    name: str, comms: int, size: int, p_in: float, seed: int, p_out: float = 2.0
) -> DatasetSpec:
    return DatasetSpec(
        name, "social",
        lambda: gen.caveman_social(comms, size, p_in=p_in, p_out_degree=p_out, seed=seed),
        seed, notes=f"{comms}x{size} communities, p_in={p_in}",
    )


#: The full 58-graph suite (names: category prefix + shape hint).
SUITE: List[DatasetSpec] = [
    # -- road: 8 (avg degree ~3-4, omega 3-4) --------------------------------
    _road("road-grid-60", 60, 60, 101),
    _road("road-grid-90", 90, 90, 102),
    _road("road-grid-130", 130, 130, 103),
    _road("road-grid-170", 170, 170, 104),
    _road("road-grid-210", 210, 210, 105),
    _road("road-grid-250", 250, 250, 106),
    _road("road-grid-300", 300, 300, 107),
    _road("road-grid-360", 360, 360, 108, diagonal_p=0.08),
    # -- collab: 10 (low degree, clique-heavy) -------------------------------
    _collab("ca-team-1k", 1_000, 700, 9, 201),
    _collab("ca-team-2k", 2_000, 1_500, 9, 202),
    _collab("ca-team-4k", 4_000, 3_000, 11, 203),
    _collab("ca-team-8k", 8_000, 6_000, 11, 204),
    _collab("ca-team-12k", 12_000, 9_000, 13, 205),
    _collab("ca-team-16k", 16_000, 12_000, 13, 206),
    _collab("ca-team-24k", 24_000, 18_000, 15, 207),
    _collab("ca-team-32k", 32_000, 24_000, 17, 208),
    _collab("ca-team-48k", 48_000, 36_000, 19, 209),
    _collab("ca-team-64k", 64_000, 48_000, 21, 210),
    # -- bio: 8 (heavy tail + protein complexes) ------------------------------
    _bio("bio-cl-1k", 1_000, 6.0, 10, 301),
    _bio("bio-cl-2k", 2_000, 7.0, 12, 302),
    _bio("bio-cl-4k", 4_000, 8.0, 14, 303),
    _bio("bio-cl-8k", 8_000, 8.0, 16, 304),
    _bio("bio-plant-3k", 3_000, 5.0, 0, 305, planted=12),
    _bio("bio-plant-6k", 6_000, 5.0, 0, 306, planted=14),
    _bio("bio-plant-12k", 12_000, 6.0, 0, 307, planted=16),
    _bio("bio-cl-16k", 16_000, 9.0, 20, 308),
    # -- tech: 8 (heavy tail + motifs, lower degree) ---------------------------
    _tech("tech-cl-2k", 2_000, 4.0, 6, 401),
    _tech("tech-cl-4k", 4_000, 4.0, 7, 402),
    _tech("tech-cl-8k", 8_000, 5.0, 8, 403),
    _tech("tech-cl-12k", 12_000, 5.0, 9, 404),
    _tech("tech-cl-20k", 20_000, 5.0, 10, 405),
    _tech("tech-cl-28k", 28_000, 6.0, 11, 406),
    _tech("tech-cl-40k", 40_000, 6.0, 12, 407),
    _tech("tech-cl-56k", 56_000, 6.0, 13, 408),
    # -- web: 10 (R-MAT hubs + link farms) -------------------------------------
    _web("web-rmat-10", 10, 6, 8, 501),
    _web("web-rmat-11", 11, 6, 9, 502),
    _web("web-rmat-12a", 12, 6, 10, 503),
    _web("web-rmat-12b", 12, 10, 12, 504),
    _web("web-rmat-13a", 13, 6, 12, 505),
    _web("web-rmat-13b", 13, 10, 14, 506),
    _web("web-rmat-14a", 14, 6, 14, 507),
    _web("web-rmat-14b", 14, 8, 16, 508),
    _web("web-rmat-15", 15, 6, 16, 509),
    _web("web-rmat-16", 16, 4, 18, 510),
    # -- social: 14 (dense communities; hardest to prune) ----------------------
    _soc("soc-comm-10x50", 10, 50, 0.45, 601),
    _soc("soc-comm-20x60", 20, 60, 0.44, 602),
    _soc("soc-comm-30x70", 30, 70, 0.44, 603),
    _soc("soc-comm-60x80", 60, 80, 0.42, 604, p_out=4.0),
    _soc("fb-comm-30x100", 30, 100, 0.44, 605, p_out=4.0),
    _soc("fb-comm-30x110", 30, 110, 0.46, 606, p_out=4.0),
    _soc("fb-comm-40x120", 40, 120, 0.44, 607, p_out=5.0),
    _soc("fb-comm-20x130", 20, 130, 0.48, 608, p_out=5.0),
    _soc("fb-comm-24x120", 24, 120, 0.46, 609, p_out=5.0),
    _soc("soc-comm-50x90", 50, 90, 0.46, 611, p_out=4.0),
    # hard to prune: average degree far above omega; full BF expected OOM,
    # windowed expected to succeed (the paper's "+4 graphs" group)
    _soc("fb-hard-30x150", 30, 150, 0.48, 612, p_out=5.0),
    _soc("fb-hard-40x150", 40, 150, 0.50, 615, p_out=5.0),
    # two "monsters" expected OOM even windowed (friendster/flickr analogue)
    _soc("fb-monster-40x250", 40, 250, 0.55, 613, p_out=6.0),
    _soc("fb-monster-50x280", 50, 280, 0.58, 614, p_out=6.0),
]

_BY_NAME: Dict[str, DatasetSpec] = {spec.name: spec for spec in SUITE}
assert len(_BY_NAME) == len(SUITE), "duplicate dataset names"

#: names of the two datasets expected to exceed memory even windowed
MONSTERS: Tuple[str, str] = ("fb-monster-40x250", "fb-monster-50x280")


def names() -> List[str]:
    """All dataset names, suite order."""
    return [spec.name for spec in SUITE]


def categories() -> List[str]:
    """Distinct categories, suite order."""
    seen: List[str] = []
    for spec in SUITE:
        if spec.category not in seen:
            seen.append(spec.category)
    return seen


@lru_cache(maxsize=None)
def load(name: str) -> CSRGraph:
    """Build (and memoise) one suite graph by name."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; see repro.datasets.names()"
        ) from None
    return spec.build()


def iter_suite(
    categories: Optional[Sequence[str]] = None,
    max_edges: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[Tuple[DatasetSpec, CSRGraph]]:
    """Yield ``(spec, graph)`` pairs, optionally filtered.

    ``max_edges`` filters *after* generation (graphs are memoised, so
    repeated sweeps are cheap); ``limit`` caps the yielded count --
    handy for smoke tests and scaled-down benchmark runs.
    """
    count = 0
    for spec in SUITE:
        if categories is not None and spec.category not in categories:
            continue
        graph = load(spec.name)
        if max_edges is not None and graph.num_edges > max_edges:
            continue
        yield spec, graph
        count += 1
        if limit is not None and count >= limit:
            return
