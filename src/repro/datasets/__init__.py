"""Surrogate dataset suite standing in for the paper's 58 graphs."""

from .suite import (
    MONSTERS,
    SUITE,
    DatasetSpec,
    categories,
    iter_suite,
    load,
    names,
)

__all__ = [
    "SUITE",
    "MONSTERS",
    "DatasetSpec",
    "load",
    "names",
    "categories",
    "iter_suite",
]
