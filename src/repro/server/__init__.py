"""Network solve server: the ``repro-wire/1`` front-end over the service.

The subsystem that turns the batched :class:`~repro.service.SolveService`
into a long-lived network daemon (``repro serve``) plus the matching
synchronous client library (``repro client``):

* :mod:`repro.server.protocol` -- the versioned newline-delimited JSON
  wire format, error-code table, and graph payload codecs;
* :mod:`repro.server.bridge` -- the micro-batching worker-thread
  bridge that keeps solves off the event loop;
* :mod:`repro.server.server` -- the asyncio TCP server (framing,
  backpressure, rate limiting, graceful drain);
* :mod:`repro.server.client` -- the blocking client with retry and
  backoff;
* :mod:`repro.server.limiter` / :mod:`repro.server.stats` --
  per-connection token buckets and server-level gauges/latency
  percentiles.

See docs/SERVER.md for the protocol spec and operational semantics.
"""

from .bridge import BridgeQueueFull, SolveBridge
from .client import SolveClient
from .limiter import TokenBucket
from .protocol import DEFAULT_PORT, MAX_FRAME_BYTES, PROTOCOL
from .server import ServerConfig, ServerThread, SolveServer
from .stats import LatencyWindow, ServerStats

__all__ = [
    "PROTOCOL",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "SolveServer",
    "ServerConfig",
    "ServerThread",
    "SolveClient",
    "SolveBridge",
    "BridgeQueueFull",
    "TokenBucket",
    "ServerStats",
    "LatencyWindow",
]
