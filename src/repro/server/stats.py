"""Server-level gauges and latency percentiles for the ``stats`` frame.

The service layer already accounts for everything *about solves*
(cache, admission, outcomes, faults -- see
:meth:`repro.service.SolveService.stats_snapshot`); this module keeps
the figures only the network front-end can know: connection and frame
counts, rejects by wire error code, queue depth, and end-to-end
request latency (submit-to-result, host wall clock) summarised as
p50/p99 over a rolling window.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict

__all__ = ["LatencyWindow", "ServerStats"]


class LatencyWindow:
    """Rolling window of recent latencies with percentile queries.

    A bounded deque (default: the last 1024 samples) keeps memory flat
    on a long-lived server while still tracking the current regime --
    a serving percentile should describe *recent* traffic, not the
    process's entire history.
    """

    def __init__(self, size: int = 1024) -> None:
        if size < 1:
            raise ValueError("window size must be at least 1")
        self._samples: "deque[float]" = deque(maxlen=size)
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the window; 0.0 if empty."""
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return 0.0
        rank = max(0, min(len(data) - 1, round(q / 100.0 * (len(data) - 1))))
        return data[rank]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            count, total = self._count, self._total
            window = len(self._samples)
        return {
            "count": count,
            "window": window,
            "mean_ms": (total / count * 1e3) if count else 0.0,
            "p50_ms": self.percentile(50) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
        }


class ServerStats:
    """Thread-safe counter map plus the solve-latency window."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self.latency = LatencyWindow()

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self, **gauges: Any) -> Dict[str, Any]:
        """Counters + latency summary, with caller-supplied gauges merged.

        The server passes point-in-time gauges (open connections,
        queue depth, in-flight jobs) that only it can read.
        """
        with self._lock:
            counters = dict(self._counters)
        out: Dict[str, Any] = dict(counters)
        out.update(gauges)
        out["latency"] = self.latency.snapshot()
        return out
