"""Per-connection token-bucket rate limiting.

Each connection gets its own bucket: ``rate`` tokens per second refill
up to a ``burst`` capacity, and every ``solve`` frame costs one token.
An empty bucket answers with a retriable ``rate_limited`` error frame
carrying ``retry_after_s`` -- the exact time until the next token --
so well-behaved clients back off precisely instead of hammering.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple

__all__ = ["TokenBucket"]


class TokenBucket:
    """A classic token bucket on a monotonic clock.

    Parameters
    ----------
    rate:
        Refill rate in tokens/second; ``0`` (or negative) disables
        limiting entirely -- every acquire succeeds.
    burst:
        Bucket capacity: how many requests may land back-to-back
        before the rate applies.
    clock:
        Seconds-returning clock, injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    @property
    def unlimited(self) -> bool:
        return self.rate <= 0.0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    def try_acquire(self) -> Tuple[bool, float]:
        """Take one token if available.

        Returns ``(True, 0.0)`` on success, else ``(False,
        retry_after_s)`` where ``retry_after_s`` is how long until one
        token will have refilled.
        """
        if self.unlimited:
            return True, 0.0
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (after refill); for tests and stats."""
        if self.unlimited:
            return float(self.burst)
        self._refill()
        return self._tokens
