"""The asyncio network front-end over one :class:`SolveService`.

``SolveServer`` speaks ``repro-wire/1`` (newline-delimited JSON; see
:mod:`repro.server.protocol` and docs/SERVER.md) on a plain TCP
socket. The event loop only ever parses frames and shuffles bytes --
every solve runs on the :class:`~repro.server.bridge.SolveBridge`
worker thread through the existing service stack, so a concurrent
``stats`` frame answers immediately even while a heavy graph is mid
search.

Defence layers, outermost first:

1. **connection cap** -- past ``max_conns``, new sockets get one
   retriable ``too_many_connections`` error frame and are closed;
2. **frame size limit** -- the stream reader's buffer limit rejects
   any line over ``max_frame_bytes`` (``frame_too_large``, close --
   framing cannot be trusted after an oversized blob);
3. **per-connection token bucket** -- ``solve`` frames past the
   configured rate get ``rate_limited`` with a precise
   ``retry_after_s``;
4. **bounded bridge queue** -- server-level backpressure in front of
   the service's admission controller (``server_busy``, retriable);
5. **slow-client write throttling** -- result frames are written
   under ``writer.drain()`` with bounded transport buffers, so one
   unread socket stalls only its own connection task.

Graceful drain (SIGTERM, SIGINT, or a ``shutdown`` frame): the
listener closes, queued jobs fail fast with a retriable ``draining``
error, the in-flight batch finishes and its results are still
delivered, then every connection is closed and the server exits.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import signal
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from .. import __version__
from ..errors import ProtocolError, ServerError, SessionError
from ..log import get_logger
from ..stream import GraphSession, SessionManager
from ..trace import NULL_TRACER, CounterTracer
from . import protocol
from .bridge import BridgeQueueFull, SolveBridge
from .limiter import TokenBucket
from .stats import ServerStats

__all__ = ["ServerConfig", "SolveServer", "ServerThread"]

log = get_logger("server")


@dataclass
class ServerConfig:
    """Network-layer knobs of one :class:`SolveServer`.

    Everything about *solving* (pool size, memory budget, cache,
    policy, executor) lives on the :class:`SolveService` the server
    wraps; this config is only the wire-facing surface.
    """

    host: str = "127.0.0.1"
    port: int = protocol.DEFAULT_PORT  #: 0 picks an ephemeral port
    max_conns: int = 32
    #: solve frames per second per connection; 0 disables limiting
    rate: float = 0.0
    burst: int = 8
    #: bounded bridge queue depth (server-level backpressure)
    queue_depth: int = 64
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    #: seconds to wait for the in-flight batch during a drain
    drain_timeout_s: float = 60.0
    #: seconds a fresh connection gets to complete the hello handshake
    handshake_timeout_s: float = 10.0
    #: bounded idempotency table: how many ``request_id`` entries are
    #: remembered for duplicate/resend detection (completed entries are
    #: evicted oldest-first past the cap; in-flight ones never are)
    dedup_capacity: int = 1024
    #: cap on concurrently resident streaming sessions
    max_sessions: int = 64
    #: incremental-solver fallback knobs of every session this server
    #: hosts (see :class:`~repro.stream.incremental.IncrementalSolver`)
    session_dirty_threshold: float = 0.5
    session_max_localized: int = 64


class _DedupEntry:
    """One remembered solve, keyed by its client ``request_id``.

    While the solve is in flight, ``future`` lets a duplicate delivery
    *join* the running job (a second reply is sent when it finishes,
    no second execution). Once finished, ``record`` replays the cached
    reply to any resend -- the at-most-once-execution guarantee a
    client's blind retry after an ambiguous failure relies on.
    """

    __slots__ = ("key", "future", "record", "max_report")

    def __init__(self, key: str, future, max_report) -> None:
        self.key = key
        self.future = future
        self.record = None  #: JobRecord once the solve finished
        self.max_report = max_report


class _Conn:
    """Per-connection state: writer lock, rate bucket, job bookkeeping."""

    def __init__(self, cid: int, writer: asyncio.StreamWriter, config: ServerConfig):
        self.cid = cid
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.bucket = TokenBucket(config.rate, config.burst)
        #: client request id -> server job id, for outstanding solves
        self.jobs: Dict[str, str] = {}
        self.tasks: Set[asyncio.Task] = set()
        #: session ids this connection subscribed to (teardown cleanup)
        self.subs: Set[str] = set()
        self.closed = False


class _Subscriber:
    """One live ``subscribe`` registration on a session.

    ``last_epoch`` makes update delivery monotone per subscriber: a
    push always carries the session's *current* view, and epochs the
    subscriber has already seen are skipped -- so even when two
    mutation completions race on the event loop, no subscriber ever
    observes a stale view after a fresh one.
    """

    __slots__ = ("conn", "sub_id", "last_epoch")

    def __init__(self, conn: _Conn, sub_id: str, last_epoch: int) -> None:
        self.conn = conn
        self.sub_id = sub_id
        self.last_epoch = last_epoch


class SolveServer:
    """Asyncio TCP server bridging ``repro-wire/1`` onto a SolveService."""

    def __init__(self, service, config: Optional[ServerConfig] = None) -> None:
        self.service = service
        self.config = config if config is not None else ServerConfig()
        self.stats = ServerStats()
        self.bridge = SolveBridge(service, max_queue=self.config.queue_depth)
        self.port: Optional[int] = None  #: bound port, known after start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._done: Optional[asyncio.Event] = None
        self._draining = False
        self._conns: Set[_Conn] = set()
        #: request_id -> _DedupEntry, LRU-ordered (bounded idempotency)
        self._dedup: "OrderedDict[str, _DedupEntry]" = OrderedDict()
        #: resident streaming sessions; all registry *writes* happen on
        #: the bridge worker (FIFO with the mutations they order against)
        self.sessions = SessionManager(max_sessions=self.config.max_sessions)
        #: session id -> live subscribe registrations (event-loop only)
        self._subscribers: Dict[str, List[_Subscriber]] = {}
        #: session id -> push serialization lock (event-loop only)
        self._push_locks: Dict[str, asyncio.Lock] = {}
        #: worker-thread-safe id source for session-internal solves
        self._session_seq = itertools.count()
        self._next_cid = 0
        self._next_job = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener; ``self.port`` is valid afterwards."""
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=self.config.max_frame_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("serving repro-wire/1 on %s:%d", self.config.host, self.port)

    async def serve_until_drained(self) -> None:
        """Run until a drain (signal or ``shutdown`` frame) completes."""
        if self._server is None:
            await self.start()
        assert self._done is not None
        await self._done.wait()

    def run(self, install_signal_handlers: bool = True) -> None:
        """Blocking entry point used by ``repro serve``."""

        async def _main() -> None:
            await self.start()
            if install_signal_handlers:
                loop = asyncio.get_running_loop()
                for sig in (signal.SIGTERM, signal.SIGINT):
                    with contextlib.suppress(NotImplementedError):
                        loop.add_signal_handler(sig, self.begin_drain)
            await self.serve_until_drained()

        asyncio.run(_main())

    def begin_drain(self) -> None:
        """Start a graceful drain; idempotent, must run on the loop."""
        if self._draining:
            return
        self._draining = True
        log.info("drain: stopping listener, rejecting queued jobs")
        assert self._loop is not None
        self._loop.create_task(self._drain())

    def kill(self) -> None:
        """Crash the server: abort every socket, no drain, no goodbyes.

        The chaos-harness counterpart of :meth:`begin_drain` -- from a
        peer's perspective this is indistinguishable from a SIGKILL'd
        process (connections reset mid-frame, queued and in-flight
        results never delivered). Must run on the event loop.
        """
        if self._server is not None:
            self._server.close()
        for conn in list(self._conns):
            conn.closed = True
            self._conns.discard(conn)
            with contextlib.suppress(Exception):
                conn.writer.transport.abort()
        self._draining = True
        if self._done is not None:
            self._done.set()
        log.info("killed: all connections aborted")

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        # queued jobs fail fast (retriable error frames go out through
        # their waiting tasks); the in-flight batch runs to completion
        completed = await loop.run_in_executor(
            None, self.bridge.drain, self.config.drain_timeout_s
        )
        if not completed:
            log.warning(
                "drain: in-flight batch still running after %.1fs",
                self.config.drain_timeout_s,
            )
        # let result frames flush to still-connected clients
        tasks = [t for conn in list(self._conns) for t in list(conn.tasks)]
        if tasks:
            await asyncio.wait(tasks, timeout=self.config.drain_timeout_s)
        for conn in list(self._conns):
            await self._close_conn(conn)
        assert self._done is not None
        self._done.set()
        log.info("drain: complete")

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.inc("connections.total")
        conn = _Conn(self._next_cid, writer, self.config)
        self._next_cid += 1
        if self._draining or len(self._conns) >= self.config.max_conns:
            code = "draining" if self._draining else "too_many_connections"
            self.stats.inc(f"rejects.{code}")
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(
                    protocol.encode_frame(
                        protocol.error_frame(code, f"connection refused: {code}")
                    )
                )
                await writer.drain()
            writer.close()
            return
        # bound the kernel-side write buffer so a slow reader exerts
        # backpressure on its own drain() instead of growing memory
        with contextlib.suppress(Exception):
            writer.transport.set_write_buffer_limits(high=256 * 1024)
        self._conns.add(conn)
        try:
            if await self._handshake(conn, reader):
                await self._read_loop(conn, reader)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # client went away; cleanup below
        finally:
            await self._teardown_conn(conn)

    async def _handshake(self, conn: _Conn, reader: asyncio.StreamReader) -> bool:
        try:
            line = await asyncio.wait_for(
                reader.readline(), self.config.handshake_timeout_s
            )
        except asyncio.TimeoutError:
            await self._send_error(
                conn, "handshake_required", "no hello frame before timeout"
            )
            return False
        except ValueError:
            await self._oversized(conn)
            return False
        if not line:
            return False
        self.stats.inc("frames.in")
        try:
            frame = protocol.decode_frame(line)
        except ProtocolError as exc:
            await self._send_error(conn, exc.code, str(exc))
            return False
        if frame.get("type") != "hello":
            await self._send_error(
                conn,
                "handshake_required",
                f"first frame must be hello, got {frame.get('type')!r}",
            )
            return False
        if frame.get("protocol") != protocol.PROTOCOL:
            await self._send_error(
                conn,
                "unsupported_protocol",
                f"server speaks {protocol.PROTOCOL}, "
                f"client offered {frame.get('protocol')!r}",
            )
            return False
        await self._send(
            conn,
            protocol.hello_frame(
                self.config.max_frame_bytes, f"repro/{__version__}"
            ),
        )
        return True

    async def _read_loop(self, conn: _Conn, reader: asyncio.StreamReader) -> None:
        while not conn.closed:
            try:
                line = await reader.readline()
            except ValueError:
                # the stream buffer overflowed: an oversized frame (or
                # newline-free garbage); framing is unrecoverable
                await self._oversized(conn)
                return
            if not line:
                return  # EOF
            self.stats.inc("frames.in")
            try:
                frame = protocol.decode_frame(line)
            except ProtocolError as exc:
                # newline framing is still intact after a bad line, so
                # answer and keep the connection
                self.stats.inc("rejects.bad_frame")
                await self._send_error(conn, exc.code, str(exc))
                continue
            await self._dispatch(conn, frame)

    async def _dispatch(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        ftype = frame["type"]
        if ftype == "solve":
            await self._on_solve(conn, frame)
        elif ftype == "stats":
            await self._send(conn, self._stats_frame())
        elif ftype == "status":
            await self._on_status(conn, frame)
        elif ftype == "cancel":
            await self._on_cancel(conn, frame)
        elif ftype == "checkpoint":
            await self._on_checkpoint(conn, frame)
        elif ftype == "open-session":
            await self._on_open_session(conn, frame)
        elif ftype == "mutate":
            await self._on_mutate(conn, frame)
        elif ftype == "subscribe":
            await self._on_subscribe(conn, frame)
        elif ftype == "close-session":
            await self._on_close_session(conn, frame)
        elif ftype == "shutdown":
            await self._send(
                conn,
                {
                    "type": "bye",
                    "in_flight": self.bridge.in_flight,
                    "queued": self.bridge.queue_depth,
                },
            )
            self.begin_drain()
        elif ftype == "hello":
            # a redundant hello is harmless; answer it again
            await self._send(
                conn,
                protocol.hello_frame(
                    self.config.max_frame_bytes, f"repro/{__version__}"
                ),
            )
        else:
            self.stats.inc("rejects.unknown_type")
            await self._send_error(
                conn,
                "unknown_type",
                f"unknown frame type {ftype!r}",
                request_id=frame.get("id"),
            )

    # ------------------------------------------------------------------
    # solve path
    # ------------------------------------------------------------------
    async def _on_solve(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        request_id = frame.get("id")
        if request_id is not None and not isinstance(request_id, str):
            await self._send_error(conn, "bad_request", "'id' must be a string")
            return
        try:
            dedup_key = protocol.validate_request_key(frame)
        except ProtocolError as exc:
            self.stats.inc("rejects.bad_request")
            await self._send_error(conn, exc.code, str(exc), request_id=request_id)
            return
        # idempotency first: a duplicated or resent solve must never
        # execute twice, so the dedup table answers before rate limits,
        # the in-flight-id check, or the (expensive) graph decode
        if dedup_key is not None and await self._dedup_hit(
            conn, request_id, dedup_key
        ):
            return
        if request_id is not None and request_id in conn.jobs:
            await self._send_error(
                conn,
                "bad_request",
                f"request id {request_id!r} is already in flight "
                f"on this connection",
                request_id=request_id,
            )
            return
        if self._draining:
            self.stats.inc("rejects.draining")
            await self._send_error(
                conn, "draining", "server is draining", request_id=request_id
            )
            return
        ok, retry_after = conn.bucket.try_acquire()
        if not ok:
            self.stats.inc("rejects.rate_limited")
            await self._send_error(
                conn,
                "rate_limited",
                f"connection rate limit "
                f"({self.config.rate:g}/s, burst {self.config.burst}) exceeded",
                request_id=request_id,
                retry_after_s=retry_after,
            )
            return
        # graph decode can be MiBs of base64+gzip+parsing: off the loop
        loop = asyncio.get_running_loop()
        try:
            request, max_report = await loop.run_in_executor(
                None, protocol.solve_request_from_frame, frame
            )
        except ProtocolError as exc:
            self.stats.inc("rejects.bad_request")
            await self._send_error(conn, exc.code, str(exc), request_id=request_id)
            return
        if request.deadline is not None and request.deadline.expired:
            # the budget is already gone: refuse retriable instead of
            # computing an answer the client has stopped waiting for
            self.stats.inc("rejects.deadline_exceeded")
            self._service_counter("service.deadline.rejected")
            await self._send_error(
                conn,
                "deadline_exceeded",
                "request deadline expired before dispatch",
                request_id=request_id,
            )
            return
        job_id = f"conn{conn.cid}-job{self._next_job}"
        self._next_job += 1
        request.job_id = job_id
        try:
            future = self.bridge.submit(request)
        except BridgeQueueFull as exc:
            self.stats.inc("rejects.server_busy")
            await self._send_error(
                conn,
                "server_busy",
                str(exc),
                request_id=request_id,
                retry_after_s=0.1,
            )
            return
        except ServerError as exc:
            self.stats.inc(f"rejects.{exc.code}")
            await self._send_error(conn, exc.code, str(exc), request_id=request_id)
            return
        self.stats.inc("solves.accepted")
        if request_id is not None:
            conn.jobs[request_id] = job_id
        entry = None
        if dedup_key is not None:
            entry = _DedupEntry(dedup_key, future, max_report)
            self._dedup[dedup_key] = entry
            self._dedup.move_to_end(dedup_key)
            self._prune_dedup()
        t0 = loop.time()
        task = loop.create_task(
            self._await_result(
                conn, request_id, job_id, future, max_report, t0, entry
            )
        )
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    async def _dedup_hit(self, conn: _Conn, request_id, dedup_key: str) -> bool:
        """Answer a known ``request_id`` from the dedup table.

        Completed entries replay the cached reply; in-flight entries
        attach this delivery to the running job (its reply goes out
        when the one execution finishes). Returns False when the key
        is unknown and the solve should proceed normally.
        """
        entry = self._dedup.get(dedup_key)
        if entry is None:
            return False
        self._dedup.move_to_end(dedup_key)
        if entry.record is not None:
            self.stats.inc("dedup.replays")
            self._service_counter("service.dedup.replays")
            await self._send(
                conn,
                protocol.result_frame(request_id, entry.record, entry.max_report),
            )
            return True
        self.stats.inc("dedup.joins")
        self._service_counter("service.dedup.joins")
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._join_result(conn, request_id, entry))
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)
        return True

    async def _join_result(self, conn: _Conn, request_id, entry) -> None:
        """Deliver an in-flight job's eventual reply to a duplicate."""
        try:
            record = await asyncio.wrap_future(entry.future)
        except ServerError as exc:
            await self._send_error(conn, exc.code, str(exc), request_id=request_id)
            return
        await self._send(
            conn, protocol.result_frame(request_id, record, entry.max_report)
        )

    def _prune_dedup(self) -> None:
        """Evict oldest *completed* entries past the capacity bound."""
        capacity = max(int(self.config.dedup_capacity), 0)
        if len(self._dedup) <= capacity:
            return
        for key in list(self._dedup):
            if len(self._dedup) <= capacity:
                break
            entry = self._dedup[key]
            if entry.record is not None or entry.future.done():
                del self._dedup[key]
                self.stats.inc("dedup.evictions")

    def _service_counter(self, name: str) -> None:
        """Accumulate into the service tracer's counters when it has any."""
        tracer = getattr(self.service, "tracer", None)
        counter = getattr(tracer, "counter", None)
        if counter is not None:
            counter(name)

    async def _await_result(
        self, conn, request_id, job_id, future, max_report, t0, entry=None
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            record = await asyncio.wrap_future(future)
        except ServerError as exc:
            # queued-but-rejected (drain), cancelled, or past-deadline
            # before running: forget the dedup entry so a retry with
            # the same request_id executes fresh (nothing ran here)
            if entry is not None and self._dedup.get(entry.key) is entry:
                del self._dedup[entry.key]
            self.stats.inc(f"solves.{exc.code}")
            await self._send_error(conn, exc.code, str(exc), request_id=request_id)
            return
        finally:
            if request_id is not None:
                conn.jobs.pop(request_id, None)
        if entry is not None:
            # remember the outcome even if this socket is already dead:
            # the client's resend on a fresh connection replays it
            entry.record = record
        self.stats.latency.record(loop.time() - t0)
        self.stats.inc("solves.ok" if record.ok else f"solves.{record.status}")
        await self._send(conn, protocol.result_frame(request_id, record, max_report))

    # ------------------------------------------------------------------
    # small frames
    # ------------------------------------------------------------------
    async def _on_status(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        request_id = frame.get("id")
        if not isinstance(request_id, str):
            await self._send_error(conn, "bad_request", "status needs an 'id' string")
            return
        job_id = conn.jobs.get(request_id)
        state = self.bridge.state(job_id) if job_id is not None else "unknown"
        await self._send(conn, {"type": "status", "id": request_id, "state": state})

    async def _on_cancel(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        request_id = frame.get("id")
        if not isinstance(request_id, str):
            await self._send_error(conn, "bad_request", "cancel needs an 'id' string")
            return
        job_id = conn.jobs.get(request_id)
        cancelled = self.bridge.cancel(job_id) if job_id is not None else False
        state = self.bridge.state(job_id) if job_id is not None else "unknown"
        await self._send(
            conn,
            {
                "type": "status",
                "id": request_id,
                "state": state,
                "cancelled": cancelled,
            },
        )

    async def _on_checkpoint(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        """Report the latest resumable state of an in-flight solve.

        The reply carries the newest completed-window checkpoint (or
        null when the job is unknown, finished, or not resumable) --
        this is what the cluster router polls so it can fail a dying
        backend's solve over to a replica (docs/CLUSTER.md).
        """
        request_id = frame.get("id")
        if not isinstance(request_id, str):
            await self._send_error(
                conn, "bad_request", "checkpoint needs an 'id' string"
            )
            return
        job_id = conn.jobs.get(request_id)
        state = self.bridge.state(job_id) if job_id is not None else "unknown"
        ckpt = self.bridge.checkpoint(job_id) if job_id is not None else None
        await self._send(
            conn,
            {
                "type": "checkpoint",
                "id": request_id,
                "state": state,
                "checkpoint": ckpt.to_dict() if ckpt is not None else None,
            },
        )

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def _session_solve_batch(self, sid: str):
        """Service-backed solve backend for one session's solver.

        The returned callable runs on the bridge worker -- the only
        thread allowed to drive the blocking service -- so session
        solves (localized and full) share the scheduler, result cache,
        admission controller, and executor with ordinary ``solve``
        traffic.
        """
        from ..service.request import SolveRequest

        def solve_batch(jobs):
            requests = []
            for graph, config in jobs:
                requests.append(
                    SolveRequest(
                        graph=graph,
                        config=config,
                        job_id=f"{sid}-sess{next(self._session_seq)}",
                        label=f"session:{sid}",
                    )
                )
            for request in requests:
                self.service.submit(request)
            by_id = {r.job_id: r for r in self.service.run()}
            out = []
            for request in requests:
                record = by_id.get(request.job_id)
                if record is None or not record.ok or record.result is None:
                    reason = record.error if record is not None else "no record"
                    raise ServerError(f"session {sid!r} solve failed: {reason}")
                out.append(record.result)
            return out

        return solve_batch

    async def _on_open_session(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        rid = frame.get("id")
        if rid is not None and not isinstance(rid, str):
            await self._send_error(conn, "bad_request", "'id' must be a string")
            return
        if self._draining:
            self.stats.inc("rejects.draining")
            await self._send_error(
                conn, "draining", "server is draining", request_id=rid
            )
            return
        request_key = frame.get("request_id")
        # graph decode can be MiBs of base64+gzip+parsing: off the loop
        loop = asyncio.get_running_loop()
        try:
            sid, graph, config = await loop.run_in_executor(
                None, protocol.open_session_from_frame, frame
            )
        except ProtocolError as exc:
            self.stats.inc("rejects.bad_request")
            await self._send_error(conn, exc.code, str(exc), request_id=rid)
            return

        def fn():
            if sid in self.sessions:
                existing = self.sessions.get(sid)
                if (
                    request_key is not None
                    and getattr(existing, "open_request_id", None)
                    == request_key
                ):
                    # a duplicated or retried open of the same request:
                    # replay the existing session instead of failing
                    return existing.view
                raise SessionError(
                    f"session {sid!r} already exists", code="session_exists"
                )
            tracer = getattr(self.service, "tracer", None) or NULL_TRACER
            session = GraphSession(
                sid,
                graph,
                config,
                solve_batch=self._session_solve_batch(sid),
                dirty_threshold=self.config.session_dirty_threshold,
                max_localized=self.config.session_max_localized,
                tracer=tracer,
            )
            session.open_request_id = request_key
            self.sessions.create(session)
            return session.view

        await self._submit_session_op(conn, rid, fn, "session-opened")

    async def _on_mutate(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        rid = frame.get("id")
        if rid is not None and not isinstance(rid, str):
            await self._send_error(conn, "bad_request", "'id' must be a string")
            return
        try:
            sid, inserts, deletes = protocol.mutation_from_frame(frame)
            request_key = protocol.validate_request_key(frame)
        except ProtocolError as exc:
            self.stats.inc("rejects.bad_request")
            await self._send_error(conn, exc.code, str(exc), request_id=rid)
            return
        if self._draining:
            self.stats.inc("rejects.draining")
            await self._send_error(
                conn, "draining", "server is draining", request_id=rid
            )
            return
        # mutations trigger solves, so they draw from the same
        # per-connection rate budget as solve frames
        ok, retry_after = conn.bucket.try_acquire()
        if not ok:
            self.stats.inc("rejects.rate_limited")
            await self._send_error(
                conn,
                "rate_limited",
                f"connection rate limit "
                f"({self.config.rate:g}/s, burst {self.config.burst}) exceeded",
                request_id=rid,
                retry_after_s=retry_after,
            )
            return

        def fn():
            return self.sessions.get(sid).apply(
                inserts, deletes, request_id=request_key
            )

        await self._submit_session_op(conn, rid, fn, "mutated")

    async def _on_subscribe(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        rid = frame.get("id")
        if not isinstance(rid, str) or not rid:
            await self._send_error(
                conn,
                "bad_request",
                "subscribe needs an 'id' string "
                "(update frames are stamped with it)",
            )
            return
        try:
            sid = protocol.validate_session_id(frame)
        except ProtocolError as exc:
            await self._send_error(conn, exc.code, str(exc), request_id=rid)
            return
        try:
            session = self.sessions.get(sid)
        except SessionError as exc:
            self.stats.inc(f"sessions.{exc.code}")
            await self._send_error(conn, exc.code, str(exc), request_id=rid)
            return
        # snapshot + register under the push lock so the snapshot and
        # later pushes cannot reorder on this connection
        lock = self._push_locks.setdefault(sid, asyncio.Lock())
        async with lock:
            view = session.view
            self._subscribers.setdefault(sid, []).append(
                _Subscriber(conn, rid, view.epoch)
            )
            conn.subs.add(sid)
            self.stats.inc("sessions.subscribes")
            await self._send(conn, protocol.session_frame("update", view, rid))

    async def _on_close_session(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        rid = frame.get("id")
        if rid is not None and not isinstance(rid, str):
            await self._send_error(conn, "bad_request", "'id' must be a string")
            return
        try:
            sid = protocol.validate_session_id(frame)
        except ProtocolError as exc:
            await self._send_error(conn, exc.code, str(exc), request_id=rid)
            return

        def fn():
            return self.sessions.close(sid).view

        await self._submit_session_op(
            conn, rid, fn, "session-closed", closing=True
        )

    async def _submit_session_op(
        self, conn: _Conn, rid, fn, reply_type: str, closing: bool = False
    ) -> None:
        """Queue one session operation on the bridge worker.

        The worker queue is FIFO, which is what serializes operations
        per session (epochs apply in arrival order) while different
        sessions' operations interleave with each other and with solve
        batches.
        """
        try:
            future = self.bridge.submit_session(fn, label=reply_type)
        except BridgeQueueFull as exc:
            self.stats.inc("rejects.server_busy")
            await self._send_error(
                conn,
                "server_busy",
                str(exc),
                request_id=rid,
                retry_after_s=0.1,
            )
            return
        except ServerError as exc:
            self.stats.inc(f"rejects.{exc.code}")
            await self._send_error(conn, exc.code, str(exc), request_id=rid)
            return
        loop = asyncio.get_running_loop()
        task = loop.create_task(
            self._await_session_op(conn, rid, future, reply_type, closing)
        )
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    async def _await_session_op(
        self, conn: _Conn, rid, future, reply_type: str, closing: bool
    ) -> None:
        try:
            view = await asyncio.wrap_future(future)
        except SessionError as exc:
            self.stats.inc(f"sessions.{exc.code}")
            await self._send_error(conn, exc.code, str(exc), request_id=rid)
            return
        except ServerError as exc:
            self.stats.inc(f"sessions.{exc.code}")
            await self._send_error(conn, exc.code, str(exc), request_id=rid)
            return
        except BaseException as exc:
            log.exception("session %s operation failed", reply_type)
            await self._send_error(
                conn,
                "internal",
                f"session operation failed: {exc}",
                request_id=rid,
            )
            return
        self.stats.inc(f"sessions.{reply_type}")
        await self._send(conn, protocol.session_frame(reply_type, view, rid))
        if closing:
            await self._notify_closed(view)
        else:
            await self._push_updates(view.session)

    async def _push_updates(self, sid: str) -> None:
        """Push the session's *current* view to lagging subscribers.

        Runs under the per-session push lock and always reads the
        newest view, so concurrent mutation completions collapse into
        monotone per-subscriber epoch delivery (a later pusher finds
        everything already delivered and skips).
        """
        subs = self._subscribers.get(sid)
        if not subs:
            return
        lock = self._push_locks.setdefault(sid, asyncio.Lock())
        async with lock:
            try:
                session = self.sessions.get(sid)
            except SessionError:
                return  # closed while this push was queued
            view = session.view
            for sub in list(subs):
                if sub.conn.closed:
                    subs.remove(sub)
                    continue
                if view.epoch <= sub.last_epoch:
                    continue
                sub.last_epoch = view.epoch
                self.stats.inc("sessions.updates")
                await self._send(
                    sub.conn, protocol.session_frame("update", view, sub.sub_id)
                )

    async def _notify_closed(self, view) -> None:
        """Send every subscriber a final ``closed`` update, then forget."""
        sid = view.session
        self._push_locks.pop(sid, None)
        for sub in self._subscribers.pop(sid, []):
            sub.conn.subs.discard(sid)
            if sub.conn.closed:
                continue
            frame = protocol.session_frame("update", view, sub.sub_id)
            frame["closed"] = True
            self.stats.inc("sessions.updates")
            await self._send(sub.conn, frame)

    def _stats_frame(self) -> Dict[str, Any]:
        tracer = getattr(self.service, "tracer", None)
        if isinstance(tracer, CounterTracer):
            counters = tracer.counters_snapshot()
        else:
            counters = dict(getattr(tracer, "counters", {}) or {})
        return {
            "type": "stats",
            "server": self.stats.snapshot(
                connections_open=len(self._conns),
                queue_depth=self.bridge.queue_depth,
                in_flight=self.bridge.in_flight,
                draining=self._draining,
                dedup_entries=len(self._dedup),
                sessions_open=len(self.sessions),
                subscribers=sum(
                    len(subs) for subs in self._subscribers.values()
                ),
            ),
            "service": self.service.stats_snapshot(),
            "counters": counters,
        }

    # ------------------------------------------------------------------
    # writing and teardown
    # ------------------------------------------------------------------
    async def _send(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        if conn.closed:
            return
        data = protocol.encode_frame(frame)
        try:
            async with conn.write_lock:
                conn.writer.write(data)
                # backpressure point: a slow client stalls only this
                # coroutine, never the loop or other connections
                await conn.writer.drain()
            self.stats.inc("frames.out")
        except (ConnectionError, OSError):
            conn.closed = True

    async def _send_error(
        self,
        conn: _Conn,
        code: str,
        message: str,
        request_id: Optional[str] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        self.stats.inc("errors.sent")
        await self._send(
            conn, protocol.error_frame(code, message, request_id, retry_after_s)
        )

    async def _oversized(self, conn: _Conn) -> None:
        self.stats.inc("rejects.frame_too_large")
        await self._send_error(
            conn,
            "frame_too_large",
            f"frame exceeds max_frame_bytes={self.config.max_frame_bytes}",
        )
        await self._close_conn(conn)

    async def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            self._conns.discard(conn)
            return
        conn.closed = True
        self._conns.discard(conn)
        with contextlib.suppress(ConnectionError, OSError):
            conn.writer.close()

    async def _teardown_conn(self, conn: _Conn) -> None:
        """Disconnect cleanup: cancel this connection's queued jobs.

        A mid-solve disconnect must not wedge a worker: still-queued
        jobs are cancelled outright; a job already inside the service
        batch runs to completion (its result frame write is a no-op on
        the closed socket) and its worker returns to the pool.
        """
        for job_id in list(conn.jobs.values()):
            if self.bridge.cancel(job_id):
                self.stats.inc("solves.cancelled_on_disconnect")
        # subscriptions die with the socket; the sessions themselves
        # stay resident (a reconnecting client re-subscribes by id)
        for sid in list(conn.subs):
            subs = self._subscribers.get(sid)
            if subs is not None:
                subs[:] = [s for s in subs if s.conn is not conn]
                if not subs:
                    del self._subscribers[sid]
        conn.subs.clear()
        for task in list(conn.tasks):
            task.cancel()
        await self._close_conn(conn)


class ServerThread:
    """Run a :class:`SolveServer` on a background thread.

    The in-process harness used by the test suite and the latency
    benchmark: starts the server's event loop on a daemon thread,
    waits until the port is bound, and drains it on :meth:`stop`.

    >>> handle = ServerThread(SolveService(devices=2))
    >>> handle.start()
    >>> client = SolveClient(port=handle.port)
    ...
    >>> handle.stop()
    """

    def __init__(self, service, config: Optional[ServerConfig] = None) -> None:
        if config is None:
            config = ServerConfig(port=0)
        self.server = SolveServer(service, config)
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="solve-server", daemon=True
        )

    def _run(self) -> None:
        async def _main() -> None:
            await self.server.start()
            self._ready.set()
            await self.server.serve_until_drained()

        try:
            asyncio.run(_main())
        finally:
            self._ready.set()  # unblock start() even on bind failure

    def start(self, timeout_s: float = 10.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("server thread failed to start in time")
        if self.server.port is None:
            raise RuntimeError("server failed to bind (see log)")
        return self

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def stop(self, timeout_s: float = 30.0) -> None:
        loop = self.server._loop
        if loop is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(self.server.begin_drain)
        self._thread.join(timeout_s)
        self.server.bridge.stop(timeout_s)

    def kill(self, timeout_s: float = 10.0) -> None:
        """Simulate a crash: abort all sockets, skip the drain entirely.

        Used by the cluster chaos tests -- peers observe connection
        resets exactly as they would for a SIGKILL'd ``repro serve``
        process. The bridge worker (a daemon thread) may still be
        mid-solve; its results go nowhere.
        """
        loop = self.server._loop
        if loop is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(self.server.kill)
        self._thread.join(timeout_s)
