"""The worker-thread bridge between asyncio and the SolveService.

A :class:`~repro.service.SolveService` is a blocking, batch-oriented
API: ``submit`` then ``run()`` drains everything through the
scheduler, cache, admission controller, and executor. The event loop
must never sit inside that call, so the bridge owns one dedicated
host thread that *micro-batches*: it sleeps until at least one request
is queued, then takes everything queued at that instant, runs it as
one service batch, and completes each request's
:class:`concurrent.futures.Future` with its
:class:`~repro.service.request.JobRecord`.

Micro-batching is not just an adapter trick -- it is what makes the
network front-end compose with the rest of the stack: requests that
arrive together share one scheduler pass (so ``sef`` ordering and the
result cache see them as one workload) and drain through the
service's configured executor, so ``repro serve --workers N`` gets
genuine multi-device overlap from the PR-4 threaded executor with no
new concurrency machinery here.

The bounded queue is the server's backpressure point, layered *in
front of* the service's admission controller: ``submit`` raises
:class:`BridgeQueueFull` when ``max_queue`` requests are already
waiting, which the server answers with a retriable ``server_busy``
error frame. Draining (SIGTERM / ``shutdown`` frame) lets the
in-flight batch finish while every queued request fails fast with a
retriable ``draining`` error.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ServerError
from ..log import get_logger
from ..service.request import SolveRequest

__all__ = ["SolveBridge", "BridgeQueueFull"]

log = get_logger("server.bridge")

#: job states reported by :meth:`SolveBridge.state`
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
UNKNOWN = "unknown"


class BridgeQueueFull(Exception):
    """The bounded bridge queue is at capacity (backpressure signal)."""

    def __init__(self, depth: int) -> None:
        self.depth = depth
        super().__init__(f"bridge queue full at {depth} request(s)")


@dataclass
class _Pending:
    request: SolveRequest
    future: "Future"
    cancelled: bool = field(default=False)


@dataclass
class _SessionJob:
    """One queued session operation: a callable run on the worker.

    Session jobs (open / mutate / close, see docs/STREAMING.md) run on
    the same worker thread as solve batches -- the only thread allowed
    to drive the blocking service -- *after* the solve batch taken in
    the same wakeup. The queue is FIFO, which serializes operations
    per session (epochs apply in arrival order) while operations of
    different sessions naturally interleave.
    """

    fn: "object"
    future: "Future"
    label: str = ""
    cancelled: bool = field(default=False)


class SolveBridge:
    """Micro-batching worker-thread bridge over one ``SolveService``."""

    def __init__(self, service, max_queue: int = 64) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.service = service
        self.max_queue = max_queue
        self._cond = threading.Condition()
        self._queue: List[_Pending] = []
        self._session_queue: List[_SessionJob] = []
        self._states: Dict[str, str] = {}
        #: job id -> newest completed-window checkpoint (in-flight only)
        self._checkpoints: Dict[str, object] = {}
        self._in_flight = 0
        self._draining = False
        self._stopped = False
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(
            target=self._run, name="solve-bridge", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # front-end API (called from the event loop)
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> "Future":
        """Queue one request; its future resolves to a JobRecord.

        Raises :class:`BridgeQueueFull` when the bounded queue is at
        capacity and :class:`~repro.errors.ServerError` (code
        ``draining``) once a drain has begun.
        """
        future: Future = Future()
        with self._cond:
            if self._draining or self._stopped:
                raise ServerError(
                    "server is draining; retry against another replica",
                    code="draining",
                    retriable=True,
                )
            if len(self._queue) >= self.max_queue:
                raise BridgeQueueFull(len(self._queue))
            if request.job_id is None:
                raise ValueError("bridge requests need a pre-assigned job_id")
            # expose the newest completed-window checkpoint of this job
            # while it is in flight (the ``checkpoint`` wire frame and,
            # through it, the cluster router's failover shipping)
            job_id = request.job_id
            if request.checkpoint_sink is None:
                request.checkpoint_sink = (
                    lambda ckpt, _id=job_id: self._store_checkpoint(_id, ckpt)
                )
            self._queue.append(_Pending(request, future))
            self._states[request.job_id] = QUEUED
            self._idle.clear()
            self._cond.notify()
        return future

    def submit_session(self, fn, label: str = "") -> "Future":
        """Queue one session operation; its future gets ``fn()``'s result.

        ``fn`` is a zero-argument callable executed on the worker
        thread, where it may drive the service directly (the session's
        localized and full solves). Shares the queue bound and the
        drain discipline with solve requests.
        """
        future: Future = Future()
        with self._cond:
            if self._draining or self._stopped:
                raise ServerError(
                    "server is draining; retry against another replica",
                    code="draining",
                    retriable=True,
                )
            if len(self._session_queue) >= self.max_queue:
                raise BridgeQueueFull(len(self._session_queue))
            self._session_queue.append(_SessionJob(fn, future, label))
            self._idle.clear()
            self._cond.notify()
        return future

    def _store_checkpoint(self, job_id: str, ckpt) -> None:
        """Record the latest checkpoint (called from the worker thread)."""
        with self._cond:
            self._checkpoints[job_id] = ckpt

    def checkpoint(self, job_id: str):
        """The newest completed-window checkpoint of an in-flight job.

        Returns a :class:`~repro.core.checkpoint.SearchCheckpoint` or
        None (job unknown, finished, or not resumable). Checkpoints are
        dropped once the job completes -- a finished job's result is
        the better artefact.
        """
        with self._cond:
            return self._checkpoints.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; running jobs cannot be stopped.

        Returns True when the job was removed from the queue (its
        future fails with a ``cancelled`` ServerError); False when it
        is already running, finished, or unknown.
        """
        with self._cond:
            for pending in self._queue:
                if pending.request.job_id == job_id and not pending.cancelled:
                    pending.cancelled = True
                    self._states[job_id] = CANCELLED
                    pending.future.set_exception(
                        ServerError(
                            f"job {job_id} cancelled before it ran",
                            code="cancelled",
                        )
                    )
                    return True
        return False

    def state(self, job_id: str) -> str:
        """``queued`` / ``running`` / ``done`` / ``cancelled`` / ``unknown``."""
        with self._cond:
            return self._states.get(job_id, UNKNOWN)

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Requests inside the currently-running service batch."""
        with self._cond:
            return self._in_flight

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Reject everything queued, let the in-flight batch finish.

        Blocks until the worker thread is idle (or ``timeout_s``
        elapses); returns True when the drain completed in time. Safe
        to call from any thread except the worker itself.
        """
        with self._cond:
            self._draining = True
            for pending in self._queue:
                if not pending.cancelled:
                    pending.cancelled = True
                    self._states[pending.request.job_id] = CANCELLED
                    pending.future.set_exception(
                        ServerError(
                            "server is draining; queued job rejected",
                            code="draining",
                            retriable=True,
                        )
                    )
            self._queue.clear()
            for job in self._session_queue:
                if not job.cancelled:
                    job.cancelled = True
                    if not job.future.done():
                        job.future.set_exception(
                            ServerError(
                                "server is draining; queued session "
                                "operation rejected",
                                code="draining",
                                retriable=True,
                            )
                        )
            self._session_queue.clear()
            self._cond.notify()
        return self._idle.wait(timeout_s)

    def stop(self, timeout_s: Optional[float] = 10.0) -> None:
        """Drain, then terminate the worker thread."""
        self.drain(timeout_s)
        with self._cond:
            self._stopped = True
            self._cond.notify()
        self._thread.join(timeout_s)

    # ------------------------------------------------------------------
    # worker thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while (
                    not self._queue
                    and not self._session_queue
                    and not self._stopped
                ):
                    self._idle.set()
                    self._cond.wait()
                if self._stopped and not self._queue:
                    self._idle.set()
                    return
                session_jobs = [
                    j for j in self._session_queue if not j.cancelled
                ]
                self._session_queue.clear()
                batch = []
                for pending in self._queue:
                    if pending.cancelled:
                        continue
                    deadline = getattr(pending.request, "deadline", None)
                    if deadline is not None and deadline.expired:
                        # the client's budget ran out while the job sat
                        # queued: fail it retriable *now* instead of
                        # computing an answer nobody is waiting for
                        self._states[pending.request.job_id] = DONE
                        pending.future.set_exception(
                            ServerError(
                                f"job {pending.request.job_id} missed its "
                                f"deadline while queued",
                                code="deadline_exceeded",
                                retriable=True,
                                exit_code=3,
                            )
                        )
                        continue
                    batch.append(pending)
                self._queue.clear()
                self._in_flight = len(batch) + len(session_jobs)
                for pending in batch:
                    self._states[pending.request.job_id] = RUNNING
            if not batch and not session_jobs:
                continue
            try:
                if batch:
                    self._run_batch(batch)
                # session operations run after the solve batch taken in
                # the same wakeup, in FIFO order (per-session serialization)
                for job in session_jobs:
                    if job.future.done():
                        # the waiter vanished (connection teardown
                        # cancelled the wrapped future): skip the work;
                        # a retry re-submits with the same request_id
                        continue
                    try:
                        result = job.fn()
                    except BaseException as exc:
                        if not job.future.done():
                            job.future.set_exception(exc)
                    else:
                        if not job.future.done():
                            job.future.set_result(result)
            finally:
                with self._cond:
                    self._in_flight = 0

    def _run_batch(self, batch: List[_Pending]) -> None:
        try:
            self._run_batch_inner(batch)
        finally:
            # finished jobs no longer expose a resume point
            with self._cond:
                for pending in batch:
                    self._checkpoints.pop(pending.request.job_id, None)

    def _run_batch_inner(self, batch: List[_Pending]) -> None:
        by_id = {p.request.job_id: p for p in batch}
        try:
            for pending in batch:
                self.service.submit(pending.request)
            records = self.service.run()
        except BaseException as exc:  # a service-layer invariant broke
            log.exception("bridge batch of %d job(s) failed", len(batch))
            for pending in batch:
                self._states[pending.request.job_id] = DONE
                if not pending.future.done():
                    pending.future.set_exception(
                        ServerError(f"internal service failure: {exc}")
                    )
            return
        matched = 0
        for record in records:
            pending = by_id.get(record.job_id)
            if pending is None:
                continue  # a record from an earlier, unrelated run
            self._states[record.job_id] = DONE
            if not pending.future.done():
                pending.future.set_result(record)
                matched += 1
        if matched != len(batch):  # pragma: no cover - defensive
            for pending in batch:
                if not pending.future.done():
                    self._states[pending.request.job_id] = DONE
                    pending.future.set_exception(
                        ServerError("service returned no record for this job")
                    )
