"""Synchronous ``repro-wire/1`` client with retry and backoff.

:class:`SolveClient` is the blocking counterpart of the asyncio
server: plain sockets, one request at a time, used by the ``repro
client`` CLI verbs, the test suite, and the latency benchmark. Two
failure classes retry automatically with exponential backoff:

* **connection failures** (refused, reset, server restarting) --
  the client reconnects and replays the handshake;
* **retriable error frames** (``rate_limited``, ``server_busy``,
  ``draining``, ``deadline_exceeded``) -- the client sleeps
  ``retry_after_s`` when the frame names one (clamped to
  ``backoff_max_s``), else the current backoff, and resends the
  request.

Non-retriable error frames raise :class:`~repro.errors.ServerError`
immediately. Every retry sleep is multiplied by seeded jitter in
``[0.5, 1.0)`` so a fleet of clients knocked over by the same fault
does not thunder back in lockstep.

Retried ``solve`` frames are *idempotent at the server*: each carries
a client-generated ``request_id`` that is reused verbatim across
resends, so a retry after an ambiguous failure (reply lost on the
wire) joins or replays the original execution instead of computing it
again -- see docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from typing import Any, Dict, Optional

from ..errors import ProtocolError, ServerError
from ..log import get_logger
from . import protocol

__all__ = ["SolveClient"]

log = get_logger("server.client")


def _parse_address(addr) -> "tuple":
    """Normalise ``"host:port"`` / ``(host, port)`` into a tuple."""
    if isinstance(addr, (tuple, list)) and len(addr) == 2:
        return str(addr[0]), int(addr[1])
    if isinstance(addr, str):
        host, sep, port = addr.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"address {addr!r} is not of the form host:port"
            )
        return host or "127.0.0.1", int(port)
    raise TypeError(f"cannot parse {addr!r} as a server address")


class SolveClient:
    """Blocking client for one solve server -- or a rotation of several.

    Parameters
    ----------
    host / port:
        Server address (``repro serve`` defaults). Ignored when
        ``addresses`` is given.
    addresses:
        Optional list of server addresses (``"host:port"`` strings or
        ``(host, port)`` tuples). The client talks to one at a time
        and rotates to the next on a connection failure or a
        ``draining`` reject -- the building block the cluster router's
        clients and ``repro client --addr`` use. A single-entry list
        behaves exactly like ``host``/``port``.
    timeout_s:
        Socket timeout applied to every read: a solve must answer
        within this budget (set it above your largest expected solve).
    retries:
        How many times a retriable failure (connection error or
        retriable error frame) is retried before giving up.
    backoff_s / backoff_max_s:
        Initial and maximum sleep between retries; doubles each
        attempt, and a server-supplied ``retry_after_s`` overrides it
        (clamped to ``backoff_max_s`` so a confused server cannot
        park the client for minutes).
    jitter_seed:
        Seeds the backoff jitter stream (every retry sleep is scaled
        by a draw from ``[0.5, 1.0)``). None seeds from the OS --
        pass an int for reproducible retry timing in tests.

    Usable as a context manager; :meth:`connect` is implicit on first
    use.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        timeout_s: float = 120.0,
        retries: int = 5,
        backoff_s: float = 0.2,
        backoff_max_s: float = 3.0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        addresses: Optional[list] = None,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if addresses:
            self.addresses = [_parse_address(a) for a in addresses]
        else:
            self.addresses = [(host, int(port))]
        self._addr_index = 0
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.max_frame_bytes = max_frame_bytes
        self.server_hello: Optional[Dict[str, Any]] = None
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._seq = 0
        self._rng = random.Random(jitter_seed)
        #: per-instance prefix keeping request_ids globally unique even
        #: when several clients share one server's dedup table
        self._client_tag = uuid.uuid4().hex[:10]

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def host(self) -> str:
        """Host of the address currently targeted."""
        return self.addresses[self._addr_index][0]

    @property
    def port(self) -> int:
        """Port of the address currently targeted."""
        return self.addresses[self._addr_index][1]

    def _rotate(self) -> bool:
        """Advance to the next configured address; True when it moved."""
        if len(self.addresses) < 2:
            return False
        self.close()
        self._addr_index = (self._addr_index + 1) % len(self.addresses)
        log.debug("rotated to %s:%d", self.host, self.port)
        return True

    def connect(self) -> Dict[str, Any]:
        """Connect (with backoff on refusal) and complete the handshake.

        With several addresses configured, each failed attempt rotates
        to the next one before backing off, so a single dead server
        never exhausts the retry budget. Returns the server's hello
        frame.
        """
        if self._sock is not None:
            assert self.server_hello is not None
            return self.server_hello
        backoff = self.backoff_s
        for attempt in range(self.retries + 1):
            hello = None
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
                self._file = self._sock.makefile("rb")
                self._send(
                    {
                        "type": "hello",
                        "protocol": protocol.PROTOCOL,
                        "client": "repro-client",
                    }
                )
                hello = self._recv()
            except (ServerError, ProtocolError):
                # a server that *answered* with an error, or spoke
                # garbage, is not a transient connect failure
                self.close()
                raise
            except OSError as exc:
                # refused outright, or (behind a flaky hop) accepted
                # and then severed mid-handshake -- both retriable
                self.close()
                if attempt >= self.retries:
                    targets = ", ".join(
                        f"{h}:{p}" for h, p in self.addresses
                    )
                    raise ServerError(
                        f"cannot connect to {targets}: {exc}",
                        code="unreachable",
                        retriable=True,
                    ) from exc
                log.debug(
                    "connect to %s:%d failed (%s); retrying in %.2fs",
                    self.host, self.port, exc, backoff,
                )
                self._rotate()
                time.sleep(self._jitter(backoff))
                backoff = min(backoff * 2, self.backoff_max_s)
                continue
            break
        if hello.get("type") != "hello":
            self.close()
            raise ProtocolError(
                f"expected a hello frame, got {hello.get('type')!r}"
            )
        if hello.get("protocol") != protocol.PROTOCOL:
            self.close()
            raise ProtocolError(
                f"server speaks {hello.get('protocol')!r}, "
                f"client needs {protocol.PROTOCOL}",
                code="unsupported_protocol",
            )
        self.server_hello = hello
        return hello

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self.server_hello = None

    def __enter__(self) -> "SolveClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # wire primitives
    # ------------------------------------------------------------------
    def _send(self, frame: Dict[str, Any]) -> None:
        assert self._sock is not None
        data = protocol.encode_frame(frame)
        if len(data) > self.max_frame_bytes:
            raise ProtocolError(
                f"frame of {len(data)} B exceeds the "
                f"{self.max_frame_bytes} B limit",
                code="frame_too_large",
            )
        self._sock.sendall(data)

    def _recv(self, expect_id: Optional[str] = None) -> Dict[str, Any]:
        """Read the next frame addressed to us.

        With ``expect_id`` set, frames whose ``id`` differs are
        *skipped*, not errors: a flaky network may deliver a frame
        twice (the chaos proxy does so on purpose), and a duplicated
        reply to an earlier request must not be mistaken for the
        answer to this one.
        """
        assert self._file is not None
        while True:
            line = self._file.readline(self.max_frame_bytes + 1)
            if not line:
                raise ConnectionError("server closed the connection")
            if not line.endswith(b"\n"):
                if len(line) > self.max_frame_bytes:
                    raise ProtocolError(
                        "server sent an oversized frame", code="frame_too_large"
                    )
                # a partial line at EOF: the connection died mid-frame
                # (wire cut / truncation); retriable, not a protocol bug
                raise ConnectionError("connection lost mid-frame")
            frame = protocol.decode_frame(line)
            if expect_id is not None and frame.get("id") != expect_id:
                log.debug(
                    "skipping stale frame id=%r (awaiting %r)",
                    frame.get("id"), expect_id,
                )
                continue
            if frame.get("type") == "error":
                retriable, exit_code = protocol.ERROR_CODES.get(
                    frame.get("code", "internal"), (False, 1)
                )
                err = ServerError(
                    frame.get("message", "server error"),
                    code=frame.get("code", "internal"),
                    retriable=bool(frame.get("retriable", retriable)),
                    exit_code=int(frame.get("exit_code", exit_code)),
                )
                err.retry_after_s = frame.get("retry_after_s")
                raise err
            return frame

    def _jitter(self, delay: float) -> float:
        """Scale a retry sleep by a seeded draw from ``[0.5, 1.0)``."""
        return delay * (0.5 + 0.5 * self._rng.random())

    def _round_trip(
        self, frame: Dict[str, Any], deadline_at: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one frame and read one reply, retrying retriable failures.

        Connection failures and ``draining`` rejects rotate to the
        next configured address (when there is one) before retrying;
        other retriable error frames (``server_busy``,
        ``rate_limited``) stay on the same server, which asked for
        patience rather than a different replica.

        ``deadline_at`` (a ``time.perf_counter()`` instant) bounds the
        whole exchange: each attempt ships the *remaining* budget as
        the frame's ``deadline_s`` so every hop downstream knows how
        long the answer is still wanted, and once the budget is spent
        the client fails locally instead of sending a doomed request.
        """
        backoff = self.backoff_s
        for attempt in range(self.retries + 1):
            if deadline_at is not None:
                remaining = deadline_at - time.perf_counter()
                if remaining <= 0:
                    raise ServerError(
                        "client deadline budget exhausted before "
                        f"attempt {attempt + 1}",
                        code="deadline_exceeded",
                        retriable=True,
                        exit_code=3,
                    )
                frame["deadline_s"] = round(remaining, 6)
            try:
                self.connect()
                self._send(frame)
                return self._recv(expect_id=frame.get("id"))
            except (ConnectionError, socket.timeout, OSError) as exc:
                self.close()
                if attempt >= self.retries:
                    raise ServerError(
                        f"connection to {self.host}:{self.port} failed: {exc}",
                        code="unreachable",
                        retriable=True,
                    ) from exc
                self._rotate()
                delay = self._jitter(backoff)
            except ServerError as exc:
                if not exc.retriable or attempt >= self.retries:
                    raise
                retry_after = getattr(exc, "retry_after_s", None)
                if retry_after is not None:
                    # trust but bound: a server hint never parks the
                    # client longer than its own configured ceiling.
                    # No jitter here -- the hint says when capacity
                    # exists; retrying *earlier* would only burn an
                    # attempt on a guaranteed second reject
                    delay = min(float(retry_after), self.backoff_max_s)
                else:
                    delay = self._jitter(backoff)
                if exc.code == "draining" and self._rotate():
                    delay = 0.0
            if deadline_at is not None:
                delay = min(delay, max(deadline_at - time.perf_counter(), 0.0))
            log.debug(
                "request retrying in %.2fs (attempt %d/%d)",
                delay, attempt + 1, self.retries,
            )
            time.sleep(delay)
            backoff = min(backoff * 2, self.backoff_max_s)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def solve(
        self,
        graph,
        config: Optional[Dict[str, Any]] = None,
        problem: Optional[str] = None,
        timeout_s: Optional[float] = None,
        label: str = "",
        max_report: Optional[int] = None,
        checkpoint: Optional[Dict[str, Any]] = None,
        deadline_s: Optional[float] = None,
        **config_kwargs: Any,
    ) -> Dict[str, Any]:
        """Solve one graph remotely; returns the ``result`` frame.

        ``graph`` is a :class:`~repro.graph.csr.CSRGraph` (shipped
        gzip-compressed inline) or a string the *server* resolves (a
        suite dataset name or a server-side path). ``config`` /
        ``config_kwargs`` mirror
        :meth:`repro.service.SolveService.submit_graph`. ``problem``
        selects the problem kind (``"max-clique"``,
        ``"k-clique-count"`` -- pair it with ``k=...`` --
        ``"maximal-enum"``); it is checked against the kinds the
        server's hello advertised, so asking for one the server lacks
        raises a non-retriable ``unsupported_problem``
        :class:`~repro.errors.ServerError` without a round trip.

        ``checkpoint`` optionally ships a serialised
        ``repro-checkpoint/1`` dict for the server to resume the
        windowed max-clique search from (the cluster router's failover
        path; also handy for tests).

        ``deadline_s`` is an end-to-end budget in seconds for the
        whole exchange, retries included. The remaining budget rides
        on the wire as ``deadline_s`` (re-computed per attempt), so
        the router, server queue, and solver all stop working on the
        request the moment nobody is waiting for the answer; a spent
        budget raises a retriable ``deadline_exceeded``
        :class:`~repro.errors.ServerError`.

        The returned frame's ``record`` is the JSON job record,
        ``cliques`` the clique membership rows (absent for counting
        kinds), and ``exit_code`` the suggested CLI status. A
        non-``ok`` record does *not* raise -- callers inspect the
        record just as batch callers do.
        """
        if config is not None and config_kwargs:
            raise ValueError(
                "pass either a config dict or keyword options, not both"
            )
        spec = dict(config) if config is not None else dict(config_kwargs)
        if problem is not None:
            hello = self.connect()
            advertised = hello.get("problems")
            if isinstance(advertised, list) and problem not in advertised:
                raise ServerError(
                    f"server does not solve problem kind {problem!r} "
                    f"(advertised: {advertised})",
                    code="unsupported_problem",
                    retriable=False,
                )
        self._seq += 1
        frame: Dict[str, Any] = {
            "type": "solve",
            "id": f"req-{self._seq}",
            # the idempotency key: reused verbatim by every retry of
            # this call, so resends dedup server-side instead of
            # executing twice
            "request_id": f"{self._client_tag}-{self._seq}",
            "graph": protocol.encode_graph(graph),
        }
        if problem is not None:
            frame["problem"] = problem
        if spec:
            frame["config"] = spec
        if timeout_s is not None:
            frame["timeout_s"] = timeout_s
        if label:
            frame["label"] = label
        if max_report is not None:
            frame["max_report"] = max_report
        if checkpoint is not None:
            frame["checkpoint"] = checkpoint
        deadline_at = None
        if deadline_s is not None:
            deadline_at = time.perf_counter() + float(deadline_s)
        reply = self._round_trip(frame, deadline_at=deadline_at)
        if reply.get("type") != "result":
            raise ProtocolError(
                f"expected a result frame, got {reply.get('type')!r}"
            )
        return reply

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        graph,
        session: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        deadline_s: Optional[float] = None,
        **config_kwargs: Any,
    ) -> Dict[str, Any]:
        """Open a resident graph session; returns the ``session-opened`` frame.

        The session id is client-chosen (the cluster router pins the
        session to a backend by hashing it); one is generated when not
        given -- read it back from the returned frame's ``session``.
        The open carries a ``request_id``, so a retry after an
        ambiguous failure re-attaches to the session the first
        delivery created instead of failing with ``session_exists``.
        """
        if config is not None and config_kwargs:
            raise ValueError(
                "pass either a config dict or keyword options, not both"
            )
        spec = dict(config) if config is not None else dict(config_kwargs)
        hello = self.connect()
        if not hello.get("streaming"):
            raise ServerError(
                "server does not speak streaming sessions",
                code="unsupported_protocol",
                retriable=False,
            )
        self._seq += 1
        if session is None:
            session = f"sess-{self._client_tag}-{self._seq}"
        frame: Dict[str, Any] = {
            "type": "open-session",
            "id": f"req-{self._seq}",
            "request_id": f"{self._client_tag}-{self._seq}",
            "session": session,
            "graph": protocol.encode_graph(graph),
        }
        if spec:
            frame["config"] = spec
        deadline_at = None
        if deadline_s is not None:
            deadline_at = time.perf_counter() + float(deadline_s)
        reply = self._round_trip(frame, deadline_at=deadline_at)
        if reply.get("type") != "session-opened":
            raise ProtocolError(
                f"expected a session-opened frame, got {reply.get('type')!r}"
            )
        return reply

    def mutate(
        self,
        session: str,
        insert=(),
        delete=(),
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Apply one edge mutation batch; returns the ``mutated`` frame.

        Each call stamps a fresh ``request_id`` reused verbatim by
        every retry, so resends replay the recorded epoch view instead
        of mutating twice (the session-level idempotency the chaos
        suite exercises).
        """
        self._seq += 1
        frame: Dict[str, Any] = {
            "type": "mutate",
            "id": f"req-{self._seq}",
            "request_id": f"{self._client_tag}-{self._seq}",
            "session": session,
        }
        if insert:
            frame["insert"] = [[int(u), int(v)] for u, v in insert]
        if delete:
            frame["delete"] = [[int(u), int(v)] for u, v in delete]
        deadline_at = None
        if deadline_s is not None:
            deadline_at = time.perf_counter() + float(deadline_s)
        reply = self._round_trip(frame, deadline_at=deadline_at)
        if reply.get("type") != "mutated":
            raise ProtocolError(
                f"expected a mutated frame, got {reply.get('type')!r}"
            )
        return reply

    def close_session(self, session: str) -> Dict[str, Any]:
        """Close a session; returns the ``session-closed`` frame."""
        self._seq += 1
        reply = self._round_trip(
            {
                "type": "close-session",
                "id": f"req-{self._seq}",
                "session": session,
            }
        )
        if reply.get("type") != "session-closed":
            raise ProtocolError(
                f"expected a session-closed frame, got {reply.get('type')!r}"
            )
        return reply

    def subscribe(self, session: str):
        """Generator of epoch-stamped ``update`` frames for one session.

        The first yielded frame is the current-state snapshot; each
        later one reflects a newer epoch (delivery is monotone per
        subscriber). Ends after a frame with ``closed: true`` (the
        session was closed server-side).

        Subscribe on a **dedicated client instance**: updates arrive
        unsolicited, and any other request's reply matching on this
        connection would discard them. The generator blocks in the
        socket read between updates (bounded by ``timeout_s``).
        """
        self.connect()
        self._seq += 1
        sub_id = f"req-{self._seq}"
        self._send({"type": "subscribe", "id": sub_id, "session": session})
        while True:
            frame = self._recv(expect_id=sub_id)
            if frame.get("type") != "update":
                raise ProtocolError(
                    f"expected an update frame, got {frame.get('type')!r}"
                )
            yield frame
            if frame.get("closed"):
                return

    def stats(self) -> Dict[str, Any]:
        """The server's ``stats`` frame (server gauges + service snapshot)."""
        reply = self._round_trip({"type": "stats"})
        if reply.get("type") != "stats":
            raise ProtocolError(
                f"expected a stats frame, got {reply.get('type')!r}"
            )
        return reply

    def status(self, request_id: str) -> Dict[str, Any]:
        return self._round_trip({"type": "status", "id": request_id})

    def cancel(self, request_id: str) -> Dict[str, Any]:
        return self._round_trip({"type": "cancel", "id": request_id})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain; returns its ``bye`` frame."""
        self.connect()
        self._send({"type": "shutdown"})
        return self._recv()
