"""Synchronous ``repro-wire/1`` client with retry and backoff.

:class:`SolveClient` is the blocking counterpart of the asyncio
server: plain sockets, one request at a time, used by the ``repro
client`` CLI verbs, the test suite, and the latency benchmark. Two
failure classes retry automatically with exponential backoff:

* **connection failures** (refused, reset, server restarting) --
  the client reconnects and replays the handshake;
* **retriable error frames** (``rate_limited``, ``server_busy``,
  ``draining``) -- the client sleeps ``retry_after_s`` when the frame
  names one, else the current backoff, and resends the request.

Non-retriable error frames raise :class:`~repro.errors.ServerError`
immediately. Solves are pure, so replaying one after an ambiguous
failure is always safe (at worst it hits the server's result cache).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from ..errors import ProtocolError, ServerError
from ..log import get_logger
from . import protocol

__all__ = ["SolveClient"]

log = get_logger("server.client")


def _parse_address(addr) -> "tuple":
    """Normalise ``"host:port"`` / ``(host, port)`` into a tuple."""
    if isinstance(addr, (tuple, list)) and len(addr) == 2:
        return str(addr[0]), int(addr[1])
    if isinstance(addr, str):
        host, sep, port = addr.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"address {addr!r} is not of the form host:port"
            )
        return host or "127.0.0.1", int(port)
    raise TypeError(f"cannot parse {addr!r} as a server address")


class SolveClient:
    """Blocking client for one solve server -- or a rotation of several.

    Parameters
    ----------
    host / port:
        Server address (``repro serve`` defaults). Ignored when
        ``addresses`` is given.
    addresses:
        Optional list of server addresses (``"host:port"`` strings or
        ``(host, port)`` tuples). The client talks to one at a time
        and rotates to the next on a connection failure or a
        ``draining`` reject -- the building block the cluster router's
        clients and ``repro client --addr`` use. A single-entry list
        behaves exactly like ``host``/``port``.
    timeout_s:
        Socket timeout applied to every read: a solve must answer
        within this budget (set it above your largest expected solve).
    retries:
        How many times a retriable failure (connection error or
        retriable error frame) is retried before giving up.
    backoff_s / backoff_max_s:
        Initial and maximum sleep between retries; doubles each
        attempt, and a server-supplied ``retry_after_s`` overrides it.

    Usable as a context manager; :meth:`connect` is implicit on first
    use.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        timeout_s: float = 120.0,
        retries: int = 5,
        backoff_s: float = 0.2,
        backoff_max_s: float = 3.0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        addresses: Optional[list] = None,
    ) -> None:
        if addresses:
            self.addresses = [_parse_address(a) for a in addresses]
        else:
            self.addresses = [(host, int(port))]
        self._addr_index = 0
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.max_frame_bytes = max_frame_bytes
        self.server_hello: Optional[Dict[str, Any]] = None
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._seq = 0

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def host(self) -> str:
        """Host of the address currently targeted."""
        return self.addresses[self._addr_index][0]

    @property
    def port(self) -> int:
        """Port of the address currently targeted."""
        return self.addresses[self._addr_index][1]

    def _rotate(self) -> bool:
        """Advance to the next configured address; True when it moved."""
        if len(self.addresses) < 2:
            return False
        self.close()
        self._addr_index = (self._addr_index + 1) % len(self.addresses)
        log.debug("rotated to %s:%d", self.host, self.port)
        return True

    def connect(self) -> Dict[str, Any]:
        """Connect (with backoff on refusal) and complete the handshake.

        With several addresses configured, each failed attempt rotates
        to the next one before backing off, so a single dead server
        never exhausts the retry budget. Returns the server's hello
        frame.
        """
        if self._sock is not None:
            assert self.server_hello is not None
            return self.server_hello
        backoff = self.backoff_s
        for attempt in range(self.retries + 1):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
                break
            except OSError as exc:
                self._sock = None
                if attempt >= self.retries:
                    targets = ", ".join(
                        f"{h}:{p}" for h, p in self.addresses
                    )
                    raise ServerError(
                        f"cannot connect to {targets}: {exc}",
                        code="unreachable",
                        retriable=True,
                    ) from exc
                log.debug(
                    "connect to %s:%d failed (%s); retrying in %.2fs",
                    self.host, self.port, exc, backoff,
                )
                self._rotate()
                time.sleep(backoff)
                backoff = min(backoff * 2, self.backoff_max_s)
        self._file = self._sock.makefile("rb")
        try:
            self._send(
                {
                    "type": "hello",
                    "protocol": protocol.PROTOCOL,
                    "client": "repro-client",
                }
            )
            hello = self._recv()
        except (ServerError, ProtocolError):
            self.close()
            raise
        if hello.get("type") != "hello":
            self.close()
            raise ProtocolError(
                f"expected a hello frame, got {hello.get('type')!r}"
            )
        if hello.get("protocol") != protocol.PROTOCOL:
            self.close()
            raise ProtocolError(
                f"server speaks {hello.get('protocol')!r}, "
                f"client needs {protocol.PROTOCOL}",
                code="unsupported_protocol",
            )
        self.server_hello = hello
        return hello

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self.server_hello = None

    def __enter__(self) -> "SolveClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # wire primitives
    # ------------------------------------------------------------------
    def _send(self, frame: Dict[str, Any]) -> None:
        assert self._sock is not None
        data = protocol.encode_frame(frame)
        if len(data) > self.max_frame_bytes:
            raise ProtocolError(
                f"frame of {len(data)} B exceeds the "
                f"{self.max_frame_bytes} B limit",
                code="frame_too_large",
            )
        self._sock.sendall(data)

    def _recv(self) -> Dict[str, Any]:
        assert self._file is not None
        line = self._file.readline(self.max_frame_bytes + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        if len(line) > self.max_frame_bytes:
            raise ProtocolError(
                "server sent an oversized frame", code="frame_too_large"
            )
        frame = protocol.decode_frame(line)
        if frame.get("type") == "error":
            retriable, exit_code = protocol.ERROR_CODES.get(
                frame.get("code", "internal"), (False, 1)
            )
            err = ServerError(
                frame.get("message", "server error"),
                code=frame.get("code", "internal"),
                retriable=bool(frame.get("retriable", retriable)),
                exit_code=int(frame.get("exit_code", exit_code)),
            )
            err.retry_after_s = frame.get("retry_after_s")
            raise err
        return frame

    def _round_trip(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and read one reply, retrying retriable failures.

        Connection failures and ``draining`` rejects rotate to the
        next configured address (when there is one) before retrying;
        other retriable error frames (``server_busy``,
        ``rate_limited``) stay on the same server, which asked for
        patience rather than a different replica.
        """
        backoff = self.backoff_s
        for attempt in range(self.retries + 1):
            try:
                self.connect()
                self._send(frame)
                return self._recv()
            except (ConnectionError, socket.timeout, OSError) as exc:
                self.close()
                if attempt >= self.retries:
                    raise ServerError(
                        f"connection to {self.host}:{self.port} failed: {exc}",
                        code="unreachable",
                        retriable=True,
                    ) from exc
                self._rotate()
                delay = backoff
            except ServerError as exc:
                if not exc.retriable or attempt >= self.retries:
                    raise
                delay = getattr(exc, "retry_after_s", None) or backoff
                if exc.code == "draining" and self._rotate():
                    delay = 0.0
            log.debug(
                "request retrying in %.2fs (attempt %d/%d)",
                delay, attempt + 1, self.retries,
            )
            time.sleep(delay)
            backoff = min(backoff * 2, self.backoff_max_s)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def solve(
        self,
        graph,
        config: Optional[Dict[str, Any]] = None,
        problem: Optional[str] = None,
        timeout_s: Optional[float] = None,
        label: str = "",
        max_report: Optional[int] = None,
        checkpoint: Optional[Dict[str, Any]] = None,
        **config_kwargs: Any,
    ) -> Dict[str, Any]:
        """Solve one graph remotely; returns the ``result`` frame.

        ``graph`` is a :class:`~repro.graph.csr.CSRGraph` (shipped
        gzip-compressed inline) or a string the *server* resolves (a
        suite dataset name or a server-side path). ``config`` /
        ``config_kwargs`` mirror
        :meth:`repro.service.SolveService.submit_graph`. ``problem``
        selects the problem kind (``"max-clique"``,
        ``"k-clique-count"`` -- pair it with ``k=...`` --
        ``"maximal-enum"``); it is checked against the kinds the
        server's hello advertised, so asking for one the server lacks
        raises a non-retriable ``unsupported_problem``
        :class:`~repro.errors.ServerError` without a round trip.

        ``checkpoint`` optionally ships a serialised
        ``repro-checkpoint/1`` dict for the server to resume the
        windowed max-clique search from (the cluster router's failover
        path; also handy for tests).

        The returned frame's ``record`` is the JSON job record,
        ``cliques`` the clique membership rows (absent for counting
        kinds), and ``exit_code`` the suggested CLI status. A
        non-``ok`` record does *not* raise -- callers inspect the
        record just as batch callers do.
        """
        if config is not None and config_kwargs:
            raise ValueError(
                "pass either a config dict or keyword options, not both"
            )
        spec = dict(config) if config is not None else dict(config_kwargs)
        if problem is not None:
            hello = self.connect()
            advertised = hello.get("problems")
            if isinstance(advertised, list) and problem not in advertised:
                raise ServerError(
                    f"server does not solve problem kind {problem!r} "
                    f"(advertised: {advertised})",
                    code="unsupported_problem",
                    retriable=False,
                )
        self._seq += 1
        frame: Dict[str, Any] = {
            "type": "solve",
            "id": f"req-{self._seq}",
            "graph": protocol.encode_graph(graph),
        }
        if problem is not None:
            frame["problem"] = problem
        if spec:
            frame["config"] = spec
        if timeout_s is not None:
            frame["timeout_s"] = timeout_s
        if label:
            frame["label"] = label
        if max_report is not None:
            frame["max_report"] = max_report
        if checkpoint is not None:
            frame["checkpoint"] = checkpoint
        reply = self._round_trip(frame)
        if reply.get("type") != "result":
            raise ProtocolError(
                f"expected a result frame, got {reply.get('type')!r}"
            )
        return reply

    def stats(self) -> Dict[str, Any]:
        """The server's ``stats`` frame (server gauges + service snapshot)."""
        reply = self._round_trip({"type": "stats"})
        if reply.get("type") != "stats":
            raise ProtocolError(
                f"expected a stats frame, got {reply.get('type')!r}"
            )
        return reply

    def status(self, request_id: str) -> Dict[str, Any]:
        return self._round_trip({"type": "status", "id": request_id})

    def cancel(self, request_id: str) -> Dict[str, Any]:
        return self._round_trip({"type": "cancel", "id": request_id})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain; returns its ``bye`` frame."""
        self.connect()
        self._send({"type": "shutdown"})
        return self._recv()
