"""The ``repro-wire/1`` protocol: newline-delimited JSON frames.

One frame is one JSON object on one line, UTF-8, terminated by
``\\n``. The first client frame must be ``hello`` (protocol
negotiation); after that the client may pipeline ``solve``,
``status``, ``stats``, ``cancel``, ``checkpoint``, and ``shutdown``
frames and the server answers each (``solve`` asynchronously,
everything else immediately). A ``checkpoint`` frame fetches the
latest completed-window :class:`~repro.core.checkpoint.SearchCheckpoint`
of an in-flight solve, and a ``solve`` frame may carry a
``checkpoint`` payload to resume from -- together they are how the
cluster router (docs/CLUSTER.md) fails a mid-solve request over to a
replica. Streaming sessions add ``open-session`` / ``mutate`` /
``subscribe`` / ``close-session`` frames (docs/STREAMING.md): a
session holds a resident mutable graph server-side and pushes
epoch-stamped ``update`` frames to subscribers as mutations land.
Server-level failures travel as ``error`` frames whose
``code``/``retriable``/``exit_code`` fields reuse the existing error
taxonomy and CLI exit-code semantics (2 OOM, 3 timeout, 4 device
lost). docs/SERVER.md is the human-readable spec; this module is the
single source of truth both the server and the client import.

Graph payloads
--------------
A ``solve`` frame's ``graph`` field is one of:

* a string -- a surrogate-suite dataset name or server-side file path,
  resolved exactly like ``repro batch`` job files;
* ``{"kind": "edges", "edges": [[u, v], ...]}`` -- an inline edge
  list (small graphs, tests);
* ``{"kind": "edgelist-gz", "data": "<base64>"}`` -- a gzip-compressed
  edge-list text, base64-encoded. This is how remote clients ship
  graphs the server has no file for; it round-trips through the same
  ``.edges.gz`` machinery as :func:`repro.graph.io.load_graph`.
"""

from __future__ import annotations

import base64
import binascii
import gzip
import io as _io
import json
from typing import Any, Dict, Optional, Tuple

from ..core.config import PROBLEM_KINDS, SolverConfig
from ..errors import (
    GraphFormatError,
    JobSpecError,
    ProtocolError,
    SolverConfigError,
)
from ..graph.csr import CSRGraph
from ..graph.io import parse_edge_list_text

__all__ = [
    "PROTOCOL",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "ERROR_CODES",
    "SUPPORTED_PROBLEMS",
    "encode_frame",
    "decode_frame",
    "error_frame",
    "hello_frame",
    "encode_graph",
    "decode_graph",
    "solve_request_from_frame",
    "validate_request_key",
    "validate_session_id",
    "open_session_from_frame",
    "mutation_from_frame",
    "session_frame",
    "result_frame",
    "exit_code_for_record",
]

#: Protocol identifier exchanged in ``hello`` frames.
PROTOCOL = "repro-wire/1"

#: Problem kinds this server build can solve, advertised in the hello
#: reply's ``problems`` list so clients can fail fast locally.
SUPPORTED_PROBLEMS = tuple(PROBLEM_KINDS)

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 7421

#: Default cap on one encoded frame (newline included).
MAX_FRAME_BYTES = 8 << 20

#: Frame types a client may send after the handshake.
CLIENT_TYPES = frozenset(
    {"hello", "solve", "status", "stats", "cancel", "shutdown", "checkpoint",
     "open-session", "mutate", "subscribe", "close-session"}
)

#: Wire error codes: ``code -> (retriable, exit_code)``. Retriable
#: means the identical request may succeed later (the client's backoff
#: loop is allowed to retry); exit_code is the suggested CLI status.
ERROR_CODES: Dict[str, Tuple[bool, int]] = {
    "bad_frame": (False, 1),
    "frame_too_large": (False, 1),
    "unsupported_protocol": (False, 1),
    "handshake_required": (False, 1),
    "unknown_type": (False, 1),
    "bad_request": (False, 1),
    #: the server build does not solve the requested problem kind --
    #: retrying the identical request can never succeed
    "unsupported_problem": (False, 1),
    "rate_limited": (True, 1),
    "server_busy": (True, 1),
    "draining": (True, 1),
    "too_many_connections": (True, 1),
    #: a router found no healthy backend to place the request on --
    #: backends may recover, so the identical request can succeed later
    "no_backend": (True, 1),
    #: the request's ``deadline_s`` budget expired before (or while)
    #: the server could dispatch it -- retriable so the caller may try
    #: again with a fresh budget, exit code 3 like a solve timeout
    "deadline_exceeded": (True, 3),
    "cancelled": (False, 1),
    "internal": (False, 1),
    #: streaming sessions (docs/STREAMING.md): the named session id is
    #: not resident on this server -- resending cannot make it appear
    "unknown_session": (False, 1),
    #: an ``open-session`` named an id that is already resident with
    #: a different identity (not an idempotent retry of the open)
    "session_exists": (False, 1),
    #: the backend holding this session's resident graph died; the
    #: state is gone, so retrying the same frame can never succeed --
    #: the client must open a fresh session and replay its stream
    "session_lost": (False, 1),
    #: the server's bounded session registry is full; closes elsewhere
    #: may free a slot, so the identical open can succeed later
    "too_many_sessions": (True, 1),
}

_SOLVE_KEYS = frozenset(
    {"type", "id", "graph", "problem", "config", "timeout_s", "label",
     "max_report", "checkpoint", "request_id", "deadline_s"}
)

_OPEN_SESSION_KEYS = frozenset(
    {"type", "id", "session", "graph", "problem", "config", "request_id",
     "deadline_s"}
)
_MUTATE_KEYS = frozenset(
    {"type", "id", "session", "insert", "delete", "request_id", "deadline_s"}
)

#: upper bound on a client-chosen session id
MAX_SESSION_ID_LEN = 128

#: upper bound on a client-generated ``request_id`` (dedup table key)
MAX_REQUEST_ID_LEN = 256
_CONFIG_FIELDS = frozenset(SolverConfig.__dataclass_fields__)

#: record.error prefixes -> CLI exit codes (``repro solve`` semantics)
_ERROR_EXIT_CODES = {
    "DeviceOOMError": 2,
    "SolveTimeoutError": 3,
    "DeviceLostError": 4,
}


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialise one frame to its wire form (compact JSON + newline)."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises :class:`~repro.errors.ProtocolError` (code ``bad_frame``)
    on malformed JSON, a non-object payload, or a missing/ill-typed
    ``type`` field. Newline framing survives a bad line, so the caller
    may keep the connection open after answering with an error frame.
    """
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}", code="bad_frame") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}",
            code="bad_frame",
        )
    ftype = frame.get("type")
    if not isinstance(ftype, str) or not ftype:
        raise ProtocolError("frame is missing a 'type' string", code="bad_frame")
    return frame


def error_frame(
    code: str,
    message: str,
    request_id: Optional[str] = None,
    retry_after_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Build an ``error`` frame; unknown codes map to ``internal``."""
    retriable, exit_code = ERROR_CODES.get(code, ERROR_CODES["internal"])
    frame: Dict[str, Any] = {
        "type": "error",
        "code": code,
        "message": message,
        "retriable": retriable,
        "exit_code": exit_code,
    }
    if request_id is not None:
        frame["id"] = request_id
    if retry_after_s is not None:
        frame["retry_after_s"] = round(float(retry_after_s), 6)
    return frame


def hello_frame(max_frame_bytes: int, server: str) -> Dict[str, Any]:
    """The server's hello reply: protocol id plus capability advert.

    ``problems`` lists the problem kinds this build solves so a client
    can reject an unsupported ``problem`` locally instead of burning a
    round trip on a guaranteed ``unsupported_problem`` error.
    """
    return {
        "type": "hello",
        "protocol": PROTOCOL,
        "server": server,
        "max_frame_bytes": max_frame_bytes,
        "problems": list(SUPPORTED_PROBLEMS),
        # capability advert: this build speaks the streaming-session
        # frames (open-session / mutate / subscribe / close-session)
        "streaming": True,
    }


# ----------------------------------------------------------------------
# graph payloads
# ----------------------------------------------------------------------
def encode_graph(graph) -> Any:
    """Client-side graph payload: names pass through, CSRs ship compressed."""
    if isinstance(graph, str):
        return graph
    if isinstance(graph, CSRGraph):
        src, dst = graph.to_edge_list()
        buf = _io.StringIO()
        buf.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            buf.write(f"{u} {v}\n")
        data = gzip.compress(buf.getvalue().encode("utf-8"))
        return {
            "kind": "edgelist-gz",
            "data": base64.b64encode(data).decode("ascii"),
        }
    raise TypeError(f"cannot encode a {type(graph).__name__} as a graph payload")


def decode_graph(payload) -> CSRGraph:
    """Server-side graph payload resolution; ``bad_request`` on failure."""
    try:
        if isinstance(payload, str):
            from ..service.jobs import resolve_graph

            return resolve_graph(payload)
        if isinstance(payload, dict):
            kind = payload.get("kind")
            if kind == "dataset":
                from ..service.jobs import resolve_graph

                name = payload.get("name")
                if not isinstance(name, str) or not name:
                    raise ProtocolError(
                        "dataset payload needs a 'name' string", code="bad_request"
                    )
                return resolve_graph(name)
            if kind == "edges":
                edges = payload.get("edges")
                if not isinstance(edges, list):
                    raise ProtocolError(
                        "edges payload needs an 'edges' list", code="bad_request"
                    )
                from ..graph.build import from_edge_list

                return from_edge_list([(int(u), int(v)) for u, v in edges])
            if kind == "edgelist-gz":
                data = payload.get("data")
                if not isinstance(data, str):
                    raise ProtocolError(
                        "edgelist-gz payload needs a base64 'data' string",
                        code="bad_request",
                    )
                try:
                    text = gzip.decompress(
                        base64.b64decode(data, validate=True)
                    ).decode("utf-8")
                except (binascii.Error, gzip.BadGzipFile, EOFError,
                        UnicodeDecodeError, ValueError) as exc:
                    raise ProtocolError(
                        f"edgelist-gz payload is corrupt: {exc}",
                        code="bad_request",
                    ) from exc
                return parse_edge_list_text(text, source="<wire>")
            raise ProtocolError(
                f"unknown graph payload kind {kind!r}", code="bad_request"
            )
    except (JobSpecError, GraphFormatError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad graph payload: {exc}", code="bad_request") from exc
    raise ProtocolError(
        f"graph payload must be a string or object, got "
        f"{type(payload).__name__}",
        code="bad_request",
    )


# ----------------------------------------------------------------------
# solve frames <-> service requests
# ----------------------------------------------------------------------
def validate_request_key(frame: Dict[str, Any]) -> Optional[str]:
    """Validate and return a solve frame's idempotency ``request_id``.

    Cheap (no graph decode), so the server can consult its dedup table
    before paying for full validation. ``request_id`` is the
    *client-generated* idempotency key reused verbatim across retries
    -- distinct from the per-connection ``id`` that matches replies to
    requests. Returns None when absent.
    """
    request_key = frame.get("request_id")
    if request_key is None:
        return None
    if (
        not isinstance(request_key, str)
        or not request_key
        or len(request_key) > MAX_REQUEST_ID_LEN
    ):
        raise ProtocolError(
            "'request_id' must be a non-empty string of at most "
            f"{MAX_REQUEST_ID_LEN} characters",
            code="bad_request",
        )
    return request_key


def solve_request_from_frame(frame: Dict[str, Any]):
    """Validate a ``solve`` frame into ``(SolveRequest, max_report)``.

    ``max_report`` caps how many clique rows the *reply* carries; it is
    not part of the solver configuration (so it never perturbs the
    result-cache key). A ``deadline_s`` budget (seconds of remaining
    client patience, measured at send time) is stamped into the
    request as an absolute :class:`~repro.core.deadline.Deadline` at
    receipt, so every later layer (bridge queue, service, solver) can
    refuse work that can no longer meet it.
    """
    from ..service.request import SolveRequest

    unknown = set(frame) - _SOLVE_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown solve field(s) {sorted(unknown)}", code="bad_request"
        )
    if "graph" not in frame:
        raise ProtocolError("solve frame needs a 'graph'", code="bad_request")
    graph = decode_graph(frame["graph"])

    config_spec = frame.get("config", {})
    if not isinstance(config_spec, dict):
        raise ProtocolError("'config' must be an object", code="bad_request")
    config_spec = dict(config_spec)
    bad = set(config_spec) - _CONFIG_FIELDS
    if bad:
        raise ProtocolError(
            f"unknown config key(s) {sorted(bad)}", code="bad_request"
        )
    problem = frame.get("problem")
    if problem is not None:
        if not isinstance(problem, str):
            raise ProtocolError("'problem' must be a string", code="bad_request")
        if "problem" in config_spec:
            raise ProtocolError(
                "'problem' given both as a solve field and a config key; "
                "use one",
                code="bad_request",
            )
        config_spec["problem"] = problem
    requested = config_spec.get("problem")
    if requested is not None and requested not in SUPPORTED_PROBLEMS:
        # distinct, non-retriable code: the request is well-formed but
        # names a kind this server build cannot solve
        raise ProtocolError(
            f"unsupported problem kind {requested!r}; this server solves "
            f"{sorted(SUPPORTED_PROBLEMS)}",
            code="unsupported_problem",
        )
    try:
        config = SolverConfig(**config_spec)
    except (SolverConfigError, ValueError, TypeError) as exc:
        raise ProtocolError(f"invalid config: {exc}", code="bad_request") from exc

    validate_request_key(frame)
    timeout_s = frame.get("timeout_s")
    if timeout_s is not None and not isinstance(timeout_s, (int, float)):
        raise ProtocolError("'timeout_s' must be a number", code="bad_request")
    deadline_s = frame.get("deadline_s")
    if deadline_s is not None and (
        isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float))
    ):
        raise ProtocolError("'deadline_s' must be a number", code="bad_request")
    label = frame.get("label", "")
    if not isinstance(label, str):
        raise ProtocolError("'label' must be a string", code="bad_request")
    max_report = frame.get("max_report")
    if max_report is not None and (
        not isinstance(max_report, int) or max_report < 0
    ):
        raise ProtocolError(
            "'max_report' must be a non-negative integer", code="bad_request"
        )
    checkpoint = None
    ckpt_payload = frame.get("checkpoint")
    if ckpt_payload is not None:
        from ..core.checkpoint import SearchCheckpoint
        from ..errors import CheckpointError

        try:
            checkpoint = SearchCheckpoint.from_dict(
                ckpt_payload, source="<wire checkpoint>"
            )
        except CheckpointError as exc:
            raise ProtocolError(
                f"bad checkpoint payload: {exc}", code="bad_request"
            ) from exc
        # the graph identity is checkable right here; the config
        # fingerprint is stamped from the *executed* config, which
        # admission decides later -- the solver verifies it on resume
        if (
            checkpoint.graph_fingerprint
            and checkpoint.graph_fingerprint != graph.fingerprint()
        ):
            raise ProtocolError(
                "checkpoint was taken against a different graph",
                code="bad_request",
            )
    deadline = None
    if deadline_s is not None:
        from ..core.deadline import Deadline

        # stamped at receipt: the remaining budget starts shrinking on
        # this host's clock from the moment the frame was parsed
        deadline = Deadline.from_limit(
            float(deadline_s), label=f"request {frame.get('id', '?')}"
        )
    request = SolveRequest(
        graph=graph,
        config=config,
        timeout_s=timeout_s,
        label=label,
        checkpoint=checkpoint,
        deadline=deadline,
    )
    return request, max_report


# ----------------------------------------------------------------------
# streaming-session frames (docs/STREAMING.md)
# ----------------------------------------------------------------------
def validate_session_id(frame: Dict[str, Any]) -> str:
    """Validate and return a session frame's ``session`` id."""
    sid = frame.get("session")
    if (
        not isinstance(sid, str)
        or not sid
        or len(sid) > MAX_SESSION_ID_LEN
    ):
        raise ProtocolError(
            "'session' must be a non-empty string of at most "
            f"{MAX_SESSION_ID_LEN} characters",
            code="bad_request",
        )
    return sid


def open_session_from_frame(frame: Dict[str, Any]):
    """Validate an ``open-session`` frame into ``(sid, graph, config)``.

    The session id is *client-chosen* (the cluster router pins the
    session to a backend by hashing it before any server state
    exists). The graph payload and config/problem validation reuse the
    ``solve`` frame rules; the config must describe a max-clique
    solve, since the session maintains ω(G).
    """
    unknown = set(frame) - _OPEN_SESSION_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown open-session field(s) {sorted(unknown)}",
            code="bad_request",
        )
    sid = validate_session_id(frame)
    if "graph" not in frame:
        raise ProtocolError(
            "open-session frame needs a 'graph'", code="bad_request"
        )
    graph = decode_graph(frame["graph"])
    config_spec = frame.get("config", {})
    if not isinstance(config_spec, dict):
        raise ProtocolError("'config' must be an object", code="bad_request")
    config_spec = dict(config_spec)
    bad = set(config_spec) - _CONFIG_FIELDS
    if bad:
        raise ProtocolError(
            f"unknown config key(s) {sorted(bad)}", code="bad_request"
        )
    problem = frame.get("problem")
    if problem is not None:
        if not isinstance(problem, str):
            raise ProtocolError("'problem' must be a string", code="bad_request")
        config_spec.setdefault("problem", problem)
    requested = config_spec.get("problem", "max-clique")
    if requested != "max-clique":
        raise ProtocolError(
            f"sessions maintain ω(G); problem kind {requested!r} is not "
            "streamable",
            code="bad_request",
        )
    if config_spec.get("omega_floor"):
        raise ProtocolError(
            "omega_floor is managed by the session's incremental solver",
            code="bad_request",
        )
    try:
        config = SolverConfig(**config_spec)
    except (SolverConfigError, ValueError, TypeError) as exc:
        raise ProtocolError(f"invalid config: {exc}", code="bad_request") from exc
    validate_request_key(frame)
    return sid, graph, config


#: cap on one mutation batch's combined insert+delete edge count
MAX_MUTATION_EDGES = 100_000


def mutation_from_frame(frame: Dict[str, Any]):
    """Validate a ``mutate`` frame into ``(sid, inserts, deletes)``."""
    unknown = set(frame) - _MUTATE_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown mutate field(s) {sorted(unknown)}", code="bad_request"
        )
    sid = validate_session_id(frame)
    batches = []
    for key in ("insert", "delete"):
        pairs = frame.get(key, [])
        if not isinstance(pairs, list):
            raise ProtocolError(f"'{key}' must be a list", code="bad_request")
        out = []
        for pair in pairs:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not all(
                    isinstance(x, int) and not isinstance(x, bool)
                    for x in pair
                )
            ):
                raise ProtocolError(
                    f"'{key}' entries must be [u, v] integer pairs",
                    code="bad_request",
                )
            out.append((pair[0], pair[1]))
        batches.append(out)
    inserts, deletes = batches
    if not inserts and not deletes:
        raise ProtocolError(
            "mutate frame needs a non-empty 'insert' or 'delete'",
            code="bad_request",
        )
    if len(inserts) + len(deletes) > MAX_MUTATION_EDGES:
        raise ProtocolError(
            f"mutation batch exceeds {MAX_MUTATION_EDGES} edges",
            code="bad_request",
        )
    validate_request_key(frame)
    return sid, inserts, deletes


def session_frame(
    ftype: str, view, request_id: Optional[str] = None
) -> Dict[str, Any]:
    """Build a session-state frame (``session-opened`` / ``mutated`` /
    ``update`` / ``session-closed``) from a
    :class:`~repro.stream.session.SessionView`."""
    frame: Dict[str, Any] = {"type": ftype}
    frame.update(view.to_dict() if hasattr(view, "to_dict") else dict(view))
    if request_id is not None:
        frame["id"] = request_id
    return frame


def result_frame(
    request_id: Optional[str], record, max_report: Optional[int] = None
) -> Dict[str, Any]:
    """Build a ``result`` frame from a finished :class:`JobRecord`.

    The record dict is the same JSON shape ``repro batch --json``
    emits; clique membership rows ride alongside (capped by
    ``max_report``) so a remote ``solve`` is byte-comparable with the
    in-process one.
    """
    frame: Dict[str, Any] = {"type": "result", "record": record.to_dict()}
    if request_id is not None:
        frame["id"] = request_id
    # k-clique-count results carry no membership rows at all; maximal
    # enumeration rows are tuples rather than arrays -- both normalise
    # to plain int lists here
    rows = getattr(record.result, "cliques", None)
    if rows is not None:
        if max_report is not None:
            rows = rows[:max_report]
        frame["cliques"] = [[int(v) for v in row] for row in rows]
        frame["exit_code"] = 0 if record.ok else exit_code_for_record(record.to_dict())
    else:
        frame["exit_code"] = exit_code_for_record(record.to_dict())
    return frame


def exit_code_for_record(record: Dict[str, Any]) -> int:
    """CLI exit status for a record dict (``repro solve`` semantics)."""
    if record.get("status") == "ok":
        return 0
    error = record.get("error") or ""
    for prefix, code in _ERROR_EXIT_CODES.items():
        if error.startswith(prefix):
            return code
    return 1
