"""Job types of the solve service: requests in, records out.

A :class:`SolveRequest` is one unit of work submitted to the
:class:`~repro.service.service.SolveService` -- a graph plus a
:class:`~repro.core.config.SolverConfig` and scheduling metadata
(priority, per-job wall-clock budget). A :class:`JobRecord` is the
service's account of what happened to that job: admission decision,
attempt count along the degradation ladder, cache hit, per-stage
model-time breakdown, and the result figures. Records serialise to
JSON (``repro batch --json``); the full
:class:`~repro.core.result.MaxCliqueResult` stays available
programmatically on :attr:`JobRecord.result`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.config import SolverConfig
from ..core.result import SolveResult
from ..graph.csr import CSRGraph

__all__ = ["SolveRequest", "JobRecord"]

#: job terminal states (``JobRecord.status``)
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_FAILED = "failed"


@dataclass
class SolveRequest:
    """One solve job submitted to the service.

    Parameters
    ----------
    graph:
        Input graph.
    config:
        Requested solver configuration (the *cache identity* of the
        job); admission control and the degradation ladder may execute
        a different configuration, which the record reports.
    job_id:
        Caller-chosen identifier; the service assigns ``job-<n>`` when
        omitted.
    priority:
        Higher runs earlier; ties fall back to the scheduling policy.
    timeout_s:
        Per-job wall-clock budget in seconds, merged into the executed
        config's ``time_limit_s`` (the tighter of the two wins).
    label:
        Free-form annotation carried into the record (e.g. the graph's
        file or dataset name).
    checkpoint:
        Optional :class:`~repro.core.checkpoint.SearchCheckpoint` to
        resume the windowed max-clique search from (checkpoint-shipped
        failover: the cluster router attaches one fetched from a dying
        backend). Ignored whenever the executed configuration is not
        resumable (non-windowed, ``window_fanout > 1``, or a
        non-max-clique kind) -- those restart cleanly.
    checkpoint_sink:
        Optional callback invoked with a stamped checkpoint after
        every completed window, so callers (the server bridge) can
        expose the latest resumable state of an in-flight job.
    deadline:
        Optional absolute :class:`~repro.core.deadline.Deadline` by
        which the *caller* still wants the answer (the wire
        ``deadline_s`` budget, stamped at receipt). Layers between
        here and the device honour it: the server rejects an
        already-expired request before dispatch, the bridge fails
        expired jobs at batch pickup, and the service folds the
        remaining budget into the executed config's ``time_limit_s``
        (the tighter of the two wins) so the solver's own deadline
        checks enforce it mid-search.
    """

    graph: CSRGraph
    config: SolverConfig = field(default_factory=SolverConfig)
    job_id: Optional[str] = None
    priority: int = 0
    timeout_s: Optional[float] = None
    label: str = ""
    checkpoint: Optional[Any] = field(default=None, repr=False, compare=False)
    checkpoint_sink: Optional[Any] = field(
        default=None, repr=False, compare=False
    )
    deadline: Optional[Any] = field(default=None, repr=False, compare=False)

    #: submission sequence number, assigned by the service (FIFO key)
    seq: int = field(default=0, repr=False, compare=False)


@dataclass
class JobRecord:
    """Everything the service can say about one finished job.

    ``status`` is ``"ok"`` (a result was produced, possibly degraded),
    ``"rejected"`` (admission refused to launch it), or ``"failed"``
    (every rung of the degradation ladder was exhausted).
    """

    job_id: str
    status: str
    label: str = ""
    #: problem kind of the request's config (result field selector)
    problem: str = "max-clique"
    #: the counted clique size (k-clique-count jobs only)
    k: Optional[int] = None
    clique_number: Optional[int] = None
    num_maximum_cliques: Optional[int] = None
    #: exact k-clique count (k-clique-count jobs only)
    k_clique_count: Optional[int] = None
    #: exact maximal clique count (maximal-enum jobs only)
    num_maximal_cliques: Optional[int] = None
    enumerated_all: Optional[bool] = None
    cache_hit: bool = False
    attempts: int = 0
    admission: str = ""  # "full" | "windowed" | "reject" | "cache"
    admission_reason: str = ""
    degraded: bool = False
    #: same-config retries after transient device faults
    transient_retries: int = 0
    #: device migrations after device loss (final device in ``device``)
    migrations: int = 0
    device: Optional[int] = None
    model_time_s: float = 0.0
    wall_time_s: float = 0.0
    stage_model_times: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    #: full result object (not serialised); None for rejected/failed
    result: Optional[SolveResult] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (drops the result object)."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "label": self.label,
            "problem": self.problem,
            "k": self.k,
            "clique_number": self.clique_number,
            "num_maximum_cliques": self.num_maximum_cliques,
            "k_clique_count": self.k_clique_count,
            "num_maximal_cliques": self.num_maximal_cliques,
            "enumerated_all": self.enumerated_all,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "admission": self.admission,
            "admission_reason": self.admission_reason,
            "degraded": self.degraded,
            "transient_retries": self.transient_retries,
            "migrations": self.migrations,
            "device": self.device,
            "model_time_s": self.model_time_s,
            "wall_time_s": self.wall_time_s,
            "stage_model_times_s": dict(self.stage_model_times),
            "error": self.error,
        }
