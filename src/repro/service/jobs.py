"""Batch job files: the ``repro batch`` input format.

A jobs file is JSON -- either a bare list of job objects or
``{"defaults": {...}, "jobs": [...]}``. Each job object:

.. code-block:: json

    {
      "id": "social-1",
      "graph": "soc-comm-10x50",
      "problem": "k-clique-count",
      "priority": 1,
      "timeout_s": 10.0,
      "config": {"heuristic": "multi-degree", "window_size": 1024, "k": 4}
    }

``graph`` (required) is a file path or a surrogate-suite dataset name,
resolved exactly as the CLI resolves positional graph arguments.
``config`` keys are :class:`~repro.core.config.SolverConfig` field
names, passed through verbatim (so everything the programmatic API
accepts is expressible). ``problem`` is a convenience alias for
``config.problem`` (one of
:data:`~repro.core.config.PROBLEM_KINDS`), usable per-job or in
``defaults``; specifying both the alias and ``config.problem`` is an
error. An optional ``fingerprint`` pins the job to an exact
result-relevant configuration: it must carry the current
:data:`~repro.core.config.FINGERPRINT_VERSION` prefix and match the
built config's :func:`~repro.core.config.config_fingerprint` --
kind-less fingerprints from pre-problem-kind jobs files are rejected
outright rather than silently treated as ``max-clique``. ``defaults``
supplies fallback values for ``priority`` / ``timeout_s`` /
``problem`` / ``config`` entries merged under each job's own. Unknown
keys anywhere raise :class:`~repro.errors.JobSpecError` -- silent
typos in a batch file are worse than a loud failure. See
docs/SERVICE.md for the full schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..core.config import FINGERPRINT_VERSION, SolverConfig, config_fingerprint
from ..errors import JobSpecError, SolverConfigError
from ..graph.csr import CSRGraph
from .request import SolveRequest

__all__ = ["load_jobs", "parse_jobs", "resolve_graph"]

_JOB_KEYS = {
    "id", "graph", "priority", "timeout_s", "config", "label",
    "problem", "fingerprint",
}
_DEFAULT_KEYS = {"priority", "timeout_s", "config", "problem"}
_CONFIG_FIELDS = frozenset(SolverConfig.__dataclass_fields__)


def resolve_graph(name: str) -> CSRGraph:
    """Load a graph file, or fall back to a suite dataset name.

    Raises :class:`~repro.errors.JobSpecError` when the name is
    neither; the CLI and the jobs loader share this resolution.
    """
    from ..graph.io import load_graph

    if Path(name).exists():
        return load_graph(name)
    from ..datasets.suite import load as load_dataset

    try:
        return load_dataset(name)
    except KeyError:
        raise JobSpecError(
            f"{name!r} is neither a readable file nor a suite dataset "
            f"(try `python -m repro datasets`)"
        )


def _build_config(spec: Dict[str, Any], where: str) -> SolverConfig:
    unknown = set(spec) - _CONFIG_FIELDS
    if unknown:
        raise JobSpecError(
            f"{where}: unknown config key(s) {sorted(unknown)}; valid keys "
            f"are the SolverConfig fields {sorted(_CONFIG_FIELDS)}"
        )
    try:
        return SolverConfig(**spec)
    except (SolverConfigError, ValueError, TypeError) as exc:
        raise JobSpecError(f"{where}: invalid config: {exc}")


def _check_fingerprint(fp: Any, config: SolverConfig, where: str) -> None:
    """Validate a job's pinned config fingerprint, if any.

    Fingerprints written before problem kinds existed (no ``v<N>;``
    prefix) described max-clique solves implicitly; accepting one
    would silently collide with current ``max-clique`` cache entries,
    so they are rejected with a pointer at the schema change.
    """
    if fp is None:
        return
    if not isinstance(fp, str):
        raise JobSpecError(f"{where}: 'fingerprint' must be a string")
    prefix = FINGERPRINT_VERSION + ";"
    if not fp.startswith(prefix):
        raise JobSpecError(
            f"{where}: kind-less config fingerprint (pre-{FINGERPRINT_VERSION} "
            f"schema, before problem kinds); re-generate the jobs file -- "
            f"current fingerprints start with {prefix!r}"
        )
    actual = config_fingerprint(config)
    if fp != actual:
        raise JobSpecError(
            f"{where}: 'fingerprint' does not match the job's config "
            f"(expected {actual!r})"
        )


def parse_jobs(payload: Union[list, dict], source: str = "<jobs>") -> List[SolveRequest]:
    """Turn a decoded jobs payload into solve requests (graphs loaded)."""
    if isinstance(payload, list):
        defaults: Dict[str, Any] = {}
        jobs = payload
    elif isinstance(payload, dict):
        unknown = set(payload) - {"defaults", "jobs"}
        if unknown:
            raise JobSpecError(
                f"{source}: unknown top-level key(s) {sorted(unknown)}"
            )
        defaults = payload.get("defaults", {})
        if not isinstance(defaults, dict):
            raise JobSpecError(f"{source}: 'defaults' must be an object")
        bad = set(defaults) - _DEFAULT_KEYS
        if bad:
            raise JobSpecError(
                f"{source}: unknown defaults key(s) {sorted(bad)}"
            )
        jobs = payload.get("jobs")
        if jobs is None:
            raise JobSpecError(f"{source}: missing 'jobs' list")
    else:
        raise JobSpecError(f"{source}: expected a list or an object at top level")
    if not isinstance(jobs, list) or not jobs:
        raise JobSpecError(f"{source}: 'jobs' must be a non-empty list")

    default_config = defaults.get("config", {})
    if not isinstance(default_config, dict):
        raise JobSpecError(f"{source}: defaults.config must be an object")
    requests: List[SolveRequest] = []
    for i, job in enumerate(jobs):
        where = f"{source}: job #{i}"
        if not isinstance(job, dict):
            raise JobSpecError(f"{where}: expected an object")
        unknown = set(job) - _JOB_KEYS
        if unknown:
            raise JobSpecError(f"{where}: unknown key(s) {sorted(unknown)}")
        graph_name = job.get("graph")
        if not isinstance(graph_name, str) or not graph_name:
            raise JobSpecError(f"{where}: 'graph' (string) is required")
        config_spec = dict(default_config)
        job_config = job.get("config", {})
        if not isinstance(job_config, dict):
            raise JobSpecError(f"{where}: 'config' must be an object")
        config_spec.update(job_config)
        problem = job.get("problem")
        if problem is not None and "problem" in job_config:
            raise JobSpecError(
                f"{where}: 'problem' given both as a job key and in "
                f"'config'; use one"
            )
        if problem is None and "problem" not in job_config:
            # the defaults-level alias is a fallback only: a job's own
            # config.problem wins over it
            problem = defaults.get("problem")
        if problem is not None:
            if not isinstance(problem, str):
                raise JobSpecError(f"{where}: 'problem' must be a string")
            config_spec["problem"] = problem
        config = _build_config(config_spec, where)
        _check_fingerprint(job.get("fingerprint"), config, where)
        requests.append(
            SolveRequest(
                graph=resolve_graph(graph_name),
                config=config,
                job_id=job.get("id"),
                priority=int(job.get("priority", defaults.get("priority", 0))),
                timeout_s=job.get("timeout_s", defaults.get("timeout_s")),
                label=job.get("label", graph_name),
            )
        )
    return requests


def load_jobs(path: Union[str, Path]) -> List[SolveRequest]:
    """Read and parse a jobs file; raises ``JobSpecError`` on bad input."""
    p = Path(path)
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise JobSpecError(f"cannot read jobs file {p}: {exc}")
    except json.JSONDecodeError as exc:
        raise JobSpecError(f"{p} is not valid JSON: {exc}")
    return parse_jobs(payload, source=str(p))
