"""The batched solve service: scheduling, caching, admission, retry.

This package is the serving layer over the solver pipeline (see
docs/SERVICE.md):

* :class:`~repro.service.service.SolveService` -- submit
  :class:`~repro.service.request.SolveRequest` jobs, run them on a
  pool of simulated devices, get
  :class:`~repro.service.request.JobRecord` accounts back;
* :mod:`~repro.service.scheduler` -- FIFO / shortest-expected-first
  ordering;
* :mod:`~repro.service.pool` -- the self-healing device pool with
  least-loaded placement (how batches *drain* -- serial or threaded --
  is the executor's business, see :mod:`repro.engine.executor`);
* :mod:`~repro.service.cache` -- LRU result cache keyed by graph
  fingerprint + config;
* :mod:`~repro.service.admission` -- memory-aware full / windowed /
  reject decisions before launch;
* :mod:`~repro.service.policy` -- the OOM/timeout degradation ladder;
* :mod:`~repro.service.jobs` -- the ``repro batch`` job-file format.
"""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    MemoryEstimate,
    estimate_memory,
    windowed_variant,
)
from .cache import ResultCache, config_fingerprint, request_key
from .jobs import load_jobs, parse_jobs, resolve_graph
from .policy import DegradationPolicy
from .pool import DeviceHealth, DevicePool
from .request import JobRecord, SolveRequest
from .scheduler import Scheduler, expected_cost
from .service import ServiceSummary, SolveService

__all__ = [
    "SolveService",
    "ServiceSummary",
    "SolveRequest",
    "JobRecord",
    "Scheduler",
    "DevicePool",
    "DeviceHealth",
    "expected_cost",
    "ResultCache",
    "config_fingerprint",
    "request_key",
    "AdmissionController",
    "AdmissionDecision",
    "MemoryEstimate",
    "estimate_memory",
    "windowed_variant",
    "DegradationPolicy",
    "load_jobs",
    "parse_jobs",
    "resolve_graph",
]
