"""The batched solve service.

:class:`SolveService` turns the one-shot
:class:`~repro.core.solver.MaxCliqueSolver` into a multi-request
serving layer: jobs are submitted (:meth:`SolveService.submit`),
ordered by the scheduler, checked against the result cache, admitted
by the memory controller, executed on the least-loaded device of a
simulated pool, retried down the degradation ladder on OOM/timeout,
and reported as :class:`~repro.service.request.JobRecord` objects.

*How* a scheduled batch drains is delegated to a pluggable
:class:`~repro.engine.executor.Executor`: the service packages each
batch as a :class:`_BatchPlan` (cache/admission prologue, device
placement, solve, commit) and the executor decides whether tickets
run one at a time (``"serial"``) or overlap across host threads with
one in-flight job per pooled device (``"threaded"`` -- byte-identical
records, cache, and counters; only host wall clock drops).

Observability rides on the PR-1 tracer: each executed job runs inside
a ``service.job`` span (category ``"service"``) on its device's model
clock, with the pipeline's per-stage spans nested inside, and the
service emits ``service.*`` counters (cache hits/misses, admission
decisions, retries, outcomes) -- see docs/OBSERVABILITY.md.

>>> from repro.service import SolveService
>>> svc = SolveService(devices=2, policy="sef")
>>> svc.submit_graph(g, heuristic="multi-degree")
'job-0'
>>> records = svc.run()
>>> records[0].status, records[0].cache_hit
('ok', False)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.config import SolverConfig
from ..core.result import KCliqueCountResult, MaximalEnumResult
from ..core.solver import MaxCliqueSolver
from ..engine.executor import Executor, resolve_executor
from ..errors import (
    CheckpointError,
    DeviceLostError,
    DeviceOOMError,
    FlakyAllocError,
    SolveTimeoutError,
    TransientDeviceError,
)
from ..graph.csr import CSRGraph
from ..gpusim.spec import DeviceSpec
from ..log import get_logger
from ..trace import NULL_TRACER, Tracer
from .admission import AdmissionController, REJECT
from .cache import ResultCache, request_key
from .policy import DegradationPolicy
from .request import (
    JobRecord,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    SolveRequest,
)
from .pool import DevicePool
from .scheduler import Scheduler

__all__ = ["SolveService", "ServiceSummary"]

log = get_logger("service")


@dataclass(frozen=True)
class ServiceSummary:
    """Aggregate figures over every record the service produced."""

    total: int
    ok: int
    rejected: int
    failed: int
    cache_hits: int
    attempts: int
    transient_retries: int  #: same-config retries after transient faults
    migrations: int  #: device migrations after device loss
    device_faults: int  #: faults accounted across the pool's breakers
    model_time_s: float  #: device model time charged across all jobs
    makespan_model_s: float  #: busiest device's clock (pool completion)
    wall_time_s: float  #: host wall time spent inside run()
    devices: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "ok": self.ok,
            "rejected": self.rejected,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "attempts": self.attempts,
            "transient_retries": self.transient_retries,
            "migrations": self.migrations,
            "device_faults": self.device_faults,
            "model_time_s": self.model_time_s,
            "makespan_model_s": self.makespan_model_s,
            "wall_time_s": self.wall_time_s,
            "devices": self.devices,
        }


class SolveService:
    """A scheduling, caching, admission-controlled solve service.

    Parameters
    ----------
    devices:
        Size of the simulated device pool.
    spec:
        Spec shared by every pool device (memory budget lives here).
    policy:
        Job ordering: ``"fifo"`` or ``"sef"`` (shortest-expected-first).
    cache_size:
        Result-cache capacity in entries; 0 disables caching.
    max_attempts:
        Attempts per job along the degradation ladder (>= 1).
    default_timeout_s:
        Per-job wall-clock budget applied when a request carries none.
    tracer:
        Receives ``service.job`` spans and ``service.*`` counters plus
        all nested pipeline spans/kernels; defaults to the no-op
        tracer.
    admission / degradation:
        Override the stock controller/ladder (mainly for tests).
    fault_hook:
        Test/fault-injection hook called as ``hook(request, attempt,
        config)`` immediately before each launch; an exception it
        raises is handled exactly like a solver failure.
    fault_plan:
        A :class:`~repro.gpusim.faults.FaultPlan` whose injectors are
        installed on the pool's devices (``repro batch --fault-plan``).
        The service absorbs the injected faults: transient faults
        retry the same configuration on the same device, device loss
        quarantines the device and migrates the job (resuming from its
        latest checkpoint) -- results are identical to a fault-free
        run, only the fault/retry/migration accounting differs.
    executor:
        How a scheduled batch drains: ``"serial"`` (one job at a
        time, the default), ``"threaded"`` (host threads overlap jobs
        across the pool's devices, producing byte-identical records
        and counters in less wall time), or an
        :class:`~repro.engine.executor.Executor` instance.
    workers:
        Worker-thread count for ``executor="threaded"`` (clamped to
        the pool size; ``None`` means one per device). Ignored for
        other executors.
    """

    def __init__(
        self,
        devices: int = 1,
        spec: Optional[DeviceSpec] = None,
        policy: str = "fifo",
        cache_size: int = 128,
        max_attempts: int = 3,
        default_timeout_s: Optional[float] = None,
        tracer: Tracer = NULL_TRACER,
        admission: Optional[AdmissionController] = None,
        degradation: Optional[DegradationPolicy] = None,
        fault_hook: Optional[
            Callable[[SolveRequest, int, SolverConfig], None]
        ] = None,
        fault_plan=None,
        executor: Union[str, Executor, None] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.pool = DevicePool(devices, spec)
        if fault_plan is not None:
            self.pool.install_fault_plan(fault_plan)
        self.executor: Executor = resolve_executor(executor, workers)
        self.scheduler = Scheduler(policy)
        self.tracer = tracer
        self.cache = ResultCache(cache_size, tracer=tracer)
        self.admission = admission if admission is not None else AdmissionController()
        self.degradation = (
            degradation
            if degradation is not None
            else DegradationPolicy(max_attempts=max_attempts)
        )
        self.default_timeout_s = default_timeout_s
        self.fault_hook = fault_hook
        self.records: List[JobRecord] = []
        self._pending: List[SolveRequest] = []
        self._seq = 0
        self._run_wall_s = 0.0
        #: guards the records log for cross-thread readers
        #: (:meth:`stats_snapshot` may run while a batch commits)
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> str:
        """Queue a request; returns its (possibly assigned) job id."""
        with self._stats_lock:
            if request.job_id is None:
                request.job_id = f"job-{self._seq}"
            request.seq = self._seq
            self._seq += 1
            self._pending.append(request)
        return request.job_id

    def submit_graph(
        self,
        graph: CSRGraph,
        config: Optional[SolverConfig] = None,
        job_id: Optional[str] = None,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        label: str = "",
        **config_kwargs,
    ) -> str:
        """Convenience: build the request from a graph + config kwargs."""
        if config is not None and config_kwargs:
            raise ValueError("pass either a config object or keyword options, not both")
        if config is None:
            config = SolverConfig(**config_kwargs)
        return self.submit(
            SolveRequest(
                graph=graph,
                config=config,
                job_id=job_id,
                priority=priority,
                timeout_s=timeout_s,
                label=label,
            )
        )

    @property
    def pending(self) -> int:
        """Jobs queued but not yet run."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> List[JobRecord]:
        """Drain the queue in scheduled order; returns this run's records.

        The batch is handed to the configured executor as a
        :class:`_BatchPlan`; record order, cache contents, and
        counters are the same for every executor (records land in
        scheduled order regardless of completion order).
        """
        with self._stats_lock:
            batch, self._pending = self._pending, []
        ordered = self.scheduler.order(batch)
        t0 = time.perf_counter()
        try:
            return self.executor.run_batch(_BatchPlan(self, ordered))
        finally:
            self._run_wall_s += time.perf_counter() - t0

    def solve(self, graph: CSRGraph, config: Optional[SolverConfig] = None, **kw) -> JobRecord:
        """One-shot convenience: submit one job and run it now."""
        self.submit_graph(graph, config, **kw)
        return self.run()[-1]

    def summary(self) -> ServiceSummary:
        """Aggregate figures across everything run so far."""
        recs = self.records
        return ServiceSummary(
            total=len(recs),
            ok=sum(1 for r in recs if r.status == STATUS_OK),
            rejected=sum(1 for r in recs if r.status == STATUS_REJECTED),
            failed=sum(1 for r in recs if r.status == STATUS_FAILED),
            cache_hits=sum(1 for r in recs if r.cache_hit),
            attempts=sum(r.attempts for r in recs),
            transient_retries=sum(r.transient_retries for r in recs),
            migrations=sum(r.migrations for r in recs),
            device_faults=sum(h.total_faults for h in self.pool.health),
            model_time_s=sum(r.model_time_s for r in recs),
            makespan_model_s=self.pool.makespan_model_s,
            wall_time_s=self._run_wall_s,
            devices=len(self.pool),
        )

    def stats_snapshot(self) -> Dict[str, Any]:
        """Thread-safe point-in-time statistics for external readers.

        The supported way for monitoring surfaces (the network
        server's ``stats`` frame, dashboards, tests) to observe the
        service without poking its internals: one consistent copy of
        the job-outcome tallies, the result-cache counters, and the
        pool's per-device health -- safe to call from any thread while
        a batch is running.
        """
        with self._stats_lock:
            recs = list(self.records)
            pending = len(self._pending)
        by_status: Dict[str, int] = {
            STATUS_OK: 0, STATUS_REJECTED: 0, STATUS_FAILED: 0
        }
        for r in recs:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        return {
            "jobs": {
                "total": len(recs),
                "ok": by_status[STATUS_OK],
                "rejected": by_status[STATUS_REJECTED],
                "failed": by_status[STATUS_FAILED],
                "cache_hits": sum(1 for r in recs if r.cache_hit),
                "degraded": sum(1 for r in recs if r.degraded),
                "attempts": sum(r.attempts for r in recs),
                "transient_retries": sum(r.transient_retries for r in recs),
                "migrations": sum(r.migrations for r in recs),
            },
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "size": len(self.cache),
                "capacity": self.cache.capacity,
            },
            "pool": {
                "devices": len(self.pool),
                "makespan_model_s": self.pool.makespan_model_s,
                "total_model_s": self.pool.total_model_s,
                "jobs_dispatched": list(self.pool.jobs_dispatched),
                "device_faults": sum(h.total_faults for h in self.pool.health),
                "health": [h.to_dict() for h in self.pool.health],
            },
            "pending": pending,
            "model_time_s": sum(r.model_time_s for r in recs),
            "wall_time_s": self._run_wall_s,
        }

    def _attempt_ladder(
        self,
        request: SolveRequest,
        config: SolverConfig,
        device,
        dev_index: int,
        record: JobRecord,
    ) -> None:
        """Run attempts until success or every budget is exhausted.

        Three separate failure budgets apply, filling ``record``:

        * OOM/timeout walk the degradation ladder
          (``degradation.max_attempts`` launches, possibly changed
          config each rung -- any pending checkpoint is dropped, its
          window layout belongs to the old config);
        * transient device faults retry the *same* config on the same
          device (``degradation.max_transient_retries``), resuming a
          windowed search from its last completed window;
        * device loss quarantines the device and migrates the job to
          the healthiest eligible device
          (``degradation.max_migrations``), resuming from the
          checkpoint the dying solve carried out.
        """
        ladder_attempts = 0
        checkpoint = None  # resume point for the next launch
        latest = [None]  # newest completed-window checkpoint (sink cell)
        external_sink = request.checkpoint_sink

        def _resumable(cfg: SolverConfig) -> bool:
            # resume is only sound for sequential windowed max-clique
            # sweeps (other kinds carry cross-window accumulators a
            # window checkpoint cannot express)
            return (
                cfg.windowed
                and cfg.window_fanout == 1
                and cfg.problem == "max-clique"
            )

        if request.checkpoint is not None and _resumable(config):
            # checkpoint-shipped failover: a router (or caller) handed
            # us the resume point of a solve that died elsewhere
            checkpoint = request.checkpoint
            self.tracer.counter("service.checkpoint.shipped_resumes")

        while True:
            record.attempts += 1
            m0 = device.model_time_s
            if _resumable(config):
                if external_sink is not None:
                    def sink(ckpt, _latest=latest):
                        _latest[0] = ckpt
                        external_sink(ckpt)
                else:
                    sink = lambda ckpt: latest.__setitem__(0, ckpt)  # noqa: E731
            else:
                sink = None
            try:
                if self.fault_hook is not None:
                    self.fault_hook(request, record.attempts, config)
                result = MaxCliqueSolver(
                    request.graph,
                    config,
                    device,
                    tracer=self.tracer,
                    checkpoint=checkpoint,
                    checkpoint_sink=sink,
                ).solve()
            except TransientDeviceError as exc:
                record.model_time_s += device.model_time_s - m0
                record.error = f"{type(exc).__name__}: {exc}"
                kind = (
                    "flaky_alloc"
                    if isinstance(exc, FlakyAllocError)
                    else "transient_kernel"
                )
                self.tracer.counter(f"service.faults.{kind}")
                self.tracer.counter(f"device.{dev_index}.faults.{kind}")
                self.pool.note_fault(dev_index, exc)
                if record.transient_retries >= self.degradation.max_transient_retries:
                    log.debug(
                        "job %s: transient-retry budget exhausted", request.job_id
                    )
                    return
                record.transient_retries += 1
                self.tracer.counter("service.retries.transient")
                device.pool.reset_peak()
                checkpoint = latest[0]
                if checkpoint is not None:
                    self.tracer.counter("service.checkpoint.resumes")
                log.debug(
                    "job %s attempt %d: %s; retrying same config%s",
                    request.job_id,
                    record.attempts,
                    type(exc).__name__,
                    " from checkpoint" if checkpoint is not None else "",
                )
                continue
            except DeviceLostError as exc:
                record.model_time_s += device.model_time_s - m0
                record.error = f"{type(exc).__name__}: {exc}"
                self.tracer.counter("service.faults.device_lost")
                self.tracer.counter(f"device.{dev_index}.faults.device_lost")
                self.pool.note_fault(dev_index, exc)
                if record.migrations >= self.degradation.max_migrations:
                    log.debug(
                        "job %s: migration budget exhausted", request.job_id
                    )
                    return
                checkpoint = exc.checkpoint if exc.checkpoint is not None else latest[0]
                lost_index = dev_index
                dev_index, device = self.pool.least_loaded()
                self.pool.note_dispatch(dev_index)
                record.migrations += 1
                record.device = dev_index
                self.tracer.counter("service.migrations")
                with self.tracer.span(
                    "service.migrations",
                    category="service",
                    model_clock=lambda: device.model_time_s,
                    job_id=request.job_id,
                    from_device=lost_index,
                    to_device=dev_index,
                    resumed_from_checkpoint=checkpoint is not None,
                ):
                    pass
                if checkpoint is not None:
                    self.tracer.counter("service.checkpoint.resumes")
                log.debug(
                    "job %s: device %d lost, migrating to device %d%s",
                    request.job_id,
                    lost_index,
                    dev_index,
                    " (resuming from checkpoint)" if checkpoint is not None else "",
                )
                continue
            except CheckpointError as exc:
                # a shipped checkpoint failed identity validation (or
                # the config turned out non-resumable): the job fails
                # cleanly so the shipper can retry without a checkpoint
                record.model_time_s += device.model_time_s - m0
                record.error = f"{type(exc).__name__}: {exc}"
                self.tracer.counter("service.checkpoint.rejected")
                self.pool.note_success(dev_index)
                return
            except (DeviceOOMError, SolveTimeoutError) as exc:
                record.model_time_s += device.model_time_s - m0
                record.error = f"{type(exc).__name__}: {exc}"
                # the device itself functioned correctly: OOM/timeout are
                # workload outcomes, not device faults
                self.pool.note_success(dev_index)
                device.pool.reset_peak()
                log.debug(
                    "job %s attempt %d failed (%s)",
                    request.job_id, record.attempts, type(exc).__name__,
                )
                ladder_attempts += 1
                if ladder_attempts >= self.degradation.max_attempts:
                    return
                next_config = self.degradation.next_config(config, exc)
                if next_config is None:
                    return
                self.tracer.counter("service.retries")
                config = next_config
                # a checkpoint's window ranges index the *old* config's
                # ordered 2-clique list: useless under the new rung
                checkpoint = None
                latest[0] = None
                record.degraded = True
                continue
            record.model_time_s += device.model_time_s - m0
            record.status = STATUS_OK
            record.error = None
            if isinstance(result, KCliqueCountResult):
                record.k = result.k
                record.k_clique_count = result.count
                record.enumerated_all = True
            elif isinstance(result, MaximalEnumResult):
                record.num_maximal_cliques = result.num_maximal_cliques
                record.clique_number = result.max_clique_size
                record.enumerated_all = result.enumerated_all
            else:
                record.clique_number = result.clique_number
                record.num_maximum_cliques = result.num_maximum_cliques
                record.enumerated_all = result.enumerated_all
                # the executed mode degraded the answer when the caller
                # asked for full enumeration but got a single clique
                record.degraded = record.degraded or (
                    request.config.enumerate_all and not result.enumerated_all
                )
            record.stage_model_times = dict(result.stage_times)
            record.result = result
            self.pool.note_success(dev_index)
            return

    @staticmethod
    def _merge_timeout(
        config: SolverConfig, timeout_s: Optional[float]
    ) -> SolverConfig:
        """Apply the per-job wall budget; the tighter limit wins."""
        if timeout_s is None:
            return config
        if config.time_limit_s is not None and config.time_limit_s <= timeout_s:
            return config
        return replace(config, time_limit_s=timeout_s)

    def _from_cache(
        self, request: SolveRequest, cached: JobRecord, w0: float
    ) -> JobRecord:
        """A fresh record for a cache hit: zero device time charged."""
        return JobRecord(
            job_id=request.job_id,
            status=STATUS_OK,
            label=request.label,
            problem=cached.problem,
            k=cached.k,
            clique_number=cached.clique_number,
            num_maximum_cliques=cached.num_maximum_cliques,
            k_clique_count=cached.k_clique_count,
            num_maximal_cliques=cached.num_maximal_cliques,
            enumerated_all=cached.enumerated_all,
            cache_hit=True,
            attempts=0,
            admission="cache",
            admission_reason="served from the result cache",
            degraded=cached.degraded,
            device=None,
            model_time_s=0.0,
            wall_time_s=time.perf_counter() - w0,
            # how the cached result was computed, for provenance
            stage_model_times=dict(cached.stage_model_times),
            result=cached.result,
        )


@dataclass
class _JobState:
    """Per-ticket launch state threaded from placement to execution."""

    request: SolveRequest
    w0: float  #: host clock at prologue (wall-time base)
    decision: Any  #: the admission decision (accept/degrade)
    config: SolverConfig  #: decided config with the wall budget merged
    dev_index: int = -1
    device: Any = None
    record: JobRecord = field(default=None)  # type: ignore[assignment]


class _BatchPlan:
    """One scheduled batch, as the executor hooks the engine defines.

    Implements :class:`repro.engine.executor.BatchPlan` over a
    :class:`SolveService` and an already-ordered request list. The
    split mirrors the historical serial loop exactly:

    * :meth:`prologue` -- cache probe and admission decision; cache
      hits and rejects finish here;
    * :meth:`place` -- least-loaded (or executor-chosen) device,
      dispatch accounting, the skeleton :class:`JobRecord`;
    * :meth:`run` -- the ``service.job`` span around the attempt
      ladder (the only hook executors may call off-thread);
    * :meth:`commit` -- outcome counters, the result-cache insert,
      the service record log.

    ``sequential_required`` is True whenever overlapped execution
    could be observed: a fault source is present (injector plan or
    test hook -- health transitions and checkpoint resumes are
    ordered by the pool's dispatch clock), a recording tracer is
    attached (span/kernel streams would interleave), or this batch
    could evict from the result cache (eviction makes probes of
    distinct keys order-sensitive).
    """

    def __init__(self, service: SolveService, ordered: List[SolveRequest]) -> None:
        self.service = service
        self.ordered = ordered
        self.n = len(ordered)
        self.num_devices = len(service.pool)
        self._keys: List[Tuple[str, str]] = [
            request_key(r.graph, r.config) for r in ordered
        ]
        self._states: List[Optional[_JobState]] = [None] * self.n
        cache = service.cache
        new_keys = {k for k in self._keys if k not in cache}
        evict_possible = (
            cache.capacity > 0 and len(cache) + len(new_keys) > cache.capacity
        )
        self.sequential_required = (
            service.fault_hook is not None
            or service.pool.has_fault_injectors
            or service.tracer.enabled
            or evict_possible
        )

    def key(self, ticket: int) -> Tuple[str, str]:
        return self._keys[ticket]

    def device_clock(self, device_index: int) -> float:
        return self.service.pool.devices[device_index].model_time_s

    def prologue(self, ticket: int) -> Optional[JobRecord]:
        svc = self.service
        request = self.ordered[ticket]
        w0 = time.perf_counter()
        cached = svc.cache.get(self._keys[ticket])
        if cached is not None:
            return svc._from_cache(request, cached, w0)

        decision = svc.admission.decide(
            request.graph, request.config, svc.pool.spec.memory_bytes
        )
        svc.tracer.counter(f"service.admit.{decision.decision}")
        if decision.decision == REJECT:
            svc.tracer.counter("service.jobs.rejected")
            log.debug("job %s rejected: %s", request.job_id, decision.reason)
            return JobRecord(
                job_id=request.job_id,
                status=STATUS_REJECTED,
                label=request.label,
                problem=request.config.problem,
                k=request.config.k,
                admission=decision.decision,
                admission_reason=decision.reason,
                wall_time_s=time.perf_counter() - w0,
                error=decision.reason,
            )

        timeout_s = (
            request.timeout_s
            if request.timeout_s is not None
            else svc.default_timeout_s
        )
        deadline = getattr(request, "deadline", None)
        if deadline is not None and deadline.at is not None:
            # the caller's end-to-end budget, shrunk by queueing and
            # transit: fold what remains into the wall-time limit (the
            # tighter wins; clamped positive so config validation holds
            # in the already-expired race the bridge normally catches)
            remaining = max(deadline.at - time.perf_counter(), 1e-6)
            timeout_s = (
                remaining if timeout_s is None else min(timeout_s, remaining)
            )
        config = svc._merge_timeout(decision.config, timeout_s)
        self._states[ticket] = _JobState(
            request=request, w0=w0, decision=decision, config=config
        )
        return None

    def place(self, ticket: int, device_index: Optional[int]) -> _JobState:
        svc = self.service
        st = self._states[ticket]
        assert st is not None
        if device_index is None:
            st.dev_index, st.device = svc.pool.least_loaded()
        else:
            # the executor proved this is the device serial placement
            # would pick; all devices are healthy in that regime
            st.dev_index = device_index
            st.device = svc.pool.devices[device_index]
        svc.pool.note_dispatch(st.dev_index)
        st.record = JobRecord(
            job_id=st.request.job_id,
            status=STATUS_FAILED,
            label=st.request.label,
            problem=st.request.config.problem,
            k=st.request.config.k,
            admission=st.decision.decision,
            admission_reason=st.decision.reason,
            device=st.dev_index,
        )
        return st

    def run(self, ticket: int, state: _JobState) -> JobRecord:
        svc = self.service
        record = state.record
        with svc.tracer.span(
            "service.job",
            category="service",
            model_clock=lambda: svc.pool.devices[
                record.device if record.device is not None else state.dev_index
            ].model_time_s,
            job_id=state.request.job_id,
            device=state.dev_index,
            admission=state.decision.decision,
        ):
            svc._attempt_ladder(
                state.request, state.config, state.device, state.dev_index, record
            )
        record.wall_time_s = time.perf_counter() - state.w0
        return record

    def commit(self, ticket: int, record: JobRecord) -> None:
        svc = self.service
        if self._states[ticket] is not None:  # executed (not cache/reject)
            if record.status == STATUS_OK:
                svc.tracer.counter("service.jobs.ok")
                # degraded records are NOT cached: they carry the executed
                # (degraded) answer but would be keyed under the *requested*
                # config, poisoning identical future requests that might
                # well succeed un-degraded (e.g. after cache churn frees
                # memory or the ladder's first rung was a fluke)
                if not record.degraded:
                    svc.cache.put(self._keys[ticket], record)
            else:
                svc.tracer.counter("service.jobs.failed")
        with svc._stats_lock:
            svc.records.append(record)
        log.debug(
            "job %s: %s%s omega=%s attempts=%d model=%.3f ms",
            record.job_id,
            record.status,
            " (cache)" if record.cache_hit else "",
            record.clique_number,
            record.attempts,
            record.model_time_s * 1e3,
        )
