"""Failure policy: the degradation ladder.

When a launched solve still fails -- the admission estimate was wrong
(OOM) or the job ran out of wall-clock budget (timeout) -- the service
does not fail the job outright. It walks a *degradation ladder*: each
rung trades answer quality or speed for feasibility, mirroring how the
paper's evaluation falls back from full enumeration to the windowed
single-clique search when memory runs out (Section IV-E, Table I).

Rungs on :class:`~repro.errors.DeviceOOMError`:

1. full search -> windowed search (auto-sized windows + adaptive
   splitting), which finds *one* maximum clique under the budget;
2. windowed -> windowed with the window halved (down to
   ``min_window``) and adaptive splitting forced on;
3. below ``min_window`` there is nothing left to shrink: give up.

Rungs on :class:`~repro.errors.SolveTimeoutError`:

1. full enumeration -> single-clique early-exit search (windowed with
   the sound early-termination of Algorithm 2 line 36), the cheapest
   exact mode;
2. already in the cheapest mode: give up (retrying the same work
   against the same wall clock cannot succeed).

Every retry re-runs the whole pipeline on the same device; the service
accounts the failed attempts' model time to the job and marks the
record ``degraded`` whenever the executed config no longer enumerates
everything the requested config asked for.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.config import SolverConfig
from ..errors import DeviceOOMError, SolveTimeoutError

__all__ = ["DegradationPolicy"]


class DegradationPolicy:
    """Maps (failed config, error) to the next config to try.

    Parameters
    ----------
    max_attempts:
        Total attempts allowed per job, the first launch included.
    min_window:
        Smallest window the OOM ladder will shrink to.
    """

    def __init__(self, max_attempts: int = 3, min_window: int = 64) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if min_window < 1:
            raise ValueError("min_window must be at least 1")
        self.max_attempts = max_attempts
        self.min_window = min_window

    def next_config(
        self, config: SolverConfig, error: BaseException
    ) -> Optional[SolverConfig]:
        """The next rung down, or None when the ladder is exhausted."""
        if isinstance(error, DeviceOOMError):
            return self._after_oom(config)
        if isinstance(error, SolveTimeoutError):
            return self._after_timeout(config)
        return None  # not a retryable failure

    # ------------------------------------------------------------------
    def _after_oom(self, config: SolverConfig) -> Optional[SolverConfig]:
        if not config.windowed:
            # rung 1: fall back to the windowed single-clique search
            return replace(
                config,
                window_size="auto",
                adaptive_windowing=True,
                window_fanout=1,
                early_exit_heuristic=False,
            )
        # rung 2+: shrink the window; "auto" evidently over-sized, so
        # restart the ladder from a known-small fixed window
        if isinstance(config.window_size, str):
            next_window = max(self.min_window, 1024)
        else:
            if config.window_size <= self.min_window and config.adaptive_windowing:
                return None  # nothing left to shrink
            next_window = max(self.min_window, config.window_size // 2)
        return replace(
            config,
            window_size=next_window,
            adaptive_windowing=True,
            window_fanout=1,
            early_exit_heuristic=False,
        )

    def _after_timeout(self, config: SolverConfig) -> Optional[SolverConfig]:
        if config.enumerate_all:
            # rung 1: stop enumerating; find one maximum clique with the
            # early-exit bound, the cheapest exact mode
            return replace(
                config,
                window_size=(
                    config.window_size if config.window_size is not None else "auto"
                ),
                adaptive_windowing=config.window_fanout == 1,
                enumerate_all=False,
                early_exit_heuristic=config.window_fanout == 1,
            )
        if not config.early_exit_heuristic and config.window_fanout == 1:
            return replace(config, early_exit_heuristic=True)
        return None  # already in the cheapest mode
