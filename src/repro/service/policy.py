"""Failure policy: the degradation ladder.

When a launched solve still fails -- the admission estimate was wrong
(OOM) or the job ran out of wall-clock budget (timeout) -- the service
does not fail the job outright. It walks a *degradation ladder*: each
rung trades answer quality or speed for feasibility, mirroring how the
paper's evaluation falls back from full enumeration to the windowed
single-clique search when memory runs out (Section IV-E, Table I).

Rungs on :class:`~repro.errors.DeviceOOMError`:

1. full search -> windowed search (auto-sized windows + adaptive
   splitting), which finds *one* maximum clique under the budget;
2. windowed -> windowed with the window halved (down to
   ``min_window``) and adaptive splitting forced on;
3. below ``min_window`` there is nothing left to shrink: give up.

Rungs on :class:`~repro.errors.SolveTimeoutError`:

1. full enumeration -> single-clique early-exit search (windowed with
   the sound early-termination of Algorithm 2 line 36), the cheapest
   exact mode;
2. already in the cheapest mode: give up (retrying the same work
   against the same wall clock cannot succeed).

Every retry re-runs the whole pipeline on the same device; the service
accounts the failed attempts' model time to the job and marks the
record ``degraded`` whenever the executed config no longer enumerates
everything the requested config asked for.

*Transient* device faults (:class:`~repro.errors.TransientDeviceError`:
injected kernel/alloc glitches) are deliberately **not** ladder rungs:
degrading the configuration in response to a fault that retrying
survives would change the answer for no reason. The service retries
the *same* configuration on the same device, bounded by
``max_transient_retries``. Device loss
(:class:`~repro.errors.DeviceLostError`) migrates the job to a healthy
device instead, bounded by ``max_migrations`` -- again with the same
configuration, resuming from the last checkpoint when one exists.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.config import SolverConfig
from ..errors import DeviceOOMError, SolveTimeoutError

__all__ = ["DegradationPolicy"]


class DegradationPolicy:
    """Maps (failed config, error) to the next config to try.

    Parameters
    ----------
    max_attempts:
        Ladder attempts allowed per job (launches that end in
        OOM/timeout, the first launch included). Transient-fault
        retries and migrations are budgeted separately -- they never
        consume ladder attempts.
    min_window:
        Smallest window the OOM ladder will shrink to.
    max_transient_retries:
        Same-config retries allowed per job in response to transient
        device faults (injected kernel/alloc glitches).
    max_migrations:
        Device migrations allowed per job in response to device loss.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        min_window: int = 64,
        max_transient_retries: int = 3,
        max_migrations: int = 2,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if min_window < 1:
            raise ValueError("min_window must be at least 1")
        if max_transient_retries < 0:
            raise ValueError("max_transient_retries must be non-negative")
        if max_migrations < 0:
            raise ValueError("max_migrations must be non-negative")
        self.max_attempts = max_attempts
        self.min_window = min_window
        self.max_transient_retries = max_transient_retries
        self.max_migrations = max_migrations

    def next_config(
        self, config: SolverConfig, error: BaseException
    ) -> Optional[SolverConfig]:
        """The next rung down, or None when the ladder is exhausted."""
        if isinstance(error, DeviceOOMError):
            return self._after_oom(config)
        if isinstance(error, SolveTimeoutError):
            return self._after_timeout(config)
        return None  # not a retryable failure

    # ------------------------------------------------------------------
    def _after_oom(self, config: SolverConfig) -> Optional[SolverConfig]:
        if not config.windowed:
            # rung 1: fall back to the windowed single-clique search
            return replace(
                config,
                window_size="auto",
                adaptive_windowing=True,
                window_fanout=1,
                early_exit_heuristic=False,
            )
        # rung 2+: shrink the window; "auto" evidently over-sized, so
        # restart the ladder from a known-small fixed window
        if isinstance(config.window_size, str):
            next_window = max(self.min_window, 1024)
        else:
            if config.window_size <= self.min_window and config.adaptive_windowing:
                return None  # nothing left to shrink
            next_window = max(self.min_window, config.window_size // 2)
        return replace(
            config,
            window_size=next_window,
            adaptive_windowing=True,
            window_fanout=1,
            early_exit_heuristic=False,
        )

    def _after_timeout(self, config: SolverConfig) -> Optional[SolverConfig]:
        if config.enumerate_all:
            # rung 1: stop enumerating; find one maximum clique with the
            # early-exit bound, the cheapest exact mode
            return replace(
                config,
                window_size=(
                    config.window_size if config.window_size is not None else "auto"
                ),
                adaptive_windowing=config.window_fanout == 1,
                enumerate_all=False,
                early_exit_heuristic=config.window_fanout == 1,
            )
        if not config.early_exit_heuristic and config.window_fanout == 1:
            return replace(config, early_exit_heuristic=True)
        return None  # already in the cheapest mode
