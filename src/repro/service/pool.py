"""The self-healing simulated device pool.

Placement and health accounting for the service's devices, split out
of the scheduler so ordering policy (:mod:`repro.service.scheduler`)
and placement/health stay independently testable. Jobs land on the
*eligible* device with the least accumulated model time (greedy
longest-processing-time balancing); each device carries a
:class:`DeviceHealth` circuit breaker driven by the pool's
deterministic dispatch clock (see docs/SERVICE.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DeviceLostError
from ..gpusim.device import Device
from ..gpusim.spec import DeviceSpec

__all__ = [
    "DevicePool",
    "DeviceHealth",
    "HEALTHY",
    "QUARANTINED",
    "PROBATION",
]

#: device health states (circuit-breaker machine)
HEALTHY = "healthy"
QUARANTINED = "quarantined"
PROBATION = "probation"


@dataclass
class DeviceHealth:
    """Circuit-breaker accounting for one pool device.

    The state machine is ``healthy -> quarantined -> probation ->
    healthy`` (see docs/SERVICE.md): faults accumulate while healthy;
    crossing the threshold (or any device loss) quarantines the device
    for an exponential-backoff number of *dispatches* (the pool's
    deterministic clock -- no wall time); a quarantined device whose
    backoff expired serves one probation job, and that job's outcome
    decides between full health and a re-quarantine with the backoff
    doubled.
    """

    state: str = HEALTHY
    consecutive_faults: int = 0
    total_faults: int = 0
    #: pool dispatch-clock value at the most recent fault
    last_fault_ordinal: Optional[int] = None
    #: dispatch-clock value at which quarantine lapses into probation
    quarantined_until: int = 0
    #: current backoff length in dispatches (doubles per re-quarantine)
    backoff: int = 0
    quarantines: int = 0
    #: lost devices replaced on revival
    replacements: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_faults": self.consecutive_faults,
            "total_faults": self.total_faults,
            "last_fault_ordinal": self.last_fault_ordinal,
            "quarantines": self.quarantines,
            "replacements": self.replacements,
        }


class DevicePool:
    """A self-healing pool of simulated devices with least-loaded placement.

    Every device is constructed from the same spec; jobs land on the
    *eligible* device with the least accumulated model time (ties:
    lowest index), which is greedy makespan balancing. Devices
    accumulate state across jobs exactly as shared devices do (see
    ``Device`` notes) -- the pool's ``makespan_model_s`` is what a real
    multi-device deployment would wait for.

    Health: each device carries a :class:`DeviceHealth` circuit
    breaker. The service reports faults (:meth:`note_fault`) and
    successes (:meth:`note_success`); the pool quarantines devices
    after ``fault_threshold`` consecutive faults (immediately on
    device loss), backs off exponentially starting at ``backoff_base``
    dispatches, and revives lost devices with a replacement that
    inherits the old device's model clock (makespan continuity) and
    fault injector (plan ordinals keep counting). A pool can never
    starve: when every device is quarantined, the one whose backoff
    expires first is force-revived.
    """

    def __init__(
        self,
        size: int = 1,
        spec: Optional[DeviceSpec] = None,
        fault_threshold: int = 3,
        backoff_base: int = 2,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be at least 1")
        if fault_threshold < 1:
            raise ValueError("fault_threshold must be at least 1")
        if backoff_base < 1:
            raise ValueError("backoff_base must be at least 1")
        self.spec = spec if spec is not None else DeviceSpec()
        self.devices = [Device(self.spec) for _ in range(size)]
        self.jobs_dispatched = [0] * size
        self.health = [DeviceHealth() for _ in range(size)]
        self.fault_threshold = fault_threshold
        self.backoff_base = backoff_base
        #: dispatch clock: total jobs dispatched (quarantine time base)
        self.clock = 0
        self._injectors: List[Optional[object]] = [None] * size

    def __len__(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------
    # fault plan installation
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan) -> None:
        """Install a :class:`~repro.gpusim.faults.FaultPlan`'s injectors.

        Devices the plan never faults get no injector at all (their
        launch/alloc paths stay zero-overhead).
        """
        for i, device in enumerate(self.devices):
            injector = plan.injector_for(i)
            self._injectors[i] = injector
            if injector is not None:
                device.set_fault_injector(injector)

    @property
    def has_fault_injectors(self) -> bool:
        """True when any pool device carries an installed injector."""
        return any(inj is not None for inj in self._injectors)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def least_loaded(self) -> Tuple[int, Device]:
        """The eligible (index, device) with the least model time.

        Eligible means healthy, on probation, or quarantined with an
        expired backoff (lapses into probation here, replacing a lost
        device). When *no* device is eligible the one whose quarantine
        expires soonest is force-revived -- a pool cannot starve.
        """
        eligible = [i for i in range(len(self.devices)) if self._eligible(i)]
        if not eligible:
            i = min(
                range(len(self.devices)),
                key=lambda i: (self.health[i].quarantined_until, i),
            )
            self._enter_probation(i)
            eligible = [i]
        i = min(eligible, key=lambda i: (self.devices[i].model_time_s, i))
        return i, self.devices[i]

    def _eligible(self, index: int) -> bool:
        h = self.health[index]
        if h.state == QUARANTINED:
            if self.clock >= h.quarantined_until:
                self._enter_probation(index)
                return True
            return False
        return True

    def _enter_probation(self, index: int) -> None:
        h = self.health[index]
        h.state = PROBATION
        if self.devices[index].lost:
            self._replace_device(index)

    def _replace_device(self, index: int) -> None:
        """Swap in a fresh device for a lost one (simulated node repair).

        The replacement inherits the old device's model clock so pool
        makespan accounting stays continuous, and the same fault
        injector so a plan's later ordinals still land.
        """
        old = self.devices[index]
        fresh = Device(self.spec)
        fresh.charge_time(old.model_time_s)
        injector = self._injectors[index]
        if injector is not None:
            fresh.set_fault_injector(injector)
        self.devices[index] = fresh
        self.health[index].replacements += 1

    def note_dispatch(self, index: int) -> None:
        """Record that a job was launched on device ``index``."""
        self.jobs_dispatched[index] += 1
        self.clock += 1

    # ------------------------------------------------------------------
    # health reporting (called by the service)
    # ------------------------------------------------------------------
    def note_fault(self, index: int, error: BaseException) -> None:
        """Account one device fault; quarantine when the breaker trips.

        Device loss and any fault during probation quarantine
        immediately; transient faults quarantine after
        ``fault_threshold`` consecutive ones.
        """
        h = self.health[index]
        h.total_faults += 1
        h.consecutive_faults += 1
        h.last_fault_ordinal = self.clock
        if (
            isinstance(error, DeviceLostError)
            or h.state == PROBATION
            or h.consecutive_faults >= self.fault_threshold
        ):
            self._quarantine(index)

    def _quarantine(self, index: int) -> None:
        h = self.health[index]
        h.state = QUARANTINED
        h.quarantines += 1
        h.backoff = self.backoff_base * (2 ** (h.quarantines - 1))
        h.quarantined_until = self.clock + h.backoff
        h.consecutive_faults = 0

    def note_success(self, index: int) -> None:
        """Account a fault-free job: probation devices regain health."""
        h = self.health[index]
        h.consecutive_faults = 0
        if h.state == PROBATION:
            h.state = HEALTHY

    # ------------------------------------------------------------------
    @property
    def makespan_model_s(self) -> float:
        """Model time of the busiest device (pool completion time)."""
        return max(d.model_time_s for d in self.devices)

    @property
    def total_model_s(self) -> float:
        """Model time summed over all devices (serial-equivalent)."""
        return sum(d.model_time_s for d in self.devices)

    def summary(self) -> List[dict]:
        """Per-device load and health figures for reports."""
        return [
            {
                "device": i,
                "jobs": self.jobs_dispatched[i],
                "model_time_s": d.model_time_s,
                "mem_peak_bytes": d.pool.peak_bytes,
                "health": self.health[i].to_dict(),
            }
            for i, d in enumerate(self.devices)
        ]
