"""Result cache keyed by graph content + solver configuration.

Identical requests are common in serving workloads (the same graph
re-queried, sweeps re-running a shared baseline), and a maximum-clique
solve is a pure function of ``(graph, config)`` -- so the service
memoises completed jobs. The key combines
:meth:`repro.graph.csr.CSRGraph.fingerprint` (stable content hash of
the CSR arrays) with a canonical rendering of the *result-relevant*
:class:`~repro.core.config.SolverConfig` fields; host-side-only knobs
(``chunk_pairs``, ``time_limit_s``) are excluded so two requests that
differ only in wall-time budget still share a result.

Eviction is LRU with a bounded entry count. Hit/miss counters are kept
locally and surfaced through the PR-1 tracer as the
``service.cache.hits`` / ``service.cache.misses`` counters (see
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

# config_fingerprint moved to core.config (checkpoints stamp it too);
# re-exported here for backwards compatibility
from ..core.config import SolverConfig, config_fingerprint
from ..graph.csr import CSRGraph
from ..trace import NULL_TRACER, Tracer

__all__ = ["ResultCache", "config_fingerprint", "request_key"]


def request_key(graph: CSRGraph, config: SolverConfig) -> Tuple[str, str]:
    """The cache key of one ``(graph, config)`` request."""
    return (graph.fingerprint(), config_fingerprint(config))


class ResultCache:
    """Bounded LRU cache of completed job records.

    Parameters
    ----------
    capacity:
        Maximum number of cached entries; 0 disables caching (every
        lookup misses, nothing is stored).
    tracer:
        Tracer receiving ``service.cache.hits`` / ``.misses`` /
        ``.evictions`` counters; the default no-op tracer records
        nothing.
    """

    def __init__(self, capacity: int = 128, tracer: Tracer = NULL_TRACER) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.tracer = tracer
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Tuple[str, str], object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        """Membership probe; counts neither a hit nor a miss."""
        return key in self._entries

    def get(self, key: Tuple[str, str]) -> Optional[object]:
        """Return the cached value or None; counts a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self.tracer.counter("service.cache.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.tracer.counter("service.cache.hits")
        return entry

    def put(self, key: Tuple[str, str], value: object) -> None:
        """Insert/refresh an entry, evicting the LRU one past capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.tracer.counter("service.cache.evictions")

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()
