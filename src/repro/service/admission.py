"""Memory-aware admission control.

The paper frames windowing as a memory/parallelism trade-off: the full
breadth-first search is fastest but must hold every candidate of a
level simultaneously, while the windowed search bounds peak memory at
the cost of extra launches (Sections IV-E, V-C). Deciding *before*
launch which side of that trade-off a job lands on is the admission
controller's purpose: it estimates the device bytes a solve will need
from the same quantities :mod:`repro.gpusim` charges (CSR residency,
2-clique list nodes, Moon-Moser candidate expansion -- the estimator
used by ``repro.core.windowed.auto_window_size``) and picks one of

* **full** -- the plain breadth-first enumeration fits comfortably;
* **windowed** -- the full search is projected over budget, so the
  config is rewritten to the windowed search (``window_size="auto"``
  plus adaptive splitting) instead of letting it OOM-fail;
* **reject** -- even the windowed floor (CSR residency + working sets
  + the 2-clique list) exceeds the budget; the job is refused with a
  reason before any device time is charged.

The estimate is deliberately coarse -- it brackets the search between
"no pruning" (Moon-Moser expansion of the average sublist tail) and
the windowed floor -- and errs toward windowing; the degradation
ladder (:mod:`repro.service.policy`) catches the cases it gets wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.config import SolverConfig
from ..graph.csr import CSRGraph

__all__ = ["MemoryEstimate", "AdmissionDecision", "AdmissionController", "estimate_memory"]

#: decision identifiers
ADMIT_FULL = "full"
ADMIT_WINDOWED = "windowed"
REJECT = "reject"

#: bytes per clique-list entry: int32 vertexID + int32 sublistID
#: (matches ``repro.core.clique_list`` node layout)
BYTES_PER_CANDIDATE = 8

#: per-vertex scratch charged by preprocess/heuristic stages
#: (rank array + heuristic working sets, a few int32 arrays)
WORKING_BYTES_PER_VERTEX = 16

#: Moon-Moser tail cap, as in ``auto_window_size``
_TAIL_CAP = 48.0


@dataclass(frozen=True)
class MemoryEstimate:
    """Projected device-memory needs of one solve, in bytes."""

    csr_bytes: int  #: CSR residency (row_offsets + col_indices)
    working_bytes: int  #: preprocess/heuristic scratch
    two_clique_bytes: int  #: the root clique-list node (oriented edges)
    expansion_factor: float  #: Moon-Moser growth of the candidate set
    full_search_bytes: int  #: projected total clique-list storage, full BF

    @property
    def full_total_bytes(self) -> int:
        """Projected peak of the full breadth-first search."""
        return (
            self.csr_bytes
            + self.working_bytes
            + self.two_clique_bytes
            + self.full_search_bytes
        )

    @property
    def windowed_floor_bytes(self) -> int:
        """Minimum bytes any windowed run needs (CSR + setup transient
        + one window's working set)."""
        return self.csr_bytes + self.working_bytes + 2 * self.two_clique_bytes


def estimate_memory(graph: CSRGraph, config: Optional[SolverConfig] = None) -> MemoryEstimate:
    """Estimate the device memory a solve of ``graph`` will need.

    Mirrors what the device pool actually charges: the CSR arrays stay
    resident for the whole solve, setup materialises one clique-list
    entry per oriented edge, and the breadth-first levels grow that
    root by a Moon-Moser factor of the average sublist tail (the full
    search never frees a level, Section II-D).

    The estimate is kind-aware: a ``k-clique-count`` solve stops its
    level loop at level ``k``, so its expansion is the depth-truncated
    per-level growth ``(1 + avg_tail)^(k-2)`` (never more than the
    open-ended Moon-Moser bound); ``maximal-enum`` runs the same
    unbounded expansion as ``max-clique`` (Moon-Moser is already the
    no-pruning bound).
    """
    n = max(graph.num_vertices, 1)
    m = graph.num_edges  # oriented 2-cliques: one per undirected edge
    two_clique = BYTES_PER_CANDIDATE * m
    avg_tail = max(m / n - 1.0, 0.0)
    expansion = float(3.0 ** (min(avg_tail, _TAIL_CAP) / 3.0))
    if config is not None and config.problem == "k-clique-count":
        k = int(config.k if config.k is not None else 3)
        if k <= 2:
            truncated = 1.0  # closed form, no level loop runs
        else:
            truncated = float((1.0 + min(avg_tail, _TAIL_CAP)) ** min(k - 2, 32))
        expansion = min(expansion, truncated)
    return MemoryEstimate(
        csr_bytes=graph.nbytes,
        working_bytes=WORKING_BYTES_PER_VERTEX * graph.num_vertices,
        two_clique_bytes=two_clique,
        expansion_factor=expansion,
        full_search_bytes=int(two_clique * expansion),
    )


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of admission control for one job."""

    decision: str  #: "full" | "windowed" | "reject"
    reason: str
    config: SolverConfig  #: the configuration to execute (may differ)
    estimate: MemoryEstimate
    budget_bytes: Optional[int]

    @property
    def admitted(self) -> bool:
        return self.decision != REJECT


class AdmissionController:
    """Decides full vs. windowed vs. reject before launching a solve.

    Parameters
    ----------
    safety_factor:
        Fraction of the device budget the *full* search estimate must
        fit within to be admitted un-windowed; headroom covers
        estimate error and primitive temporaries.
    """

    def __init__(self, safety_factor: float = 0.8) -> None:
        if not 0.0 < safety_factor <= 1.0:
            raise ValueError("safety_factor must be in (0, 1]")
        self.safety_factor = safety_factor

    def decide(
        self,
        graph: CSRGraph,
        config: SolverConfig,
        budget_bytes: Optional[int],
    ) -> AdmissionDecision:
        """Pick the launch mode for one job against a device budget."""
        estimate = estimate_memory(graph, config)
        if budget_bytes is None:
            return AdmissionDecision(
                decision=ADMIT_WINDOWED if config.windowed else ADMIT_FULL,
                reason="unbounded device budget",
                config=config,
                estimate=estimate,
                budget_bytes=None,
            )
        if estimate.windowed_floor_bytes > budget_bytes:
            return AdmissionDecision(
                decision=REJECT,
                reason=(
                    f"windowed floor {estimate.windowed_floor_bytes} B "
                    f"(CSR {estimate.csr_bytes} B + working "
                    f"{estimate.working_bytes} B + 2-clique list "
                    f"{estimate.two_clique_bytes} B) exceeds the "
                    f"{budget_bytes} B device budget"
                ),
                config=config,
                estimate=estimate,
                budget_bytes=budget_bytes,
            )
        full_fits = (
            estimate.full_total_bytes <= self.safety_factor * budget_bytes
        )
        if config.windowed:
            # the caller asked for windowing: keep their window settings
            return AdmissionDecision(
                decision=ADMIT_WINDOWED,
                reason="windowed search requested by configuration",
                config=config,
                estimate=estimate,
                budget_bytes=budget_bytes,
            )
        if full_fits:
            return AdmissionDecision(
                decision=ADMIT_FULL,
                reason=(
                    f"full-search estimate {estimate.full_total_bytes} B fits "
                    f"{self.safety_factor:.0%} of the {budget_bytes} B budget"
                ),
                config=config,
                estimate=estimate,
                budget_bytes=budget_bytes,
            )
        return AdmissionDecision(
            decision=ADMIT_WINDOWED,
            reason=(
                f"full-search estimate {estimate.full_total_bytes} B exceeds "
                f"{self.safety_factor:.0%} of the {budget_bytes} B budget "
                f"(x{estimate.expansion_factor:.1f} Moon-Moser expansion); "
                f"admitting windowed"
            ),
            config=windowed_variant(config),
            estimate=estimate,
            budget_bytes=budget_bytes,
        )


def windowed_variant(config: SolverConfig) -> SolverConfig:
    """The windowed rewrite of a full-search configuration.

    Auto-sized windows (Moon-Moser, ``auto_window_size``) plus adaptive
    splitting, so windows that still exceed the budget split and retry
    instead of failing. ``window_fanout > 1`` is incompatible with
    adaptive splitting and is preserved as-is.
    """
    window_size = config.window_size if config.window_size is not None else "auto"
    if config.window_fanout > 1:
        return replace(config, window_size=window_size)
    return replace(
        config,
        window_size=window_size,
        adaptive_windowing=True,
        early_exit_heuristic=False,
    )
