"""Job ordering and the simulated device pool.

Scheduling policy -- not the kernel alone -- decides throughput on
real multi-request workloads (cf. Almasri et al.; Pattabiraman et
al.). The service keeps the two scheduling levers explicit and
deterministic:

* **ordering** (:class:`Scheduler`): ``"fifo"`` preserves submission
  order; ``"sef"`` (shortest-expected-first) orders by a cheap
  structural cost estimate so small jobs are not stuck behind
  monsters -- the classic mean-latency optimisation. Priority always
  dominates: higher-priority jobs run first under either policy.
* **placement** (:class:`DevicePool`): jobs go to the least-loaded of
  a pool of simulated devices (least accumulated model time, i.e.
  greedy longest-processing-time balancing). Host execution is
  serial; the pool models what a multi-GPU deployment's makespan
  would be, reported as ``makespan_model_s``.

The cost estimate is the dominant work term of the paper's Algorithm
2: every candidate check binary-searches an adjacency list, so
expected work scales with ``edges x log2(max_degree)``, scaled up by
the Moon-Moser expansion of the average sublist tail for dense,
hard-to-prune inputs (Section V-B2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DeviceLostError
from ..graph.csr import CSRGraph
from ..gpusim.device import Device
from ..gpusim.spec import DeviceSpec
from .request import SolveRequest

__all__ = ["Scheduler", "DevicePool", "DeviceHealth", "expected_cost"]

#: device health states (circuit-breaker machine)
HEALTHY = "healthy"
QUARANTINED = "quarantined"
PROBATION = "probation"

#: valid ordering policies
POLICIES = ("fifo", "sef")


def expected_cost(graph: CSRGraph) -> float:
    """Cheap structural proxy for a solve's expected model time.

    ``m * log2(max_degree + 2)`` is the binary-search work of scanning
    the 2-clique list once; the Moon-Moser factor of the average
    sublist tail accounts for candidate-set expansion on dense graphs.
    Only O(1) CSR properties are read -- scheduling must stay far
    cheaper than solving.
    """
    n = max(graph.num_vertices, 1)
    m = graph.num_edges
    avg_tail = max(m / n - 1.0, 0.0)
    expansion = 3.0 ** (min(avg_tail, 48.0) / 3.0)
    return m * math.log2(graph.max_degree + 2.0) * expansion


class Scheduler:
    """Orders submitted jobs for execution.

    Parameters
    ----------
    policy:
        ``"fifo"`` (submission order) or ``"sef"``
        (shortest-expected-first by :func:`expected_cost`). Priority
        sorts before either key; submission order breaks all ties, so
        schedules are fully deterministic.
    """

    def __init__(self, policy: str = "fifo") -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; expected one of {POLICIES}"
            )
        self.policy = policy

    def order(self, requests: List[SolveRequest]) -> List[SolveRequest]:
        """Return the execution order of ``requests`` (stable, pure)."""
        if self.policy == "fifo":
            return sorted(requests, key=lambda r: (-r.priority, r.seq))
        return sorted(
            requests,
            key=lambda r: (-r.priority, expected_cost(r.graph), r.seq),
        )


@dataclass
class DeviceHealth:
    """Circuit-breaker accounting for one pool device.

    The state machine is ``healthy -> quarantined -> probation ->
    healthy`` (see docs/SERVICE.md): faults accumulate while healthy;
    crossing the threshold (or any device loss) quarantines the device
    for an exponential-backoff number of *dispatches* (the pool's
    deterministic clock -- no wall time); a quarantined device whose
    backoff expired serves one probation job, and that job's outcome
    decides between full health and a re-quarantine with the backoff
    doubled.
    """

    state: str = HEALTHY
    consecutive_faults: int = 0
    total_faults: int = 0
    #: pool dispatch-clock value at the most recent fault
    last_fault_ordinal: Optional[int] = None
    #: dispatch-clock value at which quarantine lapses into probation
    quarantined_until: int = 0
    #: current backoff length in dispatches (doubles per re-quarantine)
    backoff: int = 0
    quarantines: int = 0
    #: lost devices replaced on revival
    replacements: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_faults": self.consecutive_faults,
            "total_faults": self.total_faults,
            "last_fault_ordinal": self.last_fault_ordinal,
            "quarantines": self.quarantines,
            "replacements": self.replacements,
        }


class DevicePool:
    """A self-healing pool of simulated devices with least-loaded placement.

    Every device is constructed from the same spec; jobs land on the
    *eligible* device with the least accumulated model time (ties:
    lowest index), which is greedy makespan balancing. Devices
    accumulate state across jobs exactly as shared devices do (see
    ``Device`` notes) -- the pool's ``makespan_model_s`` is what a real
    multi-device deployment would wait for.

    Health: each device carries a :class:`DeviceHealth` circuit
    breaker. The service reports faults (:meth:`note_fault`) and
    successes (:meth:`note_success`); the pool quarantines devices
    after ``fault_threshold`` consecutive faults (immediately on
    device loss), backs off exponentially starting at ``backoff_base``
    dispatches, and revives lost devices with a replacement that
    inherits the old device's model clock (makespan continuity) and
    fault injector (plan ordinals keep counting). A pool can never
    starve: when every device is quarantined, the one whose backoff
    expires first is force-revived.
    """

    def __init__(
        self,
        size: int = 1,
        spec: Optional[DeviceSpec] = None,
        fault_threshold: int = 3,
        backoff_base: int = 2,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be at least 1")
        if fault_threshold < 1:
            raise ValueError("fault_threshold must be at least 1")
        if backoff_base < 1:
            raise ValueError("backoff_base must be at least 1")
        self.spec = spec if spec is not None else DeviceSpec()
        self.devices = [Device(self.spec) for _ in range(size)]
        self.jobs_dispatched = [0] * size
        self.health = [DeviceHealth() for _ in range(size)]
        self.fault_threshold = fault_threshold
        self.backoff_base = backoff_base
        #: dispatch clock: total jobs dispatched (quarantine time base)
        self.clock = 0
        self._injectors: List[Optional[object]] = [None] * size

    def __len__(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------
    # fault plan installation
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan) -> None:
        """Install a :class:`~repro.gpusim.faults.FaultPlan`'s injectors.

        Devices the plan never faults get no injector at all (their
        launch/alloc paths stay zero-overhead).
        """
        for i, device in enumerate(self.devices):
            injector = plan.injector_for(i)
            self._injectors[i] = injector
            if injector is not None:
                device.set_fault_injector(injector)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def least_loaded(self) -> Tuple[int, Device]:
        """The eligible (index, device) with the least model time.

        Eligible means healthy, on probation, or quarantined with an
        expired backoff (lapses into probation here, replacing a lost
        device). When *no* device is eligible the one whose quarantine
        expires soonest is force-revived -- a pool cannot starve.
        """
        eligible = [i for i in range(len(self.devices)) if self._eligible(i)]
        if not eligible:
            i = min(
                range(len(self.devices)),
                key=lambda i: (self.health[i].quarantined_until, i),
            )
            self._enter_probation(i)
            eligible = [i]
        i = min(eligible, key=lambda i: (self.devices[i].model_time_s, i))
        return i, self.devices[i]

    def _eligible(self, index: int) -> bool:
        h = self.health[index]
        if h.state == QUARANTINED:
            if self.clock >= h.quarantined_until:
                self._enter_probation(index)
                return True
            return False
        return True

    def _enter_probation(self, index: int) -> None:
        h = self.health[index]
        h.state = PROBATION
        if self.devices[index].lost:
            self._replace_device(index)

    def _replace_device(self, index: int) -> None:
        """Swap in a fresh device for a lost one (simulated node repair).

        The replacement inherits the old device's model clock so pool
        makespan accounting stays continuous, and the same fault
        injector so a plan's later ordinals still land.
        """
        old = self.devices[index]
        fresh = Device(self.spec)
        fresh.charge_time(old.model_time_s)
        injector = self._injectors[index]
        if injector is not None:
            fresh.set_fault_injector(injector)
        self.devices[index] = fresh
        self.health[index].replacements += 1

    def note_dispatch(self, index: int) -> None:
        """Record that a job was launched on device ``index``."""
        self.jobs_dispatched[index] += 1
        self.clock += 1

    # ------------------------------------------------------------------
    # health reporting (called by the service)
    # ------------------------------------------------------------------
    def note_fault(self, index: int, error: BaseException) -> None:
        """Account one device fault; quarantine when the breaker trips.

        Device loss and any fault during probation quarantine
        immediately; transient faults quarantine after
        ``fault_threshold`` consecutive ones.
        """
        h = self.health[index]
        h.total_faults += 1
        h.consecutive_faults += 1
        h.last_fault_ordinal = self.clock
        if (
            isinstance(error, DeviceLostError)
            or h.state == PROBATION
            or h.consecutive_faults >= self.fault_threshold
        ):
            self._quarantine(index)

    def _quarantine(self, index: int) -> None:
        h = self.health[index]
        h.state = QUARANTINED
        h.quarantines += 1
        h.backoff = self.backoff_base * (2 ** (h.quarantines - 1))
        h.quarantined_until = self.clock + h.backoff
        h.consecutive_faults = 0

    def note_success(self, index: int) -> None:
        """Account a fault-free job: probation devices regain health."""
        h = self.health[index]
        h.consecutive_faults = 0
        if h.state == PROBATION:
            h.state = HEALTHY

    # ------------------------------------------------------------------
    @property
    def makespan_model_s(self) -> float:
        """Model time of the busiest device (pool completion time)."""
        return max(d.model_time_s for d in self.devices)

    @property
    def total_model_s(self) -> float:
        """Model time summed over all devices (serial-equivalent)."""
        return sum(d.model_time_s for d in self.devices)

    def summary(self) -> List[dict]:
        """Per-device load and health figures for reports."""
        return [
            {
                "device": i,
                "jobs": self.jobs_dispatched[i],
                "model_time_s": d.model_time_s,
                "mem_peak_bytes": d.pool.peak_bytes,
                "health": self.health[i].to_dict(),
            }
            for i, d in enumerate(self.devices)
        ]
