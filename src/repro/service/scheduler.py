"""Job ordering policies.

Scheduling policy -- not the kernel alone -- decides throughput on
real multi-request workloads (cf. Almasri et al.; Pattabiraman et
al.). The service keeps the two scheduling levers explicit and
deterministic:

* **ordering** (:class:`Scheduler`, this module): ``"fifo"`` preserves
  submission order; ``"sef"`` (shortest-expected-first) orders by a
  cheap structural cost estimate so small jobs are not stuck behind
  monsters -- the classic mean-latency optimisation. Priority always
  dominates: higher-priority jobs run first under either policy.
* **placement** (:class:`~repro.service.pool.DevicePool`, now in
  :mod:`repro.service.pool`): jobs go to the least-loaded of a pool of
  simulated devices (least accumulated model time, i.e. greedy
  longest-processing-time balancing); ``makespan_model_s`` reports
  what a multi-GPU deployment's makespan would be. How many jobs run
  *concurrently on the host* is the executor's business
  (:mod:`repro.engine.executor`), not the scheduler's.

The cost estimate is the dominant work term of the paper's Algorithm
2: every candidate check binary-searches an adjacency list, so
expected work scales with ``edges x log2(max_degree)``, scaled up by
the Moon-Moser expansion of the average sublist tail for dense,
hard-to-prune inputs (Section V-B2).
"""

from __future__ import annotations

import math
from typing import List

from ..graph.csr import CSRGraph
from .request import SolveRequest

# the pool classes lived here before the engine refactor; re-exported
# for backwards compatibility
from .pool import (  # noqa: F401
    HEALTHY,
    PROBATION,
    QUARANTINED,
    DeviceHealth,
    DevicePool,
)

__all__ = ["Scheduler", "DevicePool", "DeviceHealth", "expected_cost"]

#: valid ordering policies
POLICIES = ("fifo", "sef")


def expected_cost(graph: CSRGraph) -> float:
    """Cheap structural proxy for a solve's expected model time.

    ``m * log2(max_degree + 2)`` is the binary-search work of scanning
    the 2-clique list once; the Moon-Moser factor of the average
    sublist tail accounts for candidate-set expansion on dense graphs.
    Only O(1) CSR properties are read -- scheduling must stay far
    cheaper than solving.
    """
    n = max(graph.num_vertices, 1)
    m = graph.num_edges
    avg_tail = max(m / n - 1.0, 0.0)
    expansion = 3.0 ** (min(avg_tail, 48.0) / 3.0)
    return m * math.log2(graph.max_degree + 2.0) * expansion


class Scheduler:
    """Orders submitted jobs for execution.

    Parameters
    ----------
    policy:
        ``"fifo"`` (submission order) or ``"sef"``
        (shortest-expected-first by :func:`expected_cost`). Priority
        sorts before either key; submission order breaks all ties, so
        schedules are fully deterministic.
    """

    def __init__(self, policy: str = "fifo") -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; expected one of {POLICIES}"
            )
        self.policy = policy

    def order(self, requests: List[SolveRequest]) -> List[SolveRequest]:
        """Return the execution order of ``requests`` (stable, pure)."""
        if self.policy == "fifo":
            return sorted(requests, key=lambda r: (-r.priority, r.seq))
        return sorted(
            requests,
            key=lambda r: (-r.priority, expected_cost(r.graph), r.seq),
        )
