"""Job ordering and the simulated device pool.

Scheduling policy -- not the kernel alone -- decides throughput on
real multi-request workloads (cf. Almasri et al.; Pattabiraman et
al.). The service keeps the two scheduling levers explicit and
deterministic:

* **ordering** (:class:`Scheduler`): ``"fifo"`` preserves submission
  order; ``"sef"`` (shortest-expected-first) orders by a cheap
  structural cost estimate so small jobs are not stuck behind
  monsters -- the classic mean-latency optimisation. Priority always
  dominates: higher-priority jobs run first under either policy.
* **placement** (:class:`DevicePool`): jobs go to the least-loaded of
  a pool of simulated devices (least accumulated model time, i.e.
  greedy longest-processing-time balancing). Host execution is
  serial; the pool models what a multi-GPU deployment's makespan
  would be, reported as ``makespan_model_s``.

The cost estimate is the dominant work term of the paper's Algorithm
2: every candidate check binary-searches an adjacency list, so
expected work scales with ``edges x log2(max_degree)``, scaled up by
the Moon-Moser expansion of the average sublist tail for dense,
hard-to-prune inputs (Section V-B2).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..graph.csr import CSRGraph
from ..gpusim.device import Device
from ..gpusim.spec import DeviceSpec
from .request import SolveRequest

__all__ = ["Scheduler", "DevicePool", "expected_cost"]

#: valid ordering policies
POLICIES = ("fifo", "sef")


def expected_cost(graph: CSRGraph) -> float:
    """Cheap structural proxy for a solve's expected model time.

    ``m * log2(max_degree + 2)`` is the binary-search work of scanning
    the 2-clique list once; the Moon-Moser factor of the average
    sublist tail accounts for candidate-set expansion on dense graphs.
    Only O(1) CSR properties are read -- scheduling must stay far
    cheaper than solving.
    """
    n = max(graph.num_vertices, 1)
    m = graph.num_edges
    avg_tail = max(m / n - 1.0, 0.0)
    expansion = 3.0 ** (min(avg_tail, 48.0) / 3.0)
    return m * math.log2(graph.max_degree + 2.0) * expansion


class Scheduler:
    """Orders submitted jobs for execution.

    Parameters
    ----------
    policy:
        ``"fifo"`` (submission order) or ``"sef"``
        (shortest-expected-first by :func:`expected_cost`). Priority
        sorts before either key; submission order breaks all ties, so
        schedules are fully deterministic.
    """

    def __init__(self, policy: str = "fifo") -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; expected one of {POLICIES}"
            )
        self.policy = policy

    def order(self, requests: List[SolveRequest]) -> List[SolveRequest]:
        """Return the execution order of ``requests`` (stable, pure)."""
        if self.policy == "fifo":
            return sorted(requests, key=lambda r: (-r.priority, r.seq))
        return sorted(
            requests,
            key=lambda r: (-r.priority, expected_cost(r.graph), r.seq),
        )


class DevicePool:
    """A fixed pool of simulated devices with least-loaded placement.

    Every device is constructed from the same spec; jobs land on the
    device with the least accumulated model time (ties: lowest index),
    which is greedy makespan balancing. Devices accumulate state across
    jobs exactly as shared devices do (see ``Device`` notes) -- the
    pool's ``makespan_model_s`` is what a real multi-device deployment
    would wait for.
    """

    def __init__(self, size: int = 1, spec: Optional[DeviceSpec] = None) -> None:
        if size < 1:
            raise ValueError("pool size must be at least 1")
        self.spec = spec if spec is not None else DeviceSpec()
        self.devices = [Device(self.spec) for _ in range(size)]
        self.jobs_dispatched = [0] * size

    def __len__(self) -> int:
        return len(self.devices)

    def least_loaded(self) -> Tuple[int, Device]:
        """The (index, device) with the least accumulated model time."""
        i = min(
            range(len(self.devices)), key=lambda i: self.devices[i].model_time_s
        )
        return i, self.devices[i]

    def note_dispatch(self, index: int) -> None:
        """Record that a job was launched on device ``index``."""
        self.jobs_dispatched[index] += 1

    @property
    def makespan_model_s(self) -> float:
        """Model time of the busiest device (pool completion time)."""
        return max(d.model_time_s for d in self.devices)

    @property
    def total_model_s(self) -> float:
        """Model time summed over all devices (serial-equivalent)."""
        return sum(d.model_time_s for d in self.devices)

    def summary(self) -> List[dict]:
        """Per-device load figures for reports."""
        return [
            {
                "device": i,
                "jobs": self.jobs_dispatched[i],
                "model_time_s": d.model_time_s,
                "mem_peak_bytes": d.pool.peak_bytes,
            }
            for i, d in enumerate(self.devices)
        ]
