"""Project-wide logging (``repro.log``).

All user-facing and diagnostic output flows through the ``repro``
logger hierarchy instead of raw ``print`` calls:

* ``repro.cli`` -- the CLI's stdout output (results, hints, listings),
  emitted at INFO through a console handler so terminal behaviour is
  unchanged;
* ``repro.pipeline`` / ``repro.trace`` / ... -- per-module diagnostic
  loggers, silent unless the level is lowered (``repro solve
  --log-level debug``).

The console handler resolves ``sys.stdout`` at emit time rather than
capturing it at import, so output capture (pytest ``capsys``, shell
redirection set up after import) always sees the CLI's output.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["LOGGER_NAME", "logger", "get_logger", "configure", "ConsoleHandler"]

LOGGER_NAME = "repro"

#: Root logger of the package hierarchy.
logger = logging.getLogger(LOGGER_NAME)

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str = "") -> logging.Logger:
    """Child logger ``repro.<name>`` (the root ``repro`` logger for '')."""
    return logging.getLogger(f"{LOGGER_NAME}.{name}") if name else logger


class ConsoleHandler(logging.StreamHandler):
    """Message-only handler writing to the *current* ``sys.stdout``."""

    def __init__(self) -> None:
        super().__init__(sys.stdout)
        self.setFormatter(logging.Formatter("%(message)s"))

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value) -> None:  # the live lookup wins
        pass


def configure(level: str = "info") -> logging.Logger:
    """Install the console handler (once) and set the package level.

    Safe to call repeatedly -- the CLI calls it on every invocation.
    Returns the package root logger.
    """
    if level not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
        )
    if not any(isinstance(h, ConsoleHandler) for h in logger.handlers):
        logger.addHandler(ConsoleHandler())
    # CLI output is the program's output: never duplicate it through
    # ancestor handlers (pytest's root capture, user root config).
    logger.propagate = False
    logger.setLevel(_LEVELS[level])
    return logger
