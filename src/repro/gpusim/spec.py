"""Hardware specifications for the simulated SIMT device and CPU baseline.

The paper ran on an NVIDIA Tesla A100 (40 GB) and a 24-core AMD EPYC
7402. We model both with coarse, *calibratable* specs expressed in one
shared currency: abstract scalar operations ("ops"). Every kernel
launch on the simulated device and every branch-and-bound step of the
CPU baseline charges ops to its spec's cost model, which converts them
to deterministic model time. This keeps cross-device comparisons
(Figure 4) meaningful and machine-independent.

The default device is a *proportionally scaled* A100: the surrogate
dataset suite is ~1000x smaller than the paper's Network Repository
datasets, so the device memory budget (40 GB -> tens of MiB), lane
count (scaled so the GPU:CPU throughput ratio at suite scale matches
the paper's at full scale), and launch overhead are scaled together.
This keeps both failure behaviour (OOM rates in Table I, Figure 6)
and cross-device speedup *shapes* (Figure 4) meaningful; absolute
times are model artifacts and are reported as such.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "CPUSpec", "A100_LIKE", "EPYC_LIKE"]

#: bytes in one mebibyte, used for readable budget definitions
MIB = 1 << 20


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated SIMT device.

    Parameters
    ----------
    name:
        Human-readable device name used in reports.
    lanes:
        Number of scalar lanes executing concurrently (SM count x
        warps resident x 32 on real hardware, collapsed into a single
        throughput figure here).
    warp_size:
        Threads per warp. Threads in a warp run in lockstep: a warp's
        cost is ``warp_size * max(thread cost in warp)``, charging the
        idle lanes that divergence wastes (Section II-C of the paper).
    clock_hz:
        Scalar ops each lane retires per second.
    launch_overhead_s:
        Fixed host-side cost of one kernel launch. This is what makes
        many tiny launches (small windows, Section V-C2) slow.
    memory_bytes:
        Device memory budget. Allocations past this raise
        :class:`repro.errors.DeviceOOMError`.
    """

    name: str = "sim-a100"
    lanes: int = 1024
    warp_size: int = 32
    clock_hz: float = 1.41e9
    launch_overhead_s: float = 1e-6
    memory_bytes: int = 192 * MIB

    def __post_init__(self) -> None:
        if self.warp_size <= 0:
            raise ValueError("warp_size must be positive")
        if self.lanes <= 0 or self.lanes % self.warp_size != 0:
            raise ValueError(
                f"lanes ({self.lanes}) must be a positive multiple of "
                f"warp_size ({self.warp_size})"
            )
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.launch_overhead_s < 0:
            raise ValueError("launch_overhead_s must be non-negative")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")

    @property
    def warp_slots(self) -> int:
        """Number of warps that execute concurrently."""
        return self.lanes // self.warp_size

    @property
    def ops_per_second(self) -> float:
        """Aggregate scalar throughput of the device."""
        return self.lanes * self.clock_hz

    def with_memory(self, memory_bytes: int) -> "DeviceSpec":
        """Return a copy of this spec with a different memory budget."""
        return replace(self, memory_bytes=int(memory_bytes))


@dataclass(frozen=True)
class CPUSpec:
    """Static description of the simulated multi-core CPU baseline.

    Used by :mod:`repro.baselines.pmc` to convert counted
    branch-and-bound ops into deterministic model time comparable with
    the device model time.

    Parameters
    ----------
    name:
        Human-readable CPU name used in reports.
    cores:
        Physical cores available to the parallel search.
    clock_hz:
        Scalar ops one core retires per second. Higher than a GPU
        lane's: CPU cores are latency-optimised (Section II-C).
    parallel_efficiency:
        Fraction of linear scaling the fine-grained parallel DFS
        achieves; PMC reports near-linear but imperfect scaling.
    mem_penalty:
        Cycles charged per *irregular* memory access (pointer-chasing
        graph traversal misses caches). The simulated GPU pays no such
        penalty: with thousands of threads in flight it hides latency
        behind parallelism -- this asymmetry is the architectural
        premise of the paper (Section II-C) and is what the
        cross-device comparison (Figure 4) measures.
    """

    name: str = "sim-epyc"
    cores: int = 24
    clock_hz: float = 2.8e9
    parallel_efficiency: float = 0.7
    mem_penalty: float = 24.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ValueError("parallel_efficiency must be in (0, 1]")
        if self.mem_penalty < 1.0:
            raise ValueError("mem_penalty must be at least 1 cycle")

    def ops_per_second(self, threads: int) -> float:
        """Aggregate throughput when running with ``threads`` workers."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        usable = min(threads, self.cores)
        if usable == 1:
            return self.clock_hz
        return usable * self.clock_hz * self.parallel_efficiency

    def time_for_ops(
        self, alu_ops: float, threads: int, mem_ops: float = 0.0
    ) -> float:
        """Model time for ``alu_ops`` register/word operations plus
        ``mem_ops`` irregular memory accesses."""
        cycles = float(alu_ops) + self.mem_penalty * float(mem_ops)
        return cycles / self.ops_per_second(threads)


#: Spec approximating the paper's A100, with a laptop-scale memory budget.
A100_LIKE = DeviceSpec()

#: Spec approximating the paper's 24-core EPYC 7402 host.
EPYC_LIKE = CPUSpec()
