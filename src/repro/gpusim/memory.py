"""Device memory allocator and device arrays.

Real GPU implementations of the paper's algorithm live or die by
device memory: the breadth-first clique list must hold *every*
candidate clique of the current level at once (Section II-D). We model
that constraint with an explicit allocator that enforces a byte budget
and tracks the high-water mark, so experiments can report peak memory
(Figure 6) and OOM outcomes (Table I) deterministically.

Only *persistent* structures are charged: the CSR graph, clique-list
nodes, heuristic working sets, and primitive outputs. Host-side NumPy
temporaries used to vectorise a kernel's inner loop are deliberately
not charged -- on the real device those values live in registers, not
global memory.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

import numpy as np

from ..errors import DeviceOOMError, DeviceStateError

__all__ = ["DeviceArray", "MemoryPool"]

ShapeLike = Union[int, Tuple[int, ...]]


class MemoryPool:
    """Byte-budgeted allocator with peak tracking.

    Parameters
    ----------
    budget_bytes:
        Hard limit on simultaneously live bytes. ``None`` disables the
        limit (useful for oracle runs in tests).
    """

    def __init__(self, budget_bytes: Optional[int]) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive or None")
        self._budget = budget_bytes
        self._in_use = 0
        self._peak = 0
        self._alloc_count = 0
        self._free_count = 0

    @property
    def budget_bytes(self) -> Optional[int]:
        return self._budget

    @property
    def in_use_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._in_use

    @property
    def peak_bytes(self) -> int:
        """High-water mark of simultaneously allocated bytes."""
        return self._peak

    @property
    def alloc_count(self) -> int:
        return self._alloc_count

    @property
    def free_count(self) -> int:
        return self._free_count

    def reserve(self, nbytes: int) -> None:
        """Charge ``nbytes`` to the pool, raising on budget overflow."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._budget is not None and self._in_use + nbytes > self._budget:
            raise DeviceOOMError(nbytes, self._in_use, self._budget)
        self._in_use += nbytes
        self._alloc_count += 1
        if self._in_use > self._peak:
            self._peak = self._in_use

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the pool."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes > self._in_use:
            raise DeviceStateError(
                f"releasing {nbytes} B but only {self._in_use} B are in use"
            )
        self._in_use -= nbytes
        self._free_count += 1

    def reset_peak(self) -> None:
        """Reset the high-water mark to the current usage."""
        self._peak = self._in_use


class DeviceArray:
    """A NumPy-backed array whose storage is charged to a device pool.

    The wrapped buffer is exposed as :attr:`a` for vectorised compute;
    algorithms treat it as device-resident data. Arrays must be
    explicitly freed (or used as context managers) so that peak-memory
    tracking reflects the algorithm's true live set, exactly as
    ``cudaFree`` discipline would on hardware.
    """

    __slots__ = ("_array", "_pool", "_nbytes", "_freed", "label")

    def __init__(self, array: np.ndarray, pool: MemoryPool, label: str = "") -> None:
        pool.reserve(array.nbytes)
        self._array = array
        self._pool = pool
        self._nbytes = array.nbytes
        self._freed = False
        self.label = label

    # -- accessors ---------------------------------------------------------
    @property
    def a(self) -> np.ndarray:
        """The underlying ndarray (device buffer view)."""
        if self._freed:
            raise DeviceStateError(f"use after free of device array {self.label!r}")
        return self._array

    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def freed(self) -> bool:
        return self._freed

    @property
    def dtype(self) -> np.dtype:
        return self.a.dtype

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.a.shape

    @property
    def size(self) -> int:
        return self.a.size

    def __len__(self) -> int:
        return len(self.a)

    def __iter__(self) -> Iterator:
        return iter(self.a)

    def to_host(self) -> np.ndarray:
        """Copy the contents back to a plain host ndarray."""
        return np.array(self.a, copy=True)

    # -- lifetime ----------------------------------------------------------
    def free(self) -> None:
        """Release the device allocation. Idempotent."""
        if not self._freed:
            self._pool.release(self._nbytes)
            self._freed = True
            self._array = np.empty(0, dtype=self._array.dtype)

    def __enter__(self) -> "DeviceArray":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.free()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._freed else f"shape={self._array.shape}, dtype={self._array.dtype}"
        return f"DeviceArray({self.label!r}, {state})"
