"""Simulated SIMT device substrate.

This package stands in for the CUDA/CUB stack the paper runs on: a
:class:`~repro.gpusim.device.Device` with a budgeted memory pool, a
warp-lockstep kernel cost model, and CUB-style data-parallel
primitives. See DESIGN.md section 2 for the substitution rationale.
"""

from .device import Device, DeviceStats, KernelProfile
from .faults import FaultEvent, FaultInjector, FaultPlan, load_fault_plan
from .memory import DeviceArray, MemoryPool
from .spec import A100_LIKE, EPYC_LIKE, CPUSpec, DeviceSpec
from . import primitives

__all__ = [
    "Device",
    "DeviceStats",
    "KernelProfile",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "load_fault_plan",
    "DeviceArray",
    "MemoryPool",
    "DeviceSpec",
    "CPUSpec",
    "A100_LIKE",
    "EPYC_LIKE",
    "primitives",
]
