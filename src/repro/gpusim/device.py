"""The simulated SIMT device: allocation, kernel accounting, model clock.

A :class:`Device` is the substrate every GPU-side algorithm in this
repo runs on. It provides

* **memory** -- :meth:`Device.alloc` / :meth:`Device.from_host` return
  :class:`~repro.gpusim.memory.DeviceArray` objects charged against the
  spec's budget, so breadth-first candidate explosions hit a real OOM
  wall just as they do on a 40 GB card;
* **kernel accounting** -- :meth:`Device.launch` charges a kernel's
  per-thread op costs using the warp-lockstep model (a warp costs
  ``warp_size * max(member costs)``), and advances a deterministic
  model clock ``time = overhead + max(throughput-bound, latency-bound)``;
* **statistics** -- :meth:`Device.stats` snapshots launches, threads,
  effective/useful ops, model time, and memory peaks for the
  experiment harness.

The latency bound is what reproduces the paper's windowing result:
launches with too few threads to fill the device are bounded by their
longest warp's serial time plus launch overhead, so many small
launches (small windows) run slower than one big launch even at equal
total work (Section V-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..errors import DeviceLostError
from .memory import DeviceArray, MemoryPool
from .spec import DeviceSpec

__all__ = ["Device", "DeviceStats", "KernelProfile"]


@dataclass
class KernelProfile:
    """Aggregated accounting for one kernel name.

    The device groups launches by the ``name`` passed to
    :meth:`Device.launch`; a profile is the per-name analogue of
    :class:`DeviceStats`, used to attribute model time to pipeline
    phases (heuristic vs count vs output vs primitives) the way
    ``nvprof`` output would on real hardware.
    """

    name: str
    launches: int = 0
    threads: int = 0
    useful_ops: float = 0.0
    effective_ops: float = 0.0
    model_time_s: float = 0.0

    @property
    def divergence_waste(self) -> float:
        if self.effective_ops <= 0:
            return 0.0
        return 1.0 - self.useful_ops / self.effective_ops


@dataclass(frozen=True)
class DeviceStats:
    """Immutable snapshot of device counters.

    Attributes
    ----------
    kernel_launches:
        Number of kernels launched since the last reset.
    threads_launched:
        Total threads across all launches.
    useful_ops:
        Sum of per-thread costs (work actually requested).
    effective_ops:
        Ops charged after warp-lockstep rounding; ``effective_ops -
        useful_ops`` is the work wasted to divergence.
    model_time_s:
        Deterministic model time accumulated by the cost model.
    mem_in_use_bytes / mem_peak_bytes:
        Current and high-water device memory.
    """

    kernel_launches: int
    threads_launched: int
    useful_ops: float
    effective_ops: float
    model_time_s: float
    mem_in_use_bytes: int
    mem_peak_bytes: int

    @property
    def divergence_waste(self) -> float:
        """Fraction of charged ops wasted to warp divergence."""
        if self.effective_ops <= 0:
            return 0.0
        return 1.0 - self.useful_ops / self.effective_ops


class Device:
    """A simulated SIMT accelerator.

    Parameters
    ----------
    spec:
        Hardware description; defaults to the scaled-down A100-like
        spec used throughout the evaluation.

    Notes
    -----
    A device holds *cumulative* state: counters, the per-kernel-name
    breakdown, the model clock, and the memory peak all accumulate for
    the device's lifetime. A device **shared across solves** therefore
    accumulates statistics across them (``model_time_s`` keeps
    growing; ``kernel_breakdown()`` merges every solve's launches) --
    which is exactly what multi-solve experiments want. Solvers report
    per-solve figures by snapshotting the clock before and after, not
    by resetting. Call :meth:`reset_counters` between solves to start
    accounting fresh; live allocations survive a reset.
    """

    def __init__(self, spec: Optional[DeviceSpec] = None) -> None:
        self.spec = spec if spec is not None else DeviceSpec()
        self.pool = MemoryPool(self.spec.memory_bytes)
        self._launches = 0
        self._threads = 0
        self._useful_ops = 0.0
        self._effective_ops = 0.0
        self._time_s = 0.0
        self._profiles: Dict[str, KernelProfile] = {}
        self._trace_hook: Optional[Callable[..., None]] = None
        self._fault_injector = None  # Optional[repro.gpusim.faults.FaultInjector]
        self._lost = False

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def set_fault_injector(self, injector) -> None:
        """Install a :class:`~repro.gpusim.faults.FaultInjector` (or None).

        With no injector installed (the default) launch and alloc paths
        perform exactly the charges they perform today -- fault support
        is zero-overhead when unused.
        """
        self._fault_injector = injector

    @property
    def fault_injector(self):
        return self._fault_injector

    @property
    def lost(self) -> bool:
        """True once the device has fallen off the bus (injected loss)."""
        return self._lost

    def mark_lost(self) -> None:
        """Drop the device off the bus: all further work raises."""
        self._lost = True

    def _check_usable(self) -> None:
        if self._lost:
            raise DeviceLostError("device lost (all operations fail)")

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def alloc(
        self,
        shape: Union[int, tuple],
        dtype: Union[str, np.dtype] = np.int32,
        label: str = "",
        fill: Optional[int] = None,
    ) -> DeviceArray:
        """Allocate a device array, optionally filled with a constant."""
        if self._lost:
            self._check_usable()
        if self._fault_injector is not None:
            self._fault_injector.on_alloc(self)
        if fill is None:
            arr = np.empty(shape, dtype=dtype)
        else:
            arr = np.full(shape, fill, dtype=dtype)
        return DeviceArray(arr, self.pool, label=label)

    def from_host(self, array: np.ndarray, label: str = "") -> DeviceArray:
        """Copy a host array onto the device (always a fresh buffer)."""
        if self._lost:
            self._check_usable()
        if self._fault_injector is not None:
            self._fault_injector.on_alloc(self)
        return DeviceArray(
            np.array(array, order="C", copy=True), self.pool, label=label
        )

    # ------------------------------------------------------------------
    # kernel accounting
    # ------------------------------------------------------------------
    def launch(
        self,
        thread_costs: Union[np.ndarray, int, float, None] = None,
        n_threads: Optional[int] = None,
        name: str = "",
    ) -> float:
        """Charge one kernel launch and return its model time.

        Parameters
        ----------
        thread_costs:
            Per-thread op counts (array), or a uniform per-thread cost
            (scalar, requires ``n_threads``). ``None`` with
            ``n_threads`` charges 1 op per thread.
        n_threads:
            Thread count when ``thread_costs`` is scalar or ``None``.
        name:
            Kernel name for debugging; not used by the cost model.
        """
        spec = self.spec
        if isinstance(thread_costs, np.ndarray):
            costs = thread_costs
            n = costs.size
            if n == 0:
                return 0.0  # nothing to launch
            useful = float(costs.sum(dtype=np.float64))
            warp_max = self._warp_max(costs)
            effective = float(warp_max.sum(dtype=np.float64)) * spec.warp_size
            critical = float(warp_max.max())
        else:
            if n_threads is None:
                raise ValueError("n_threads is required for scalar thread_costs")
            n = int(n_threads)
            if n == 0:
                return 0.0  # nothing to launch
            per = 1.0 if thread_costs is None else float(thread_costs)
            useful = per * n
            # uniform costs: lockstep waste only from the ragged last warp
            full_threads = -(-n // spec.warp_size) * spec.warp_size
            effective = per * full_threads
            critical = per
        return self._charge(n, useful, effective, critical, name)

    def _warp_max(self, costs: np.ndarray) -> np.ndarray:
        """Max thread cost per warp of consecutive threads."""
        w = self.spec.warp_size
        n = costs.size
        pad = (-n) % w
        if pad:
            costs = np.concatenate([costs, np.zeros(pad, dtype=costs.dtype)])
        return costs.reshape(-1, w).max(axis=1)

    def _charge(
        self, n: int, useful: float, effective: float, critical: float,
        name: str = "",
    ) -> float:
        # Fault hooks live here -- only *charged* launches advance the
        # injector's launch ordinal, so ordinals line up exactly with
        # the tracer's kernel-event indices.
        if self._lost:
            self._check_usable()
        if self._fault_injector is not None:
            self._fault_injector.on_launch(self)
        spec = self.spec
        throughput_bound = effective / spec.ops_per_second
        latency_bound = critical / spec.clock_hz
        t = spec.launch_overhead_s + max(throughput_bound, latency_bound)
        self._launches += 1
        self._threads += n
        self._useful_ops += useful
        self._effective_ops += effective
        self._time_s += t
        prof = self._profiles.get(name)
        if prof is None:
            prof = self._profiles[name] = KernelProfile(name=name)
        prof.launches += 1
        prof.threads += n
        prof.useful_ops += useful
        prof.effective_ops += effective
        prof.model_time_s += t
        if self._trace_hook is not None:
            self._trace_hook(
                name=name,
                threads=n,
                useful_ops=useful,
                effective_ops=effective,
                model_time_s=t,
                end_model_s=self._time_s,
            )
        return t

    def set_trace_hook(
        self, hook: Optional[Callable[..., None]]
    ) -> Optional[Callable[..., None]]:
        """Install a per-kernel-charge callback; returns the previous one.

        The hook is invoked once per charged launch (empty launches
        charge nothing and emit nothing) with keyword arguments
        ``name``, ``threads``, ``useful_ops``, ``effective_ops``,
        ``model_time_s``, and ``end_model_s``. It observes accounting
        only -- it cannot alter charges, so tracing never changes model
        time. Pass ``None`` to uninstall. Pipeline runners install a
        tracer's ``on_kernel`` here for the duration of a solve and
        restore the previous hook afterwards.
        """
        prev = self._trace_hook
        self._trace_hook = hook
        return prev

    def charge_time(self, seconds: float) -> None:
        """Advance the model clock directly (host-side serial steps)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._time_s += seconds

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> DeviceStats:
        """Snapshot current counters."""
        return DeviceStats(
            kernel_launches=self._launches,
            threads_launched=self._threads,
            useful_ops=self._useful_ops,
            effective_ops=self._effective_ops,
            model_time_s=self._time_s,
            mem_in_use_bytes=self.pool.in_use_bytes,
            mem_peak_bytes=self.pool.peak_bytes,
        )

    @property
    def model_time_s(self) -> float:
        """Deterministic model time accumulated so far."""
        return self._time_s

    def kernel_breakdown(self) -> Dict[str, KernelProfile]:
        """Per-kernel-name profiles, like an ``nvprof`` summary.

        Returns a fresh dict ordered by descending model time.
        """
        return {
            p.name: p
            for p in sorted(
                self._profiles.values(),
                key=lambda p: p.model_time_s,
                reverse=True,
            )
        }

    def reset_counters(self) -> None:
        """Zero launch/op/time counters and the memory peak.

        Also clears the per-kernel-name breakdown
        (:meth:`kernel_breakdown` returns ``{}`` afterwards) and
        restarts the model clock from zero. Live allocations are
        unaffected; the peak restarts from the current in-use figure.
        Any installed trace hook stays installed.
        """
        self._launches = 0
        self._threads = 0
        self._useful_ops = 0.0
        self._effective_ops = 0.0
        self._time_s = 0.0
        self._profiles.clear()
        self.pool.reset_peak()
