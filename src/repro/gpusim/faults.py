"""Deterministic fault injection for the simulated device.

A real multi-device deployment of the paper's solver does not only hit
OOM and wall-clock walls (Table I, Fig. 6) -- devices fall off the
bus, kernels fail sporadically, allocations glitch. This module models
those *device-level* failures the same way the rest of :mod:`gpusim`
models time and memory: deterministically.

A :class:`FaultPlan` is materialized **up front** from a seed (or from
explicit events); nothing random happens at solve time. A
:class:`FaultInjector` is installed on one
:class:`~repro.gpusim.device.Device` and raises at planned *ordinals*:
the Nth charged kernel launch or the Nth allocation on that device.
Three fault kinds exist:

==================  =============================================  ==========
kind                raises                                         hook
==================  =============================================  ==========
``transient-kernel``  :class:`~repro.errors.TransientKernelError`  launch
``flaky-alloc``       :class:`~repro.errors.FlakyAllocError`       alloc
``device-lost``       :class:`~repro.errors.DeviceLostError`       either
==================  =============================================  ==========

``device-lost`` additionally marks the device lost: every subsequent
launch/alloc raises :class:`~repro.errors.DeviceLostError` until the
pool replaces the device (see ``repro.service.scheduler.DevicePool``).

Injection is zero-overhead by default: a device without an injector
performs exactly the charges it performs today, so model times are
bit-identical with the feature compiled in but unused.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..errors import (
    DeviceLostError,
    FaultPlanError,
    FlakyAllocError,
    TransientKernelError,
)

__all__ = [
    "FAULT_PLAN_SCHEMA",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "load_fault_plan",
]

#: schema identifier stamped into serialized fault plans
FAULT_PLAN_SCHEMA = "repro-fault-plan/1"

KIND_TRANSIENT_KERNEL = "transient-kernel"
KIND_FLAKY_ALLOC = "flaky-alloc"
KIND_DEVICE_LOST = "device-lost"

#: every injectable fault kind
FAULT_KINDS = (KIND_TRANSIENT_KERNEL, KIND_FLAKY_ALLOC, KIND_DEVICE_LOST)

HOOK_LAUNCH = "launch"
HOOK_ALLOC = "alloc"

#: which hook each kind may fire on
_VALID_HOOKS = {
    KIND_TRANSIENT_KERNEL: (HOOK_LAUNCH,),
    KIND_FLAKY_ALLOC: (HOOK_ALLOC,),
    KIND_DEVICE_LOST: (HOOK_LAUNCH, HOOK_ALLOC),
}


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: device + hook + ordinal + kind.

    ``ordinal`` counts *charged* kernel launches (empty launches charge
    nothing and do not advance it) or allocations on the target device,
    from 0, for the device's lifetime -- the same ordering the trace
    records, so an event can be aimed at a specific kernel seen in a
    trace.
    """

    device: int
    on: str  # "launch" | "alloc"
    ordinal: int
    kind: str  # see FAULT_KINDS

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.on not in _VALID_HOOKS[self.kind]:
            raise FaultPlanError(
                f"fault kind {self.kind!r} cannot fire on {self.on!r} "
                f"(valid hooks: {_VALID_HOOKS[self.kind]})"
            )
        if self.device < 0 or self.ordinal < 0:
            raise FaultPlanError("device and ordinal must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "device": self.device,
            "on": self.on,
            "ordinal": self.ordinal,
            "kind": self.kind,
        }


class FaultPlan:
    """A pool-wide, fully materialized fault schedule.

    Parameters
    ----------
    events:
        Explicit :class:`FaultEvent` entries (or dicts with the same
        keys). Duplicate ``(device, on, ordinal)`` entries raise.
    seed:
        Provenance only once materialized; kept for serialization.

    Build one from failure *rates* with :meth:`from_rates` -- the
    randomness happens there, once, so two services given the same
    plan inject byte-identical fault sequences.
    """

    def __init__(
        self,
        events: Iterable[Union[FaultEvent, Dict[str, Any]]] = (),
        seed: int = 0,
    ) -> None:
        self.seed = int(seed)
        self.events: List[FaultEvent] = []
        seen: set = set()
        for e in events:
            if isinstance(e, dict):
                try:
                    e = FaultEvent(**e)
                except TypeError as exc:
                    raise FaultPlanError(f"bad fault event {e!r}: {exc}")
            key = (e.device, e.on, e.ordinal)
            if key in seen:
                raise FaultPlanError(
                    f"duplicate fault event at device {e.device} "
                    f"{e.on} ordinal {e.ordinal}"
                )
            seen.add(key)
            self.events.append(e)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    @classmethod
    def from_rates(
        cls,
        seed: int,
        devices: int = 1,
        horizon: int = 100_000,
        transient_kernel: float = 0.0,
        device_lost: float = 0.0,
        flaky_alloc: float = 0.0,
    ) -> "FaultPlan":
        """Materialize a plan from per-operation failure rates.

        Each of the first ``horizon`` launch/alloc ordinals on each
        device independently faults with the given probability, drawn
        once here from ``seed`` (per-device substreams, so adding a
        device never reshuffles the others). Ordinals past the horizon
        never fault.
        """
        if devices < 1:
            raise FaultPlanError("devices must be at least 1")
        if horizon < 0:
            raise FaultPlanError("horizon must be non-negative")
        for name, rate in (
            ("transient_kernel", transient_kernel),
            ("device_lost", device_lost),
            ("flaky_alloc", flaky_alloc),
        ):
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name} rate must be in [0, 1]")
        events: List[FaultEvent] = []
        for d in range(devices):
            rng = np.random.default_rng([int(seed), d])
            # one draw per (hook, ordinal); device-lost competes with the
            # transient kinds and wins ties (drawn first)
            lost_launch = rng.random(horizon) < device_lost
            transient = rng.random(horizon) < transient_kernel
            flaky = rng.random(horizon) < flaky_alloc
            for ordinal in np.flatnonzero(lost_launch):
                events.append(
                    FaultEvent(d, HOOK_LAUNCH, int(ordinal), KIND_DEVICE_LOST)
                )
            for ordinal in np.flatnonzero(transient & ~lost_launch):
                events.append(
                    FaultEvent(d, HOOK_LAUNCH, int(ordinal), KIND_TRANSIENT_KERNEL)
                )
            for ordinal in np.flatnonzero(flaky):
                events.append(
                    FaultEvent(d, HOOK_ALLOC, int(ordinal), KIND_FLAKY_ALLOC)
                )
        return cls(events, seed=seed)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], source: str = "<plan>") -> "FaultPlan":
        """Parse a serialized plan (explicit events and/or seeded rates).

        Accepted keys: ``schema`` (must match), ``seed``, ``events``
        (explicit list), and ``rates`` -- an object with
        ``transient_kernel`` / ``device_lost`` / ``flaky_alloc`` plus
        optional ``devices`` / ``horizon`` -- which is materialized via
        :meth:`from_rates` and merged with the explicit events.
        """
        if not isinstance(payload, dict):
            raise FaultPlanError(f"{source}: expected an object at top level")
        unknown = set(payload) - {"schema", "seed", "events", "rates"}
        if unknown:
            raise FaultPlanError(f"{source}: unknown key(s) {sorted(unknown)}")
        schema = payload.get("schema", FAULT_PLAN_SCHEMA)
        if schema != FAULT_PLAN_SCHEMA:
            raise FaultPlanError(
                f"{source}: unsupported schema {schema!r} "
                f"(expected {FAULT_PLAN_SCHEMA!r})"
            )
        seed = int(payload.get("seed", 0))
        events = payload.get("events", [])
        if not isinstance(events, list):
            raise FaultPlanError(f"{source}: 'events' must be a list")
        try:
            plan_events = [
                e if isinstance(e, dict) else dict(e) for e in events
            ]
        except TypeError:
            raise FaultPlanError(f"{source}: events must be objects")
        merged: List[Union[FaultEvent, Dict[str, Any]]] = list(plan_events)
        rates = payload.get("rates")
        if rates is not None:
            if not isinstance(rates, dict):
                raise FaultPlanError(f"{source}: 'rates' must be an object")
            bad = set(rates) - {
                "transient_kernel", "device_lost", "flaky_alloc",
                "devices", "horizon",
            }
            if bad:
                raise FaultPlanError(
                    f"{source}: unknown rates key(s) {sorted(bad)}"
                )
            generated = cls.from_rates(
                seed,
                devices=int(rates.get("devices", 1)),
                horizon=int(rates.get("horizon", 100_000)),
                transient_kernel=float(rates.get("transient_kernel", 0.0)),
                device_lost=float(rates.get("device_lost", 0.0)),
                flaky_alloc=float(rates.get("flaky_alloc", 0.0)),
            )
            merged.extend(generated.events)
        return cls(merged, seed=seed)

    # ------------------------------------------------------------------
    def injector_for(self, device_index: int) -> Optional["FaultInjector"]:
        """An injector for one pool device, or None when it has no events."""
        launch: Dict[int, str] = {}
        alloc: Dict[int, str] = {}
        for e in self.events:
            if e.device != device_index:
                continue
            (launch if e.on == HOOK_LAUNCH else alloc)[e.ordinal] = e.kind
        if not launch and not alloc:
            return None
        return FaultInjector(launch, alloc)


class FaultInjector:
    """Per-device fault trigger, hooked into launch and alloc.

    Keeps its own launch/alloc ordinal counters (they advance only
    while the injector is installed, matching a plan aimed at the
    device's trace from ordinal 0) and a tally of injected faults per
    kind. Ordinals survive device replacement: the pool re-installs the
    same injector on the replacement device, so a plan's later events
    still land.
    """

    def __init__(
        self,
        launch_faults: Dict[int, str],
        alloc_faults: Dict[int, str],
    ) -> None:
        self._launch_faults = dict(launch_faults)
        self._alloc_faults = dict(alloc_faults)
        self._launch_ordinal = 0
        self._alloc_ordinal = 0
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _fire(self, device: "Any", kind: str, where: str) -> None:
        self.injected[kind] += 1
        if kind == KIND_DEVICE_LOST:
            device.mark_lost()
            raise DeviceLostError(f"injected device loss at {where}")
        if kind == KIND_TRANSIENT_KERNEL:
            raise TransientKernelError(f"injected transient fault at {where}")
        raise FlakyAllocError(f"injected flaky allocation at {where}")

    def on_launch(self, device: "Any") -> None:
        """Called by the device before charging each non-empty launch."""
        ordinal = self._launch_ordinal
        self._launch_ordinal += 1
        kind = self._launch_faults.get(ordinal)
        if kind is not None:
            self._fire(device, kind, f"launch ordinal {ordinal}")

    def on_alloc(self, device: "Any") -> None:
        """Called by the device before reserving each allocation."""
        ordinal = self._alloc_ordinal
        self._alloc_ordinal += 1
        kind = self._alloc_faults.get(ordinal)
        if kind is not None:
            self._fire(device, kind, f"alloc ordinal {ordinal}")


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read and parse a fault-plan file (JSON, ``repro-fault-plan/1``)."""
    p = Path(path)
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise FaultPlanError(f"cannot read fault plan {p}: {exc}")
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"{p} is not valid JSON: {exc}")
    return FaultPlan.from_dict(payload, source=str(p))
