"""CUB-style data-parallel primitives on the simulated device.

The paper composes both the heuristic (Algorithm 1) and the exact
search (Algorithm 2) from NVIDIA CUB's scan / reduce / select /
sort / segmented-reduce primitives. This module provides the same
vocabulary: every function computes its result with vectorised NumPy
and charges the :class:`~repro.gpusim.device.Device` a kernel launch
with a realistic per-element op cost, so primitive-heavy phases (e.g.
the multi-run heuristic's select/scan loop) show up in model time with
the right relative weight.

Cost constants are per element and deliberately coarse -- they model a
work-efficient implementation (scan: up+down sweep, select: scan +
scatter, radix sort: four 8-bit digit passes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .device import Device

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "reduce_sum",
    "reduce_max",
    "select_flagged",
    "select_if_nonzero",
    "radix_sort",
    "radix_sort_pairs",
    "segmented_max",
    "segmented_argmax",
    "segmented_sum",
    "run_boundaries",
]

#: per-element op costs of each primitive (work-efficient implementations)
SCAN_OPS = 2.0
REDUCE_OPS = 2.0
SELECT_OPS = 3.0
SORT_OPS = 30.0
SEGREDUCE_OPS = 3.0


def exclusive_scan(device: Device, values: np.ndarray) -> Tuple[np.ndarray, int]:
    """Exclusive prefix sum; returns ``(offsets, total)``.

    ``offsets`` has the same length as ``values``; ``total`` is the
    grand sum (what CUB returns through the last element + reduction).
    """
    device.launch(SCAN_OPS, n_threads=values.size, name="exclusive_scan")
    out = np.zeros(values.size, dtype=np.int64)
    if values.size:
        np.cumsum(values[:-1], out=out[1:])
        total = int(out[-1]) + int(values[-1])
    else:
        total = 0
    return out, total


def inclusive_scan(device: Device, values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum."""
    device.launch(SCAN_OPS, n_threads=values.size, name="inclusive_scan")
    return np.cumsum(values, dtype=np.int64)


def reduce_sum(device: Device, values: np.ndarray) -> float:
    """Sum reduction."""
    device.launch(REDUCE_OPS, n_threads=values.size, name="reduce_sum")
    return float(values.sum()) if values.size else 0.0


def reduce_max(device: Device, values: np.ndarray) -> float:
    """Max reduction; returns ``-inf`` for empty input."""
    device.launch(REDUCE_OPS, n_threads=values.size, name="reduce_max")
    return float(values.max()) if values.size else float("-inf")


def select_flagged(device: Device, values: np.ndarray, flags: np.ndarray) -> np.ndarray:
    """Stream compaction: keep ``values[i]`` where ``flags[i]`` is true."""
    if values.shape != flags.shape:
        raise ValueError("values and flags must have the same shape")
    device.launch(SELECT_OPS, n_threads=values.size, name="select_flagged")
    return values[flags.astype(bool)]


def select_if_nonzero(device: Device, values: np.ndarray) -> np.ndarray:
    """Stream compaction keeping non-zero values (CUB ``SelectIf``)."""
    device.launch(SELECT_OPS, n_threads=values.size, name="select_if_nonzero")
    return values[values != 0]


def radix_sort(
    device: Device, keys: np.ndarray, descending: bool = False
) -> np.ndarray:
    """Stable radix sort of ``keys``."""
    device.launch(SORT_OPS, n_threads=keys.size, name="radix_sort")
    out = np.sort(keys, kind="stable")
    return out[::-1].copy() if descending else out


def radix_sort_pairs(
    device: Device,
    keys: np.ndarray,
    values: np.ndarray,
    descending: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable key-value radix sort; returns ``(sorted_keys, permuted_values)``."""
    if keys.shape != values.shape:
        raise ValueError("keys and values must have the same shape")
    device.launch(SORT_OPS, n_threads=keys.size, name="radix_sort_pairs")
    order = np.argsort(keys, kind="stable")
    if descending:
        order = order[::-1]
    return keys[order], values[order]


def _check_offsets(values: np.ndarray, seg_offsets: np.ndarray) -> None:
    if seg_offsets.size == 0:
        raise ValueError("seg_offsets must contain at least one entry")
    if int(seg_offsets[0]) != 0 or int(seg_offsets[-1]) != values.size:
        raise ValueError(
            "seg_offsets must start at 0 and end at len(values); got "
            f"[{seg_offsets[0]}, ..., {seg_offsets[-1]}] for {values.size} values"
        )


def segmented_max(
    device: Device, values: np.ndarray, seg_offsets: np.ndarray
) -> np.ndarray:
    """Per-segment max. Empty segments yield the dtype's minimum.

    ``seg_offsets`` is a CSR-style boundary array of length
    ``num_segments + 1``.
    """
    _check_offsets(values, seg_offsets)
    device.launch(SEGREDUCE_OPS, n_threads=values.size, name="segmented_max")
    nseg = seg_offsets.size - 1
    lo = np.iinfo(values.dtype).min if values.dtype.kind in "iu" else -np.inf
    out = np.full(nseg, lo, dtype=values.dtype)
    nonempty = seg_offsets[:-1] < seg_offsets[1:]
    if values.size and nonempty.any():
        out[nonempty] = np.maximum.reduceat(values, seg_offsets[:-1][nonempty])
    return out


def segmented_argmax(
    device: Device, values: np.ndarray, seg_offsets: np.ndarray
) -> np.ndarray:
    """Global index of the first max of each segment; -1 for empty segments.

    Implemented the way a GPU would: encode ``(value, position)`` into
    one sortable key and run a segmented max over the keys.
    """
    _check_offsets(values, seg_offsets)
    device.launch(SEGREDUCE_OPS + 1, n_threads=values.size, name="segmented_argmax")
    nseg = seg_offsets.size - 1
    out = np.full(nseg, -1, dtype=np.int64)
    if values.size == 0:
        return out
    n = values.size
    # key = value * n + (n - 1 - index): ties resolve to the earliest index
    keys = values.astype(np.int64) * n + (n - 1 - np.arange(n, dtype=np.int64))
    nonempty = seg_offsets[:-1] < seg_offsets[1:]
    if nonempty.any():
        seg_best = np.maximum.reduceat(keys, seg_offsets[:-1][nonempty])
        out[nonempty] = (n - 1) - (seg_best % n)
    return out


def segmented_sum(
    device: Device, values: np.ndarray, seg_offsets: np.ndarray
) -> np.ndarray:
    """Per-segment sum; empty segments yield 0."""
    _check_offsets(values, seg_offsets)
    device.launch(SEGREDUCE_OPS, n_threads=values.size, name="segmented_sum")
    nseg = seg_offsets.size - 1
    out = np.zeros(nseg, dtype=np.int64)
    nonempty = seg_offsets[:-1] < seg_offsets[1:]
    if values.size and nonempty.any():
        out[nonempty] = np.add.reduceat(values.astype(np.int64), seg_offsets[:-1][nonempty])
    return out


def run_boundaries(device: Device, values: np.ndarray) -> np.ndarray:
    """Offsets (length ``num_runs + 1``) of maximal runs of equal values.

    Used to recover sublist boundaries from a clique-list node's
    ``sublistID`` array: each sublist is a maximal run of equal parent
    indices (Section IV-B).
    """
    device.launch(1.0, n_threads=values.size, name="run_boundaries")
    n = values.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    starts = np.flatnonzero(np.concatenate(([True], values[1:] != values[:-1])))
    return np.concatenate([starts, [n]]).astype(np.int64)
