"""Command-line interface.

::

    python -m repro solve GRAPH [options]     # find/enumerate maximum cliques
    python -m repro batch JOBS.json [options] # run a job file through the service
    python -m repro serve [options]           # network solve server (repro-wire/1)
    python -m repro router --backends H:P ... # consistent-hash cluster router
    python -m repro cluster-status            # per-backend health/routing view
    python -m repro client solve GRAPH        # solve against a running server
    python -m repro client stats|shutdown     # server statistics / graceful drain
    python -m repro info GRAPH                # structural statistics
    python -m repro datasets [--category C]   # list the surrogate suite
    python -m repro compare GRAPH             # BF vs PMC vs warp-DFS on one graph

``GRAPH`` is a file (.edges/.txt/.mtx/.clq/...) or the name of a
surrogate suite dataset (see ``python -m repro datasets``).

Global options: ``--log-level {debug,info,warning,error}`` controls
the ``repro`` logger hierarchy (``debug`` shows per-stage timings);
``solve``/``compare`` accept ``--trace PATH`` (JSON trace, schema in
docs/OBSERVABILITY.md) and ``--trace-chrome PATH`` (``chrome://tracing``
format).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.config import PROBLEM_KINDS, SolverConfig
from .core.solver import MaxCliqueSolver
from .errors import (
    CheckpointError,
    DeviceLostError,
    DeviceOOMError,
    FaultPlanError,
    JobSpecError,
    SolverConfigError,
    SolveTimeoutError,
)
from .graph.csr import CSRGraph
from .gpusim.device import Device
from .gpusim.spec import DeviceSpec
from .log import configure as configure_logging, get_logger
from .trace import NULL_TRACER, JsonTracer

__all__ = ["main"]

MIB = 1 << 20

#: CLI output channel: results and listings, INFO level, plain stdout.
out = get_logger("cli")


def _load(name: str) -> CSRGraph:
    """Load a graph file, or fall back to a suite dataset name."""
    from .service.jobs import resolve_graph

    try:
        return resolve_graph(name)
    except JobSpecError as exc:
        raise SystemExit(f"error: {exc}")


def _make_tracer(args: argparse.Namespace):
    """A recording tracer when any trace output was requested."""
    if args.trace or args.trace_chrome:
        return JsonTracer()
    return NULL_TRACER


def _export_trace(tracer, args: argparse.Namespace) -> None:
    """Write requested trace files (also after OOM/timeout: partial
    traces are exactly what one wants when diagnosing those)."""
    if not getattr(tracer, "enabled", False):
        return
    # --json mode keeps stdout machine-parseable: demote to debug
    note = out.debug if getattr(args, "json", False) else out.info
    try:
        if args.trace:
            tracer.write_json(args.trace)
            note(f"trace: wrote {args.trace}")
        if args.trace_chrome:
            tracer.write_chrome_trace(args.trace_chrome)
            note(f"trace: wrote {args.trace_chrome} (chrome://tracing)")
    except OSError as exc:
        raise SystemExit(f"error: cannot write trace: {exc}")


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured JSON trace (spans, kernels, counters)",
    )
    p.add_argument(
        "--trace-chrome", metavar="PATH", default=None,
        help="write a Chrome-trace-format timeline (chrome://tracing)",
    )


def _add_problem_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--problem",
        default="max-clique",
        choices=list(PROBLEM_KINDS),
        help="problem kind: maximum cliques (default), exact k-clique "
        "counting (requires --k), or maximal clique enumeration",
    )
    p.add_argument(
        "--k", type=int, default=None, metavar="K",
        help="clique size for --problem k-clique-count",
    )


def _add_solver_args(p: argparse.ArgumentParser) -> None:
    _add_problem_args(p)
    p.add_argument(
        "--heuristic",
        default="multi-degree",
        choices=["none", "single-degree", "single-core", "multi-degree", "multi-core"],
        help="lower-bound heuristic (paper Section IV-A)",
    )
    p.add_argument(
        "--window", default=None,
        help="window size (int or 'auto') for the windowed search",
    )
    p.add_argument(
        "--window-order", default="natural",
        choices=["natural", "asc-degree", "desc-degree"],
    )
    p.add_argument(
        "--adaptive", action="store_true",
        help="recursive windowing: split windows that exceed memory",
    )
    p.add_argument(
        "--memory-mib", type=int, default=192,
        help="device memory budget in MiB (default 192)",
    )
    p.add_argument(
        "--time-limit", type=float, default=None,
        help="abort after this many wall seconds",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (alias of --time-limit; exits 3 "
        "with a timeout message when exceeded)",
    )
    p.add_argument(
        "--max-report", type=int, default=20,
        help="maximum cliques to print (count is always exact)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON result instead of text",
    )
    p.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="checkpoint file for the windowed search: resumed from if "
        "it exists, rewritten after every completed window, removed on "
        "success (requires --window)",
    )
    _add_trace_args(p)


def _checkpoint_round_trip(args: argparse.Namespace, graph, config):
    """Resolve ``solve --checkpoint``: (resume point, per-window sink).

    The file is the durable half of the round trip: loaded (and
    validated against this graph+config) when present, rewritten after
    every completed window, and deleted by the caller on success.
    """
    if args.checkpoint is None:
        return None, None
    if config.problem != "max-clique":
        raise SystemExit(
            "error: --checkpoint is only defined for the max-clique "
            f"problem kind (got --problem {config.problem})"
        )
    if not config.windowed:
        raise SystemExit(
            "error: --checkpoint requires a windowed search (set --window)"
        )
    from .core.checkpoint import load_checkpoint
    from .core.config import config_fingerprint

    path = Path(args.checkpoint)
    checkpoint = None
    if path.exists():
        try:
            checkpoint = load_checkpoint(path)
            checkpoint.validate_for(
                graph.fingerprint(), config_fingerprint(config)
            )
        except CheckpointError as exc:
            raise SystemExit(f"error: {exc}")
        if not args.json:
            out.info(
                f"checkpoint: resuming from {path} "
                f"({checkpoint.windows_done}/{checkpoint.total_windows} "
                f"windows done, best={checkpoint.omega})"
            )

    def sink(ckpt) -> None:
        try:
            ckpt.save(path)
        except OSError as exc:
            raise SystemExit(f"error: cannot write checkpoint {path}: {exc}")

    return checkpoint, sink


def _cmd_solve(args: argparse.Namespace) -> int:
    graph = _load(args.graph)
    window = args.window
    if window is not None and window != "auto":
        window = int(window)
    try:
        config = SolverConfig(
            problem=args.problem,
            k=args.k,
            heuristic=args.heuristic,
            window_size=window,
            window_order=args.window_order,
            adaptive_windowing=args.adaptive,
            time_limit_s=args.timeout if args.timeout is not None else args.time_limit,
            max_cliques_report=max(args.max_report, 1),
        )
    except SolverConfigError as exc:
        raise SystemExit(f"error: {exc}")
    device = Device(DeviceSpec(memory_bytes=args.memory_mib * MIB))
    tracer = _make_tracer(args)
    checkpoint, checkpoint_sink = _checkpoint_round_trip(args, graph, config)
    if not args.json:
        out.info(f"graph: {graph}")
    try:
        result = MaxCliqueSolver(
            graph,
            config,
            device,
            tracer=tracer,
            checkpoint=checkpoint,
            checkpoint_sink=checkpoint_sink,
        ).solve()
        if args.checkpoint is not None:
            # the solve finished: the round trip is complete
            Path(args.checkpoint).unlink(missing_ok=True)
    except DeviceLostError as exc:
        out.info(f"device lost: {exc}")
        if args.checkpoint is not None and Path(args.checkpoint).exists():
            out.info(f"hint: re-run with the same --checkpoint {args.checkpoint}")
            out.info("      to resume from the last completed window")
        _export_trace(tracer, args)
        return 4
    except DeviceOOMError as exc:
        out.info(f"OOM: {exc}")
        out.info("hint: try --window 1024 (optionally --adaptive), a stronger")
        out.info("      --heuristic, or a larger --memory-mib budget")
        _export_trace(tracer, args)
        return 2
    except SolveTimeoutError as exc:
        out.info(f"timeout: {exc}")
        _export_trace(tracer, args)
        return 3
    if args.json:
        import json

        telemetry = {
            "model_time_s": result.model_time_s,
            "wall_time_s": result.wall_time_s,
            "peak_memory_bytes": result.peak_memory_bytes,
            "windows": len(result.windows),
            "stage_model_times_s": result.stage_times,
        }
        if config.problem == "k-clique-count":
            payload = {
                "problem": result.problem,
                "k": result.k,
                "count": result.count,
                "found_by": result.found_by,
                **telemetry,
            }
        elif config.problem == "maximal-enum":
            payload = {
                "problem": result.problem,
                "num_maximal_cliques": result.num_maximal_cliques,
                "max_clique_size": result.max_clique_size,
                "cliques": [
                    [int(v) for v in row]
                    for row in result.cliques[: args.max_report]
                ],
                "found_by": result.found_by,
                "enumerated_all": result.enumerated_all,
                **telemetry,
            }
        else:
            payload = {
                "problem": result.problem,
                "clique_number": result.clique_number,
                "num_maximum_cliques": result.num_maximum_cliques,
                "cliques": [row.tolist() for row in result.cliques[: args.max_report]],
                "found_by": result.found_by,
                "enumerated_all": result.enumerated_all,
                "heuristic": {
                    "kind": result.heuristic.kind,
                    "lower_bound": result.heuristic.lower_bound,
                },
                "pruned_fraction": result.pruned_fraction,
                **telemetry,
            }
        # machine-readable output bypasses logging so piping always works
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
        _export_trace(tracer, args)
        return 0
    out.info(result.summary())
    if config.problem == "k-clique-count":
        _export_trace(tracer, args)
        return 0
    shown = min(args.max_report, len(result.cliques))
    for row in result.cliques[:shown]:
        out.info("  clique: " + " ".join(str(int(v)) for v in row))
    if config.problem == "maximal-enum":
        extra = result.num_maximal_cliques - shown
        if extra > 0:
            out.info(f"  ... and {extra} more maximal clique(s)")
    else:
        extra = result.num_maximum_cliques - shown
        if extra > 0 and result.enumerated_all:
            out.info(f"  ... and {extra} more maximum clique(s)")
    if result.stage_times:
        breakdown = "  ".join(
            f"{name}={t * 1e3:.3f}ms" for name, t in result.stage_times.items()
        )
        out.debug(f"  stages: {breakdown}")
    _export_trace(tracer, args)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .service import SolveService
    from .service.jobs import load_jobs

    try:
        requests = load_jobs(args.jobs)
    except JobSpecError as exc:
        out.info(f"error: {exc}")
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        from .gpusim.faults import load_fault_plan

        try:
            fault_plan = load_fault_plan(args.fault_plan)
        except FaultPlanError as exc:
            out.info(f"error: {exc}")
            return 2
        if not args.json:
            out.info(
                f"chaos: injecting {len(fault_plan)} fault(s) from "
                f"{args.fault_plan}"
            )
    tracer = _make_tracer(args)
    service = SolveService(
        devices=args.devices,
        spec=DeviceSpec(memory_bytes=args.memory_mib * MIB),
        policy=args.policy,
        cache_size=args.cache_size,
        max_attempts=args.max_attempts,
        default_timeout_s=args.timeout,
        tracer=tracer,
        fault_plan=fault_plan,
        executor=args.executor,
        workers=args.workers,
    )
    for request in requests:
        service.submit(request)
    records = service.run()
    summary = service.summary()
    payload = {
        "jobs": [r.to_dict() for r in records],
        "summary": summary.to_dict(),
        "devices": service.pool.summary(),
    }
    import json

    if args.output:
        try:
            Path(args.output).write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
        except OSError as exc:
            raise SystemExit(f"error: cannot write {args.output}: {exc}")
        if not args.json:
            out.info(f"batch: wrote {args.output}")
    if args.json:
        # machine-readable output bypasses logging so piping always works
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
    else:
        for r in records:
            if r.status != "ok":
                figures = r.error or ""
            elif r.problem == "k-clique-count":
                figures = f"count[k={r.k}]={r.k_clique_count}"
            elif r.problem == "maximal-enum":
                figures = f"maximal={r.num_maximal_cliques} omega={r.clique_number}"
            else:
                figures = f"omega={r.clique_number} x{r.num_maximum_cliques}"
            tags = "".join(
                [
                    " cache" if r.cache_hit else "",
                    " degraded" if r.degraded else "",
                    f" transient-retries={r.transient_retries}"
                    if r.transient_retries
                    else "",
                    f" migrations={r.migrations}" if r.migrations else "",
                ]
            )
            out.info(
                f"job {r.job_id} [{r.label}]: {r.status} {figures} "
                f"admission={r.admission} attempts={r.attempts} "
                f"model={r.model_time_s * 1e3:.3f}ms{tags}"
            )
        out.info(
            f"batch: {summary.ok}/{summary.total} ok, "
            f"{summary.rejected} rejected, {summary.failed} failed, "
            f"{summary.cache_hits} cache hit(s) on {summary.devices} device(s); "
            f"makespan {summary.makespan_model_s * 1e3:.3f} ms (model)"
        )
    _export_trace(tracer, args)
    return 0 if all(r.ok for r in records) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server import ServerConfig, SolveServer
    from .service import SolveService
    from .trace import CounterTracer

    if args.workers < 1:
        raise SystemExit("error: --workers must be at least 1")
    service = SolveService(
        devices=args.devices,
        spec=DeviceSpec(memory_bytes=args.memory_mib * MIB),
        policy=args.policy,
        cache_size=args.cache_size,
        max_attempts=args.max_attempts,
        default_timeout_s=args.timeout,
        # counters-only tracer: the stats frame reports service.*
        # counters without forcing the threaded executor serial
        tracer=CounterTracer(),
        executor="threaded" if args.workers > 1 else "serial",
        workers=args.workers,
    )
    from .server import DEFAULT_PORT

    config = ServerConfig(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        max_conns=args.max_conns,
        rate=args.rate,
        burst=args.burst,
        queue_depth=args.queue_depth,
        max_frame_bytes=args.max_frame_mib * MIB,
        drain_timeout_s=args.drain_timeout,
    )
    server = SolveServer(service, config)
    out.info(
        f"serve: {args.devices} device(s) x {args.memory_mib} MiB, "
        f"{args.workers} worker(s), queue depth {args.queue_depth}, "
        f"rate {'off' if args.rate <= 0 else f'{args.rate:g}/s'}"
    )
    try:
        server.run()
    except OSError as exc:
        raise SystemExit(f"error: cannot bind {args.host}:{args.port}: {exc}")
    summary = service.summary()
    out.info(
        f"serve: drained after {summary.total} job(s) "
        f"({summary.ok} ok, {summary.rejected} rejected, "
        f"{summary.failed} failed, {summary.cache_hits} cache hit(s))"
    )
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    from .cluster import DEFAULT_ROUTER_PORT, Router, RouterConfig
    from .server.client import _parse_address

    try:
        backends = [_parse_address(b) for b in args.backends]
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    config = RouterConfig(
        backends=backends,
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_ROUTER_PORT,
        replicas=args.replicas,
        max_conns=args.max_conns,
        max_frame_bytes=args.max_frame_mib * MIB,
        probe_interval_s=args.probe_interval,
        down_threshold=args.down_threshold,
        checkpoint_poll_s=args.checkpoint_poll,
        drain_timeout_s=args.drain_timeout,
        jitter_seed=args.jitter_seed,
    )
    try:
        router = Router(config)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    out.info(
        f"router: {len(backends)} backend(s), {args.replicas} ring "
        f"replica(s) each, probe every {args.probe_interval:g}s "
        f"(down after {args.down_threshold} misses)"
    )
    try:
        router.run()
    except OSError as exc:
        raise SystemExit(f"error: cannot bind {args.host}:{args.port}: {exc}")
    out.info(
        f"router: drained after "
        f"{router.stats.get('solves.accepted')} solve(s) "
        f"({router.stats.get('failover.total')} failover(s), "
        f"{router.stats.get('rebalanced.total')} rebalance(s))"
    )
    return 0


def _cmd_chaos_proxy(args: argparse.Namespace) -> int:
    from .errors import NetFaultPlanError
    from .netchaos import ChaosProxy, load_net_fault_plan
    from .server.client import _parse_address

    try:
        upstream = _parse_address(args.upstream)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    plan = None
    if args.plan is not None:
        try:
            plan = load_net_fault_plan(args.plan)
        except (OSError, NetFaultPlanError) as exc:
            raise SystemExit(f"error: cannot load {args.plan}: {exc}")
    proxy = ChaosProxy(
        upstream,
        plan=plan,
        host=args.host,
        port=args.port,
        max_frame_bytes=args.max_frame_mib * MIB,
    )
    if plan is None:
        out.info(
            f"chaos-proxy: transparent relay to "
            f"{upstream[0]}:{upstream[1]} (no fault plan)"
        )
    else:
        out.info(
            f"chaos-proxy: relaying to {upstream[0]}:{upstream[1]} with "
            f"{len(plan.events)} wire fault(s) and "
            f"{len(plan.partitions)} partition window(s) (seed {plan.seed})"
        )
    try:
        proxy.run()
    except OSError as exc:
        raise SystemExit(f"error: cannot bind {args.host}:{args.port}: {exc}")
    injected = proxy.counters.get("injected.total", 0)
    out.info(
        f"chaos-proxy: done after "
        f"{proxy.counters.get('conns.total', 0)} connection(s), "
        f"{injected} fault(s) injected"
    )
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from .cluster import DEFAULT_ROUTER_PORT
    from .errors import ProtocolError, ServerError

    if args.port is None and not getattr(args, "addr", None):
        args.port = DEFAULT_ROUTER_PORT
    client = _make_client(args)
    try:
        with client:
            stats = client.stats()
    except (ServerError, ProtocolError) as exc:
        out.info(f"error: {exc}")
        return 1
    if "router" not in stats or "backends" not in stats:
        out.info(
            f"error: {client.host}:{client.port} answers stats but is "
            f"not a router (point this at `repro router`)"
        )
        return 1
    if args.json:
        import json

        sys.stdout.write(json.dumps(stats, indent=2) + "\n")
        return 0
    router = stats["router"]
    latency = router["latency"]
    out.info(
        f"router: {router.get('backends_available', 0)}/"
        f"{router.get('backends_total', 0)} backend(s) available, "
        f"{router.get('in_flight', 0)} solve(s) in flight"
        f"{' (draining)' if router.get('draining') else ''}"
    )
    out.info(
        f"routed: {router.get('routed.total', 0)} "
        f"(failed over {router.get('failover.total', 0)}, "
        f"resumed via checkpoint {router.get('failover.resumed', 0)}, "
        f"rebalanced {router.get('rebalanced.total', 0)}, "
        f"re-submitted {router.get('resubmits.total', 0)})"
    )
    out.info(
        f"latency: p50={latency['p50_ms']:.1f}ms p99={latency['p99_ms']:.1f}ms "
        f"over {latency['count']} request(s)"
    )
    for name, backend in sorted(stats["backends"].items()):
        health = backend["health"]
        link = "up" if backend.get("connected") else "no link"
        out.info(
            f"  {name:24s} {health['state']:8s} ({link})  "
            f"routed={backend.get('routed', 0)} "
            f"failed_over={backend.get('failed_over', 0)} "
            f"rebalanced={backend.get('rebalanced', 0)} "
            f"probe_misses={health['consecutive_failures']}"
        )
    return 0


def _make_client(args: argparse.Namespace):
    from .server import DEFAULT_PORT, SolveClient

    if getattr(args, "addr", None):
        try:
            return SolveClient(
                addresses=list(args.addr),
                timeout_s=args.wait,
                retries=args.retries,
            )
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"error: {exc}")
    return SolveClient(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        timeout_s=args.wait,
        retries=args.retries,
    )


def _cmd_client_solve(args: argparse.Namespace) -> int:
    from .errors import ProtocolError, ServerError

    window = args.window
    if window is not None and window != "auto":
        window = int(window)
    config = {
        "heuristic": args.heuristic,
        "window_size": window,
        "window_order": args.window_order,
        "adaptive_windowing": args.adaptive,
        "max_cliques_report": max(args.max_report, 1),
    }
    if args.k is not None:
        config["k"] = args.k
    # ship local files gzip-compressed inline; anything else is a
    # dataset name (or server-side path) the server resolves itself
    if Path(args.graph).exists():
        graph = _load(args.graph)
    else:
        graph = args.graph
    client = _make_client(args)
    try:
        with client:
            reply = client.solve(
                graph,
                config=config,
                problem=args.problem,
                timeout_s=args.timeout,
                label=args.graph,
                deadline_s=args.deadline,
            )
    except (ServerError, ProtocolError) as exc:
        code = getattr(exc, "exit_code", 1)
        out.info(f"error: {exc}")
        return code if code != 0 else 1
    record = reply["record"]
    exit_code = int(reply.get("exit_code", 0))
    problem = record.get("problem", "max-clique")
    if args.json:
        import json

        if problem == "k-clique-count":
            payload = {
                "problem": problem,
                "k": record["k"],
                "count": record["k_clique_count"],
                "record": record,
            }
        elif problem == "maximal-enum":
            payload = {
                "problem": problem,
                "num_maximal_cliques": record["num_maximal_cliques"],
                "max_clique_size": record["clique_number"],
                "cliques": reply.get("cliques", [])[: args.max_report],
                "enumerated_all": record["enumerated_all"],
                "record": record,
            }
        else:
            payload = {
                "clique_number": record["clique_number"],
                "num_maximum_cliques": record["num_maximum_cliques"],
                "cliques": reply.get("cliques", [])[: args.max_report],
                "enumerated_all": record["enumerated_all"],
                "record": record,
            }
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
        return exit_code
    if record["status"] != "ok":
        out.info(
            f"job {record['job_id']}: {record['status']} "
            f"({record.get('error') or record.get('admission_reason')})"
        )
        return exit_code
    tags = "".join(
        [
            " (cache)" if record["cache_hit"] else "",
            " (degraded)" if record["degraded"] else "",
        ]
    )
    shown = reply.get("cliques", [])[: args.max_report]
    if problem == "k-clique-count":
        out.info(
            f"{record['k_clique_count']} {record['k']}-clique(s){tags}"
        )
    elif problem == "maximal-enum":
        out.info(
            f"{record['num_maximal_cliques']} maximal clique(s), "
            f"omega = {record['clique_number']}{tags}"
        )
        for row in shown:
            out.info("  clique: " + " ".join(str(int(v)) for v in row))
        extra = (record["num_maximal_cliques"] or 0) - len(shown)
        if extra > 0:
            out.info(f"  ... and {extra} more maximal clique(s)")
    else:
        out.info(
            f"omega = {record['clique_number']}, "
            f"{record['num_maximum_cliques']} maximum clique(s){tags}"
        )
        for row in shown:
            out.info("  clique: " + " ".join(str(int(v)) for v in row))
        extra = (record["num_maximum_cliques"] or 0) - len(shown)
        if extra > 0 and record["enumerated_all"]:
            out.info(f"  ... and {extra} more maximum clique(s)")
    out.info(
        f"  server: attempts={record['attempts']} "
        f"admission={record['admission']} "
        f"model={record['model_time_s'] * 1e3:.3f}ms "
        f"wall={record['wall_time_s'] * 1e3:.1f}ms"
    )
    return exit_code


def _cmd_client_stats(args: argparse.Namespace) -> int:
    from .errors import ProtocolError, ServerError

    client = _make_client(args)
    try:
        with client:
            stats = client.stats()
    except (ServerError, ProtocolError) as exc:
        out.info(f"error: {exc}")
        return 1
    if args.json:
        import json

        sys.stdout.write(json.dumps(stats, indent=2) + "\n")
        return 0
    server = stats["server"]
    service = stats["service"]
    latency = server["latency"]
    out.info(
        f"connections: {server.get('connections_open', 0)} open / "
        f"{server.get('connections.total', 0)} total; "
        f"queue depth {server.get('queue_depth', 0)}, "
        f"in flight {server.get('in_flight', 0)}"
        f"{' (draining)' if server.get('draining') else ''}"
    )
    jobs = service["jobs"]
    out.info(
        f"jobs: {jobs['total']} total, {jobs['ok']} ok, "
        f"{jobs['rejected']} rejected, {jobs['failed']} failed, "
        f"{jobs['cache_hits']} cache hit(s)"
    )
    cache = service["cache"]
    out.info(
        f"cache: {cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['size']}/{cache['capacity']} entries"
    )
    out.info(
        f"latency: p50={latency['p50_ms']:.1f}ms p99={latency['p99_ms']:.1f}ms "
        f"over {latency['count']} request(s)"
    )
    pool = service["pool"]
    out.info(
        f"pool: {pool['devices']} device(s), "
        f"makespan {pool['makespan_model_s'] * 1e3:.3f}ms (model), "
        f"{pool['device_faults']} fault(s)"
    )
    return 0


def _cmd_client_shutdown(args: argparse.Namespace) -> int:
    from .errors import ProtocolError, ServerError

    client = _make_client(args)
    try:
        with client:
            bye = client.shutdown()
    except (ServerError, ProtocolError) as exc:
        out.info(f"error: {exc}")
        return 1
    out.info(
        f"server draining: {bye.get('in_flight', 0)} in flight, "
        f"{bye.get('queued', 0)} queued"
    )
    return 0


def _parse_edge_pairs(pairs: List[str]) -> List[tuple]:
    """``["0,1", "2,3"]`` -> ``[(0, 1), (2, 3)]`` (CLI mutation syntax)."""
    out_pairs = []
    for spec in pairs:
        u, sep, v = spec.partition(",")
        if not sep or not u.strip().isdigit() or not v.strip().isdigit():
            raise SystemExit(
                f"error: edge {spec!r} is not of the form U,V (two "
                "non-negative integers)"
            )
        out_pairs.append((int(u), int(v)))
    return out_pairs


def _format_update(frame: dict) -> str:
    witness = ",".join(str(v) for v in frame.get("witness", []))
    tags = [frame.get("path", "?")]
    if frame.get("replayed"):
        tags.append("replayed")
    if frame.get("closed"):
        tags.append("closed")
    return (
        f"epoch {frame.get('epoch', '?'):>4}: omega={frame.get('omega', '?')} "
        f"maximum_cliques={frame.get('num_maximum_cliques', '?')} "
        f"witness=[{witness}] ({', '.join(tags)})"
    )


def _cmd_watch(args: argparse.Namespace) -> int:
    from .errors import ProtocolError, ServerError

    try:
        if args.graph is not None:
            graph = _load(args.graph) if Path(args.graph).exists() else args.graph
            opener = _make_client(args)
            with opener:
                opened = opener.open_session(graph, session=args.session)
            if not args.json:
                out.info(
                    f"opened session {opened['session']!r} "
                    f"(|V|={opened['num_vertices']}, "
                    f"|E|={opened['num_edges']})"
                )
        watcher = _make_client(args)
        seen = 0
        with watcher:
            for frame in watcher.subscribe(args.session):
                if args.json:
                    import json

                    sys.stdout.write(json.dumps(frame) + "\n")
                    sys.stdout.flush()
                else:
                    out.info(_format_update(frame))
                seen += 1
                if frame.get("closed"):
                    break
                if args.max_updates is not None and seen >= args.max_updates:
                    break
    except KeyboardInterrupt:
        return 0
    except (ServerError, ProtocolError) as exc:
        code = getattr(exc, "exit_code", 1)
        out.info(f"error: {exc}")
        return code if code != 0 else 1
    return 0


def _cmd_client_mutate(args: argparse.Namespace) -> int:
    from .errors import ProtocolError, ServerError

    inserts = _parse_edge_pairs(args.insert or [])
    deletes = _parse_edge_pairs(args.delete or [])
    if not inserts and not deletes:
        out.info("error: nothing to do (pass --insert and/or --delete)")
        return 1
    client = _make_client(args)
    try:
        with client:
            frame = client.mutate(args.session, insert=inserts, delete=deletes)
    except (ServerError, ProtocolError) as exc:
        code = getattr(exc, "exit_code", 1)
        out.info(f"error: {exc}")
        return code if code != 0 else 1
    if args.json:
        import json

        sys.stdout.write(json.dumps(frame) + "\n")
        return 0
    out.info(_format_update(frame))
    return 0


def _cmd_client_close_session(args: argparse.Namespace) -> int:
    from .errors import ProtocolError, ServerError

    client = _make_client(args)
    try:
        with client:
            frame = client.close_session(args.session)
    except (ServerError, ProtocolError) as exc:
        code = getattr(exc, "exit_code", 1)
        out.info(f"error: {exc}")
        return code if code != 0 else 1
    out.info(
        f"closed session {frame.get('session')!r} at " + _format_update(frame)
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .graph.stats import analyze

    graph = _load(args.graph)
    stats = analyze(graph, triangles=not args.no_triangles)
    out.info(f"graph:             {graph}")
    out.info(f"max degree:        {stats.max_degree}")
    out.info(f"degree p90/p99:    {stats.degree_p90:.0f} / {stats.degree_p99:.0f}")
    out.info(
        f"degeneracy:        {stats.degeneracy} (omega <= {stats.clique_upper_bound})"
    )
    if not args.no_triangles:
        out.info(f"triangles:         {stats.triangles}")
        out.info(f"clustering:        {stats.global_clustering:.4f}")
    out.info(f"prunability:       {stats.hardness_hint()}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .datasets.suite import SUITE, load as load_dataset

    for spec in SUITE:
        if args.category and spec.category != args.category:
            continue
        if args.sizes:
            g = load_dataset(spec.name)
            out.info(
                f"{spec.name:24s} {spec.category:8s} |V|={g.num_vertices:>7d} "
                f"|E|={g.num_edges:>8d} deg={g.average_degree:6.1f}  {spec.notes}"
            )
        else:
            out.info(f"{spec.name:24s} {spec.category:8s} {spec.notes}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .baselines.gpu_dfs import gpu_dfs_max_clique
    from .baselines.pmc import pmc_max_clique

    graph = _load(args.graph)
    out.info(f"graph: {graph}")
    # one tracer spans all three solvers, so a single trace file shows
    # the per-phase comparison apples-to-apples
    tracer = _make_tracer(args)
    device = Device(DeviceSpec(memory_bytes=args.memory_mib * MIB))
    try:
        bf = MaxCliqueSolver(graph, SolverConfig(), device, tracer=tracer).solve()
        out.info(
            f"breadth-first (this paper): omega={bf.clique_number} "
            f"x{bf.num_maximum_cliques}  model={bf.model_time_s * 1e3:.3f} ms"
        )
        omega = bf.clique_number
    except DeviceOOMError:
        out.info("breadth-first (this paper): OOM at this budget")
        omega = None
    pmc = pmc_max_clique(graph, tracer=tracer)
    out.info(
        f"PMC CPU branch&bound:       omega={pmc.clique_number}  "
        f"model={pmc.model_time_s * 1e3:.3f} ms"
    )
    dfs = gpu_dfs_max_clique(
        graph,
        Device(DeviceSpec(memory_bytes=args.memory_mib * MIB)),
        tracer=tracer,
    )
    out.info(
        f"warp-parallel GPU DFS:      omega={dfs.clique_number}  "
        f"model={dfs.model_time_s * 1e3:.3f} ms  "
        f"(subtree imbalance {dfs.imbalance:.1f}x)"
    )
    agree = omega is None or (omega == pmc.clique_number == dfs.clique_number)
    # the other problem kinds, each against its exact CPU oracle
    from .baselines import count_k_cliques_reference, maximal_clique_set

    kc = MaxCliqueSolver(
        graph,
        SolverConfig(problem="k-clique-count", k=args.k),
        Device(DeviceSpec(memory_bytes=args.memory_mib * MIB)),
        tracer=tracer,
    ).solve()
    kc_ref = count_k_cliques_reference(graph, args.k)
    out.info(
        f"k-clique-count (k={args.k}):     count={kc.count}  "
        f"model={kc.model_time_s * 1e3:.3f} ms  "
        f"(CPU oracle: {kc_ref})"
    )
    me = MaxCliqueSolver(
        graph,
        SolverConfig(problem="maximal-enum"),
        Device(DeviceSpec(memory_bytes=args.memory_mib * MIB)),
        tracer=tracer,
    ).solve()
    me_ref = len(maximal_clique_set(graph))
    out.info(
        f"maximal-enum:               maximal={me.num_maximal_cliques}  "
        f"model={me.model_time_s * 1e3:.3f} ms  "
        f"(CPU oracle: {me_ref})"
    )
    agree = agree and kc.count == kc_ref and me.num_maximal_cliques == me_ref
    _export_trace(tracer, args)
    if not agree:
        out.info("warning: solvers disagree!")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Maximum clique enumeration on a simulated GPU"
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=["debug", "info", "warning", "error"],
        help="repro logger level (debug shows per-stage timings)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="enumerate maximum cliques")
    p_solve.add_argument("graph", help="graph file or suite dataset name")
    _add_solver_args(p_solve)
    p_solve.set_defaults(func=_cmd_solve)

    p_batch = sub.add_parser(
        "batch", help="run a JSON job file through the solve service"
    )
    p_batch.add_argument("jobs", help="jobs file (JSON; see docs/SERVICE.md)")
    p_batch.add_argument(
        "--devices", type=int, default=1,
        help="size of the simulated device pool (default 1)",
    )
    p_batch.add_argument(
        "--policy", default="fifo", choices=["fifo", "sef"],
        help="job ordering: submission order or shortest-expected-first",
    )
    p_batch.add_argument(
        "--cache-size", type=int, default=128,
        help="result-cache capacity in entries; 0 disables (default 128)",
    )
    p_batch.add_argument(
        "--memory-mib", type=int, default=192,
        help="per-device memory budget in MiB (default 192)",
    )
    p_batch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job wall-clock budget (jobs may override)",
    )
    p_batch.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per job along the degradation ladder (default 3)",
    )
    p_batch.add_argument(
        "--executor", default="serial", choices=["serial", "threaded"],
        help="batch executor: one job at a time, or host threads "
        "overlapping jobs across the device pool (byte-identical "
        "records; lower wall-clock on multi-core hosts)",
    )
    p_batch.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker threads for --executor threaded "
        "(default: one per device; clamped to the pool size)",
    )
    p_batch.add_argument(
        "--fault-plan", metavar="PATH", default=None,
        help="inject deterministic device faults from a fault-plan file "
        "(JSON, repro-fault-plan/1; see docs/SERVICE.md) -- results must "
        "match the fault-free run, only fault accounting differs",
    )
    p_batch.add_argument(
        "--json", action="store_true",
        help="emit the full JSON report ({jobs, summary, devices}) on stdout",
    )
    p_batch.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the JSON report to a file",
    )
    _add_trace_args(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_info = sub.add_parser("info", help="structural statistics")
    p_info.add_argument("graph")
    p_info.add_argument("--no-triangles", action="store_true")
    p_info.set_defaults(func=_cmd_info)

    p_data = sub.add_parser("datasets", help="list the surrogate suite")
    p_data.add_argument("--category", default=None)
    p_data.add_argument("--sizes", action="store_true", help="also build and show sizes")
    p_data.set_defaults(func=_cmd_datasets)

    p_cmp = sub.add_parser(
        "compare",
        help="BF vs PMC vs warp-DFS, plus the counting/enumeration "
        "kinds vs their exact CPU oracles",
    )
    p_cmp.add_argument("graph")
    p_cmp.add_argument("--memory-mib", type=int, default=192)
    p_cmp.add_argument(
        "--k", type=int, default=3, metavar="K",
        help="clique size for the k-clique-count row (default 3)",
    )
    _add_trace_args(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_serve = sub.add_parser(
        "serve", help="network solve server (repro-wire/1)"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default 7421; 0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="solver worker threads; >1 enables the threaded batch "
        "executor (default 1)",
    )
    p_serve.add_argument(
        "--max-conns", type=int, default=32,
        help="concurrent client connections before refusing (default 32)",
    )
    p_serve.add_argument(
        "--rate", type=float, default=0.0,
        help="per-connection solve rate limit in requests/second "
        "(token bucket; 0 disables, the default)",
    )
    p_serve.add_argument(
        "--burst", type=int, default=8,
        help="token-bucket burst size for --rate (default 8)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="bounded solve queue; beyond it solves get a retriable "
        "server_busy error (default 64)",
    )
    p_serve.add_argument(
        "--max-frame-mib", type=int, default=8,
        help="per-frame wire size limit in MiB (default 8)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=60.0, metavar="SECONDS",
        help="graceful-drain budget on SIGTERM/shutdown (default 60)",
    )
    p_serve.add_argument(
        "--devices", type=int, default=1,
        help="size of the simulated device pool (default 1)",
    )
    p_serve.add_argument(
        "--policy", default="fifo", choices=["fifo", "sef"],
        help="job ordering inside a micro-batch (default fifo)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=128,
        help="result-cache capacity in entries; 0 disables (default 128)",
    )
    p_serve.add_argument(
        "--memory-mib", type=int, default=192,
        help="per-device memory budget in MiB (default 192)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job wall-clock budget (requests may override)",
    )
    p_serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per job along the degradation ladder (default 3)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_router = sub.add_parser(
        "router",
        help="consistent-hash cluster router over N solve servers",
    )
    p_router.add_argument(
        "--backends", nargs="+", required=True, metavar="HOST:PORT",
        help="backend solve servers (at least one)",
    )
    p_router.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    p_router.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default 7431; 0 picks an ephemeral port)",
    )
    p_router.add_argument(
        "--replicas", type=int, default=64, metavar="N",
        help="virtual nodes per backend on the hash ring (default 64)",
    )
    p_router.add_argument(
        "--max-conns", type=int, default=64,
        help="concurrent client connections before refusing (default 64)",
    )
    p_router.add_argument(
        "--max-frame-mib", type=int, default=8,
        help="per-frame wire size limit in MiB (default 8)",
    )
    p_router.add_argument(
        "--probe-interval", type=float, default=0.5, metavar="SECONDS",
        help="seconds between per-backend health probes (default 0.5)",
    )
    p_router.add_argument(
        "--down-threshold", type=int, default=3,
        help="consecutive probe misses before a backend is down "
        "(default 3)",
    )
    p_router.add_argument(
        "--checkpoint-poll", type=float, default=0.25, metavar="SECONDS",
        help="seconds between checkpoint polls of in-flight resumable "
        "solves (default 0.25)",
    )
    p_router.add_argument(
        "--drain-timeout", type=float, default=60.0, metavar="SECONDS",
        help="graceful-drain budget on SIGTERM/shutdown (default 60)",
    )
    p_router.add_argument(
        "--jitter-seed", type=int, default=None, metavar="SEED",
        help="seed the resubmit-backoff jitter stream (default: OS entropy)",
    )
    p_router.set_defaults(func=_cmd_router)

    p_chaos = sub.add_parser(
        "chaos-proxy",
        help="deterministic wire-fault injection proxy (repro-net-fault-plan/1)",
    )
    p_chaos.add_argument(
        "--upstream", required=True, metavar="HOST:PORT",
        help="the real endpoint to relay to (a repro serve or router)",
    )
    p_chaos.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    p_chaos.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (default 0: ephemeral)",
    )
    p_chaos.add_argument(
        "--plan", default=None, metavar="PLAN.json",
        help="repro-net-fault-plan/1 file; omit for a transparent relay",
    )
    p_chaos.add_argument(
        "--max-frame-mib", type=int, default=8,
        help="per-frame wire size limit in MiB (default 8)",
    )
    p_chaos.set_defaults(func=_cmd_chaos_proxy)

    p_client = sub.add_parser(
        "client", help="talk to a running solve server"
    )
    client_sub = p_client.add_subparsers(dest="verb", required=True)

    def _add_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--host", default="127.0.0.1",
            help="server host (default 127.0.0.1)",
        )
        p.add_argument(
            "--port", type=int, default=None,
            help="server port (default 7421)",
        )
        p.add_argument(
            "--retries", type=int, default=5,
            help="retries for retriable failures (default 5)",
        )
        p.add_argument(
            "--wait", type=float, default=120.0, metavar="SECONDS",
            help="socket timeout per reply (default 120)",
        )
        p.add_argument(
            "--addr", action="append", metavar="HOST:PORT", default=None,
            help="server address; repeat to give fallbacks the client "
            "rotates through on connection failure or a draining "
            "reject (overrides --host/--port)",
        )

    p_csolve = client_sub.add_parser(
        "solve", help="solve one graph against the server"
    )
    p_csolve.add_argument("graph", help="graph file or suite dataset name")
    _add_problem_args(p_csolve)
    p_csolve.add_argument(
        "--heuristic",
        default="multi-degree",
        choices=["none", "single-degree", "single-core", "multi-degree", "multi-core"],
        help="lower-bound heuristic (paper Section IV-A)",
    )
    p_csolve.add_argument(
        "--window", default=None,
        help="window size (int or 'auto') for the windowed search",
    )
    p_csolve.add_argument(
        "--window-order", default="natural",
        choices=["natural", "asc-degree", "desc-degree"],
    )
    p_csolve.add_argument(
        "--adaptive", action="store_true",
        help="recursive windowing: split windows that exceed memory",
    )
    p_csolve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (exits 3 when exceeded)",
    )
    p_csolve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="end-to-end answer budget, retries included; the remaining "
        "budget propagates on the wire so router and server stop "
        "working on the request once it is spent (exits 3)",
    )
    p_csolve.add_argument(
        "--max-report", type=int, default=20,
        help="maximum cliques to print (count is always exact)",
    )
    p_csolve.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON result instead of text",
    )
    _add_client_args(p_csolve)
    p_csolve.set_defaults(func=_cmd_client_solve)

    p_cstats = client_sub.add_parser(
        "stats", help="server gauges, latency percentiles, service counters"
    )
    p_cstats.add_argument(
        "--json", action="store_true",
        help="emit the raw stats frame as JSON",
    )
    _add_client_args(p_cstats)
    p_cstats.set_defaults(func=_cmd_client_stats)

    p_cshut = client_sub.add_parser(
        "shutdown", help="ask the server to drain and exit"
    )
    _add_client_args(p_cshut)
    p_cshut.set_defaults(func=_cmd_client_shutdown)

    p_cmut = client_sub.add_parser(
        "mutate", help="apply an edge insert/delete batch to a session"
    )
    p_cmut.add_argument("session", help="session id (see 'repro watch')")
    p_cmut.add_argument(
        "--insert", action="append", metavar="U,V", default=None,
        help="edge to insert; repeat for a batch",
    )
    p_cmut.add_argument(
        "--delete", action="append", metavar="U,V", default=None,
        help="edge to delete; repeat for a batch",
    )
    p_cmut.add_argument(
        "--json", action="store_true",
        help="emit the mutated frame as JSON",
    )
    _add_client_args(p_cmut)
    p_cmut.set_defaults(func=_cmd_client_mutate)

    p_cclose = client_sub.add_parser(
        "close-session", help="close a streaming graph session"
    )
    p_cclose.add_argument("session", help="session id to close")
    _add_client_args(p_cclose)
    p_cclose.set_defaults(func=_cmd_client_close_session)

    p_watch = sub.add_parser(
        "watch",
        help="subscribe to a streaming session and print ω(G) transitions",
    )
    p_watch.add_argument("session", help="session id to watch (or open)")
    p_watch.add_argument(
        "--graph", default=None, metavar="GRAPH",
        help="open the session first with this graph file or dataset name "
        "(omit to attach to an already-open session)",
    )
    p_watch.add_argument(
        "--max-updates", type=int, default=None, metavar="N",
        help="exit after N update frames (default: run until closed)",
    )
    p_watch.add_argument(
        "--json", action="store_true",
        help="emit update frames as JSON lines",
    )
    _add_client_args(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_cluster = sub.add_parser(
        "cluster-status",
        help="per-backend health and routing counters of a router",
    )
    p_cluster.add_argument(
        "--json", action="store_true",
        help="emit the raw router stats frame as JSON",
    )
    _add_client_args(p_cluster)
    p_cluster.set_defaults(func=_cmd_cluster_status)

    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
