"""One router-side connection to one backend SolveServer.

A :class:`BackendLink` owns a single ``repro-wire/1`` client
connection and multiplexes the router's concurrent requests over it: a
dedicated reader task dispatches every incoming frame to the awaiting
:meth:`request` call, matched by ``(id, frame type)`` -- the pair is
needed because one in-flight solve id legitimately answers ``status``,
``checkpoint``, *and* ``result`` frames. Frames without an id
(``stats`` replies, ``bye``) match the oldest request that expects
that type.

The link is the router's failure detector for live traffic: when the
connection drops -- EOF, reset, or an aborted transport from a
SIGKILL'd backend -- every pending :meth:`request` future fails with
:class:`BackendLostError` and the ``on_lost`` callback fires. The
router's per-solve driver catches that error and re-routes the solve
(with its last shipped checkpoint) to the next backend in the ring
preference list; the health probe loop keeps calling
:meth:`ensure_connected` until the backend comes back.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from ..errors import ProtocolError, ServerError
from ..log import get_logger
from ..server import protocol

__all__ = ["BackendLink", "BackendLostError"]

log = get_logger("cluster.backend")


class BackendLostError(ConnectionError):
    """The backend connection dropped before this request was answered."""


class BackendLink:
    """A multiplexing ``repro-wire/1`` client connection to one backend."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        connect_timeout_s: float = 5.0,
        on_lost=None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.connect_timeout_s = connect_timeout_s
        self.on_lost = on_lost
        #: the backend's hello frame (capability advert), once connected
        self.hello: Optional[Dict[str, Any]] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._connect_lock = asyncio.Lock()
        self._pending: Dict[Tuple[str, str], asyncio.Future] = {}
        self._anon: Dict[str, Deque[asyncio.Future]] = {}
        self._closing = False

    @property
    def connected(self) -> bool:
        return self._writer is not None

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    async def ensure_connected(self) -> Dict[str, Any]:
        """Connect and handshake if needed; returns the backend hello.

        Raises :class:`BackendLostError` when the backend is
        unreachable or fails the handshake -- the probe loop turns
        that into a health failure.
        """
        async with self._connect_lock:
            if self._writer is not None:
                assert self.hello is not None
                return self.hello
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        self.host, self.port, limit=self.max_frame_bytes
                    ),
                    self.connect_timeout_s,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                raise BackendLostError(
                    f"backend {self.name} unreachable: {exc}"
                ) from exc
            try:
                writer.write(
                    protocol.encode_frame(
                        {
                            "type": "hello",
                            "protocol": protocol.PROTOCOL,
                            "client": "repro-router",
                        }
                    )
                )
                await writer.drain()
                line = await asyncio.wait_for(
                    reader.readline(), self.connect_timeout_s
                )
                if not line:
                    raise BackendLostError(
                        f"backend {self.name} closed during handshake"
                    )
                hello = protocol.decode_frame(line)
            except (OSError, asyncio.TimeoutError, ProtocolError) as exc:
                writer.close()
                raise BackendLostError(
                    f"backend {self.name} handshake failed: {exc}"
                ) from exc
            if hello.get("type") == "error":
                writer.close()
                raise BackendLostError(
                    f"backend {self.name} refused the handshake: "
                    f"{hello.get('code')}: {hello.get('message')}"
                )
            if (
                hello.get("type") != "hello"
                or hello.get("protocol") != protocol.PROTOCOL
            ):
                writer.close()
                raise BackendLostError(
                    f"backend {self.name} spoke "
                    f"{hello.get('protocol')!r}, not {protocol.PROTOCOL}"
                )
            self._reader, self._writer = reader, writer
            self.hello = hello
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop(reader)
            )
            log.info(
                "link up: %s (%s)", self.name, hello.get("server", "?")
            )
            return hello

    async def close(self) -> None:
        """Close the connection deliberately (router drain, not a fault)."""
        self._closing = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader_task
            self._reader_task = None
        self._drop_connection(BackendLostError(f"link to {self.name} closed"))

    # ------------------------------------------------------------------
    # request/reply multiplexing
    # ------------------------------------------------------------------
    async def request(
        self,
        frame: Dict[str, Any],
        reply_types: Tuple[str, ...],
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Send one frame and await its reply.

        ``reply_types`` names the frame type(s) that answer this
        request (e.g. ``("result",)`` for a solve). An ``error`` frame
        carrying the same id -- or, for id-less requests, an unclaimed
        one -- resolves the future too and is raised as a
        :class:`~repro.errors.ServerError`. Raises
        :class:`BackendLostError` if the connection drops first.
        """
        await self.ensure_connected()
        assert self._writer is not None
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        fid = frame.get("id")
        keys = []
        if isinstance(fid, str):
            for rtype in reply_types:
                key = (fid, rtype)
                if key in self._pending:
                    raise ProtocolError(
                        f"request id {fid!r} already awaits a "
                        f"{rtype} frame on link {self.name}"
                    )
                keys.append(key)
            for key in keys:
                self._pending[key] = fut
        else:
            for rtype in (*reply_types, "error"):
                self._anon.setdefault(rtype, deque()).append(fut)
        try:
            data = protocol.encode_frame(frame)
            self._writer.write(data)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._drop_connection(
                BackendLostError(f"write to {self.name} failed: {exc}")
            )
        try:
            reply = await asyncio.wait_for(asyncio.shield(fut), timeout_s)
        except asyncio.TimeoutError:
            raise
        finally:
            for key in keys:
                if self._pending.get(key) is fut:
                    del self._pending[key]
            for queue in self._anon.values():
                with contextlib.suppress(ValueError):
                    queue.remove(fut)
        if reply.get("type") == "error":
            retriable, exit_code = protocol.ERROR_CODES.get(
                reply.get("code", "internal"), (False, 1)
            )
            err = ServerError(
                reply.get("message", "backend error"),
                code=reply.get("code", "internal"),
                retriable=bool(reply.get("retriable", retriable)),
                exit_code=int(reply.get("exit_code", exit_code)),
            )
            err.retry_after_s = reply.get("retry_after_s")
            raise err
        return reply

    # ------------------------------------------------------------------
    # reader task
    # ------------------------------------------------------------------
    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        why: Exception
        try:
            while True:
                line = await reader.readline()
                if not line:
                    why = BackendLostError(
                        f"backend {self.name} closed the connection"
                    )
                    break
                if len(line) > self.max_frame_bytes:
                    why = BackendLostError(
                        f"backend {self.name} sent an oversized frame"
                    )
                    break
                try:
                    frame = protocol.decode_frame(line)
                except ProtocolError:
                    log.warning("undecodable frame from %s dropped", self.name)
                    continue
                self._dispatch(frame)
        except ValueError:
            why = BackendLostError(
                f"backend {self.name} overflowed the frame buffer"
            )
        except (ConnectionError, OSError) as exc:
            why = BackendLostError(f"backend {self.name} dropped: {exc}")
        except asyncio.CancelledError:
            raise
        self._reader_task = None
        self._drop_connection(why)

    def _dispatch(self, frame: Dict[str, Any]) -> None:
        ftype = frame.get("type")
        fid = frame.get("id")
        fut: Optional[asyncio.Future] = None
        if isinstance(fid, str):
            if ftype == "error":
                # an error answers whichever request used this id
                for (pid, _), candidate in list(self._pending.items()):
                    if pid == fid:
                        fut = candidate
                        break
            else:
                fut = self._pending.get((fid, str(ftype)))
        else:
            queue = self._anon.get(str(ftype))
            while queue:
                candidate = queue.popleft()
                if not candidate.done():
                    fut = candidate
                    break
        if fut is None or fut.done():
            log.debug(
                "unmatched %s frame (id=%r) from %s", ftype, fid, self.name
            )
            return
        fut.set_result(frame)

    # ------------------------------------------------------------------
    # failure propagation
    # ------------------------------------------------------------------
    def _drop_connection(self, why: BackendLostError) -> None:
        """Tear down the socket and fail every pending request."""
        writer, self._writer, self._reader = self._writer, None, None
        self.hello = None
        if writer is not None:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
        pending = set(self._pending.values())
        self._pending.clear()
        for queue in self._anon.values():
            pending.update(queue)
        self._anon.clear()
        for fut in pending:
            if not fut.done():
                fut.set_exception(why)
        if writer is not None and not self._closing:
            log.warning("link lost: %s (%s)", self.name, why)
            if self.on_lost is not None:
                self.on_lost(self)
