"""Cluster tier: shard ``repro-wire/1`` traffic across SolveServers.

A :class:`~repro.cluster.router.Router` fronts N independent
``repro serve`` backends with the same protocol they speak, so clients
need no new code. The pieces:

* :mod:`~repro.cluster.ring` -- consistent-hash placement by the
  request's cache identity (graph + config fingerprints), which keeps
  repeated requests on the backend whose LRU cache already holds them;
* :mod:`~repro.cluster.health` -- a probe-driven ``healthy -> suspect
  -> down`` state machine per backend;
* :mod:`~repro.cluster.backend` -- one multiplexing client link per
  backend, the failure detector for live traffic;
* :mod:`~repro.cluster.router` -- the front door, including
  checkpoint-shipped failover of mid-solve max-clique requests.

``repro router`` / ``repro cluster-status`` are the CLI entry points;
docs/CLUSTER.md is the design document.
"""

from .backend import BackendLink, BackendLostError
from .health import DOWN, HEALTHY, SUSPECT, BackendHealth
from .ring import DEFAULT_REPLICAS, HashRing
from .router import DEFAULT_ROUTER_PORT, Router, RouterConfig, RouterThread

__all__ = [
    "BackendHealth",
    "BackendLink",
    "BackendLostError",
    "DEFAULT_REPLICAS",
    "DEFAULT_ROUTER_PORT",
    "HashRing",
    "Router",
    "RouterConfig",
    "RouterThread",
    "HEALTHY",
    "SUSPECT",
    "DOWN",
]
