"""Backend health state machine for the cluster router.

The same circuit-breaker idea as the device pool's
:class:`~repro.service.pool.DeviceHealth` (healthy -> quarantined ->
probation), re-cut for network peers where the failure signal is a
missed probe or a reset connection rather than an injected device
fault:

* ``healthy`` -- the backend answers probes; it takes new requests.
* ``suspect`` -- one or more recent probes failed but fewer than
  ``down_threshold`` in a row. The backend *still takes requests*
  (a single dropped probe on a busy host must not re-home its keys
  and wipe out cache affinity), it is just being watched.
* ``down`` -- ``down_threshold`` consecutive probe failures, or a
  connection reset observed by live traffic (:meth:`note_lost`,
  which skips ``suspect`` entirely -- a peer that resets sockets is
  gone *now*). The router routes around it; its ring arcs are served
  by the next nodes in each key's preference list.

Any success snaps straight back to ``healthy``: probes are cheap and
periodic, so there is no need for the pool's probation half-step.
Transitions only move on observed evidence -- no wall-clock timers --
which keeps the chaos tests deterministic.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["BackendHealth", "HEALTHY", "SUSPECT", "DOWN"]

HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"


class BackendHealth:
    """Probe-driven health accounting for one router backend."""

    def __init__(self, down_threshold: int = 3) -> None:
        if down_threshold < 1:
            raise ValueError("down_threshold must be at least 1")
        self.down_threshold = down_threshold
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.total_failures = 0
        #: times the state reached ``down`` (resets never decrement)
        self.downs = 0
        #: times a down backend recovered to ``healthy``
        self.recoveries = 0

    @property
    def available(self) -> bool:
        """Whether the router may place requests here (not ``down``)."""
        return self.state != DOWN

    def note_success(self) -> None:
        """A probe or a real reply succeeded: snap back to healthy."""
        if self.state == DOWN:
            self.recoveries += 1
        self.state = HEALTHY
        self.consecutive_failures = 0

    def note_failure(self) -> None:
        """A probe failed (timeout, refused connect, bad reply)."""
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures >= self.down_threshold:
            if self.state != DOWN:
                self.downs += 1
            self.state = DOWN
        elif self.state == HEALTHY:
            self.state = SUSPECT

    def note_lost(self) -> None:
        """Live traffic saw the connection reset: immediately down."""
        self.consecutive_failures = max(
            self.consecutive_failures + 1, self.down_threshold
        )
        self.total_failures += 1
        if self.state != DOWN:
            self.downs += 1
        self.state = DOWN

    def to_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "downs": self.downs,
            "recoveries": self.recoveries,
        }
